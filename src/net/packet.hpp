// Wire frames: an owned byte buffer plus structured build/parse helpers for
// the Ethernet/IPv4/TCP|UDP frames the virtual-interface bridge forwards.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "net/headers.hpp"

namespace midrr::net {

/// Parsed view of a frame's headers (copies of the header fields plus the
/// offsets needed to locate and rewrite them in place).
struct FrameView {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::size_t l3_offset = 0;       // start of the IPv4 header
  std::size_t l4_offset = 0;       // start of the TCP/UDP header
  std::size_t payload_offset = 0;  // start of the application payload
  std::size_t payload_length = 0;
};

/// An Ethernet frame as a contiguous buffer.
///
/// Frames are immutable from the scheduler's point of view; only the bridge
/// rewrites them (addresses + checksums) via the explicit rewrite methods,
/// which keep all checksums consistent.
///
/// Storage comes in two flavors:
///   * owned: a heap ByteBuffer (the default everywhere in sim/tests);
///   * external/pooled: the frame references bytes owned by a pool slot
///     (see net::FramePool) whose lifetime strictly encloses the frame's.
/// Copying a pooled frame deep-copies into owned heap storage, so a copy
/// never outlives its source's slot.  Moving transfers the reference;
/// pooled frames only ever live behind `shared_ptr<const Frame>`, which
/// cannot be moved from, so transfer is safe in practice.
class Frame {
 public:
  /// Tag for pooled/external storage (bytes the frame does not own).
  /// `headroom` scratch bytes live immediately BEFORE `data` in the same
  /// slot, so a wire header written there is contiguous with the payload
  /// (the io_uring fast path sends [header|payload] as one fixed-buffer
  /// range with zero copies).  Headroom is not part of the frame's
  /// identity: parse/checksum/size ignore it and copies drop it.
  struct ExternalStorage {
    Byte* data = nullptr;
    std::size_t size = 0;
    std::size_t headroom = 0;
  };

  Frame() = default;
  explicit Frame(ByteBuffer bytes) : bytes_(std::move(bytes)) {}
  explicit Frame(ExternalStorage storage)
      : ext_data_(storage.data),
        ext_size_(storage.size),
        ext_headroom_(storage.headroom) {}

  Frame(const Frame& other)
      : bytes_(other.cview().begin(), other.cview().end()) {}
  Frame& operator=(const Frame& other) {
    if (this != &other) {
      bytes_.assign(other.cview().begin(), other.cview().end());
      ext_data_ = nullptr;
      ext_size_ = 0;
      ext_headroom_ = 0;
    }
    return *this;
  }
  Frame(Frame&& other) noexcept
      : bytes_(std::move(other.bytes_)),
        ext_data_(std::exchange(other.ext_data_, nullptr)),
        ext_size_(std::exchange(other.ext_size_, 0)),
        ext_headroom_(std::exchange(other.ext_headroom_, 0)) {}
  Frame& operator=(Frame&& other) noexcept {
    bytes_ = std::move(other.bytes_);
    ext_data_ = std::exchange(other.ext_data_, nullptr);
    ext_size_ = std::exchange(other.ext_size_, 0);
    ext_headroom_ = std::exchange(other.ext_headroom_, 0);
    return *this;
  }

  std::span<const Byte> bytes() const { return cview(); }
  std::size_t size() const { return ext_data_ ? ext_size_ : bytes_.size(); }
  bool empty() const { return size() == 0; }

  /// True when the frame references pool-slot storage it does not own.
  bool pooled_storage() const { return ext_data_ != nullptr; }

  /// Scratch bytes immediately preceding the payload (0 for heap frames).
  /// Writable through a const Frame on purpose: headroom is egress
  /// scratch, not frame content -- the writer must be the frame's sole
  /// owner at the time (the uring backend checks use_count() == 1 before
  /// taking this path, so a fault-injected duplicate sharing the frame
  /// can never race the header bytes of an in-flight send).
  std::size_t headroom_bytes() const { return ext_data_ ? ext_headroom_ : 0; }
  Byte* headroom_data() const {
    return ext_data_ != nullptr ? ext_data_ - ext_headroom_ : nullptr;
  }

  /// Parses the frame's headers.  Throws BufferOverrun on truncated or
  /// malformed frames; returns nullopt for non-IPv4 ether types.
  std::optional<FrameView> parse() const;

  /// Rewrites the source MAC+IP (outbound steering: the bridge replaces the
  /// virtual interface's addresses with the chosen physical interface's)
  /// and incrementally fixes the IPv4 header checksum and the L4 checksum
  /// (TCP/UDP checksums cover the pseudo-header, which includes addresses).
  void rewrite_source(const MacAddress& new_src_mac,
                      const Ipv4Address& new_src_ip);

  /// Rewrites the destination MAC+IP (inbound: restore the virtual
  /// interface's address before handing the packet to the application).
  void rewrite_destination(const MacAddress& new_dst_mac,
                           const Ipv4Address& new_dst_ip);

  /// Recomputes the IPv4 header checksum and L4 checksum from scratch and
  /// verifies both; used by tests and the receive path.
  bool checksums_valid() const;

 private:
  void rewrite_ip(bool rewrite_src, const MacAddress& mac,
                  const Ipv4Address& ip);

  std::span<Byte> mutable_view() {
    return ext_data_ ? std::span<Byte>(ext_data_, ext_size_)
                     : std::span<Byte>(bytes_);
  }
  std::span<const Byte> cview() const {
    return ext_data_ ? std::span<const Byte>(ext_data_, ext_size_)
                     : std::span<const Byte>(bytes_);
  }

  ByteBuffer bytes_;
  Byte* ext_data_ = nullptr;
  std::size_t ext_size_ = 0;
  std::size_t ext_headroom_ = 0;
};

/// Builder for well-formed test/application frames.
class FrameBuilder {
 public:
  FrameBuilder& eth_src(const MacAddress& mac);
  FrameBuilder& eth_dst(const MacAddress& mac);
  FrameBuilder& ip_src(const Ipv4Address& ip);
  FrameBuilder& ip_dst(const Ipv4Address& ip);
  FrameBuilder& ip_ttl(std::uint8_t ttl);
  FrameBuilder& ip_id(std::uint16_t id);
  /// Selects TCP with the given ports (default protocol).
  FrameBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t seq = 0, std::uint8_t flags = TcpHeader::kAck);
  /// Selects UDP with the given ports.
  FrameBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  /// Application payload bytes (copied).
  FrameBuilder& payload(std::span<const Byte> data);
  /// Payload of `n` deterministic filler bytes.
  FrameBuilder& payload_size(std::size_t n);

  /// Builds the frame with all lengths and checksums computed.
  Frame build() const;

 private:
  EthernetHeader eth_{};
  Ipv4Header ip_{};
  std::optional<TcpHeader> tcp_{};
  std::optional<UdpHeader> udp_{};
  ByteBuffer payload_{};
};

}  // namespace midrr::net
