// Wire frames: an owned byte buffer plus structured build/parse helpers for
// the Ethernet/IPv4/TCP|UDP frames the virtual-interface bridge forwards.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/headers.hpp"

namespace midrr::net {

/// Parsed view of a frame's headers (copies of the header fields plus the
/// offsets needed to locate and rewrite them in place).
struct FrameView {
  EthernetHeader eth;
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::size_t l3_offset = 0;       // start of the IPv4 header
  std::size_t l4_offset = 0;       // start of the TCP/UDP header
  std::size_t payload_offset = 0;  // start of the application payload
  std::size_t payload_length = 0;
};

/// An Ethernet frame as a contiguous owned buffer.
///
/// Frames are immutable from the scheduler's point of view; only the bridge
/// rewrites them (addresses + checksums) via the explicit rewrite methods,
/// which keep all checksums consistent.
class Frame {
 public:
  Frame() = default;
  explicit Frame(ByteBuffer bytes) : bytes_(std::move(bytes)) {}

  std::span<const Byte> bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// Parses the frame's headers.  Throws BufferOverrun on truncated or
  /// malformed frames; returns nullopt for non-IPv4 ether types.
  std::optional<FrameView> parse() const;

  /// Rewrites the source MAC+IP (outbound steering: the bridge replaces the
  /// virtual interface's addresses with the chosen physical interface's)
  /// and incrementally fixes the IPv4 header checksum and the L4 checksum
  /// (TCP/UDP checksums cover the pseudo-header, which includes addresses).
  void rewrite_source(const MacAddress& new_src_mac,
                      const Ipv4Address& new_src_ip);

  /// Rewrites the destination MAC+IP (inbound: restore the virtual
  /// interface's address before handing the packet to the application).
  void rewrite_destination(const MacAddress& new_dst_mac,
                           const Ipv4Address& new_dst_ip);

  /// Recomputes the IPv4 header checksum and L4 checksum from scratch and
  /// verifies both; used by tests and the receive path.
  bool checksums_valid() const;

 private:
  void rewrite_ip(bool rewrite_src, const MacAddress& mac,
                  const Ipv4Address& ip);

  ByteBuffer bytes_;
};

/// Builder for well-formed test/application frames.
class FrameBuilder {
 public:
  FrameBuilder& eth_src(const MacAddress& mac);
  FrameBuilder& eth_dst(const MacAddress& mac);
  FrameBuilder& ip_src(const Ipv4Address& ip);
  FrameBuilder& ip_dst(const Ipv4Address& ip);
  FrameBuilder& ip_ttl(std::uint8_t ttl);
  FrameBuilder& ip_id(std::uint16_t id);
  /// Selects TCP with the given ports (default protocol).
  FrameBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t seq = 0, std::uint8_t flags = TcpHeader::kAck);
  /// Selects UDP with the given ports.
  FrameBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  /// Application payload bytes (copied).
  FrameBuilder& payload(std::span<const Byte> data);
  /// Payload of `n` deterministic filler bytes.
  FrameBuilder& payload_size(std::size_t n);

  /// Builds the frame with all lengths and checksums computed.
  Frame build() const;

 private:
  EthernetHeader eth_{};
  Ipv4Header ip_{};
  std::optional<TcpHeader> tcp_{};
  std::optional<UdpHeader> udp_{};
  ByteBuffer payload_{};
};

}  // namespace midrr::net
