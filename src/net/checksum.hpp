// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// The virtual-interface bridge rewrites IP addresses on every forwarded
// packet (see src/bridge/), so both full recomputation and the cheap
// incremental form the Linux kernel uses are provided.
#pragma once

#include <cstdint>
#include <span>

#include "net/addr.hpp"
#include "net/bytes.hpp"

namespace midrr::net {

/// Accumulates 16-bit one's-complement sums across multiple byte ranges
/// (header + pseudo-header + payload) and folds at the end.
class ChecksumAccumulator {
 public:
  void add(std::span<const Byte> data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);

  /// Folded one's-complement result, ready to store in a header field.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true when a dangling high byte is pending
};

/// One-shot checksum of a byte range.
std::uint16_t internet_checksum(std::span<const Byte> data);

/// RFC 1624 incremental update: returns the new checksum after a 16-bit
/// word in the covered data changes from `old_word` to `new_word`.
std::uint16_t checksum_update(std::uint16_t old_checksum,
                              std::uint16_t old_word, std::uint16_t new_word);

/// Incremental update for a 32-bit change (e.g. an IPv4 address rewrite).
std::uint16_t checksum_update32(std::uint16_t old_checksum,
                                std::uint32_t old_value,
                                std::uint32_t new_value);

}  // namespace midrr::net
