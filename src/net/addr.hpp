// Link-layer and network-layer addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"

namespace midrr::net {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<Byte, 6> octets)
      : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  static std::optional<MacAddress> parse(const std::string& text);

  /// Broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  /// A locally administered unicast address derived from an index; used to
  /// mint distinct virtual-interface MACs.
  static MacAddress local(std::uint32_t index);

  const std::array<Byte, 6>& octets() const { return octets_; }
  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (octets_[0] & 0x01) != 0; }

  std::string to_string() const;

  void write(BufWriter& w) const;
  static MacAddress read(BufReader& r);

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<Byte, 6> octets_{};
};

/// IPv4 address held in host order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(Byte a, Byte b, Byte c, Byte d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) |
               static_cast<std::uint32_t>(d)) {}

  /// Parses dotted-quad "a.b.c.d"; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(const std::string& text);

  std::uint32_t value() const { return value_; }
  std::string to_string() const;

  void write(BufWriter& w) const { w.u32(value_); }
  static Ipv4Address read(BufReader& r) { return Ipv4Address(r.u32()); }

  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace midrr::net
