#include "net/pcap.hpp"

#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace midrr::net {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // big/little per host; we fix LE
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kLinkTypeEthernet = 1;

// All multi-byte fields little-endian (the common on-disk convention).
void write_u32(std::ostream& out, std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
      static_cast<char>((v >> 16) & 0xFF), static_cast<char>((v >> 24) & 0xFF)};
  out.write(bytes, 4);
}

void write_u16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xFF),
                         static_cast<char>((v >> 8) & 0xFF)};
  out.write(bytes, 2);
}

bool read_u32(std::istream& in, std::uint32_t& v) {
  unsigned char bytes[4];
  if (!in.read(reinterpret_cast<char*>(bytes), 4)) return false;
  v = static_cast<std::uint32_t>(bytes[0]) |
      (static_cast<std::uint32_t>(bytes[1]) << 8) |
      (static_cast<std::uint32_t>(bytes[2]) << 16) |
      (static_cast<std::uint32_t>(bytes[3]) << 24);
  return true;
}

bool read_u16(std::istream& in, std::uint16_t& v) {
  unsigned char bytes[2];
  if (!in.read(reinterpret_cast<char*>(bytes), 2)) return false;
  v = static_cast<std::uint16_t>(bytes[0] |
                                 (static_cast<std::uint16_t>(bytes[1]) << 8));
  return true;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen)
    : out_(out), snaplen_(snaplen) {
  MIDRR_REQUIRE(snaplen > 0, "snaplen must be positive");
  write_u32(out_, kMagic);
  write_u16(out_, kVersionMajor);
  write_u16(out_, kVersionMinor);
  write_u32(out_, 0);  // thiszone
  write_u32(out_, 0);  // sigfigs
  write_u32(out_, snaplen_);
  write_u32(out_, kLinkTypeEthernet);
}

void PcapWriter::record(SimTime at, std::span<const Byte> frame) {
  const auto seconds = static_cast<std::uint32_t>(at / kSecond);
  const auto micros =
      static_cast<std::uint32_t>((at % kSecond) / kMicrosecond);
  const auto captured = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), snaplen_));
  write_u32(out_, seconds);
  write_u32(out_, micros);
  write_u32(out_, captured);
  write_u32(out_, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()), captured);
  ++frames_;
}

std::optional<std::vector<PcapRecord>> read_pcap(std::istream& in) {
  std::uint32_t magic = 0;
  if (!read_u32(in, magic) || magic != kMagic) return std::nullopt;
  std::uint16_t major = 0;
  std::uint16_t minor = 0;
  std::uint32_t zone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
  if (!read_u16(in, major) || !read_u16(in, minor) || !read_u32(in, zone) ||
      !read_u32(in, sigfigs) || !read_u32(in, snaplen) ||
      !read_u32(in, linktype)) {
    return std::nullopt;
  }
  if (linktype != kLinkTypeEthernet) return std::nullopt;

  std::vector<PcapRecord> records;
  while (true) {
    std::uint32_t seconds = 0;
    if (!read_u32(in, seconds)) break;  // clean EOF
    std::uint32_t micros = 0;
    std::uint32_t captured = 0;
    std::uint32_t original = 0;
    if (!read_u32(in, micros) || !read_u32(in, captured) ||
        !read_u32(in, original)) {
      return std::nullopt;  // truncated record header
    }
    PcapRecord record;
    record.at = static_cast<SimTime>(seconds) * kSecond +
                static_cast<SimTime>(micros) * kMicrosecond;
    record.frame.resize(captured);
    if (!in.read(reinterpret_cast<char*>(record.frame.data()), captured)) {
      return std::nullopt;
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace midrr::net
