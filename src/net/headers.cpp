#include "net/headers.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"

namespace midrr::net {

void EthernetHeader::write(BufWriter& w) const {
  dst.write(w);
  src.write(w);
  w.u16(static_cast<std::uint16_t>(ether_type));
}

EthernetHeader EthernetHeader::read(BufReader& r) {
  EthernetHeader h;
  h.dst = MacAddress::read(r);
  h.src = MacAddress::read(r);
  h.ether_type = static_cast<EtherType>(r.u16());
  return h;
}

void Ipv4Header::write(BufWriter& w) const {
  MIDRR_REQUIRE(version == 4, "not an IPv4 header");
  MIDRR_REQUIRE(ihl >= 5, "IPv4 IHL below minimum");
  w.u8(static_cast<std::uint8_t>((version << 4) | ihl));
  w.u8(dscp_ecn);
  w.u16(total_length);
  w.u16(identification);
  w.u16(flags_fragment);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(header_checksum);
  src.write(w);
  dst.write(w);
}

Ipv4Header Ipv4Header::read(BufReader& r) {
  Ipv4Header h;
  const std::uint8_t vihl = r.u8();
  h.version = vihl >> 4;
  h.ihl = vihl & 0x0F;
  if (h.version != 4) {
    throw BufferOverrun("IPv4 parse: version " + std::to_string(h.version));
  }
  if (h.ihl < 5) {
    throw BufferOverrun("IPv4 parse: IHL " + std::to_string(h.ihl) + " < 5");
  }
  h.dscp_ecn = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  h.flags_fragment = r.u16();
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  h.header_checksum = r.u16();
  h.src = Ipv4Address::read(r);
  h.dst = Ipv4Address::read(r);
  // Options (if any) are skipped here; callers that need them read the
  // remaining (ihl-5)*4 bytes themselves.
  if (h.ihl > 5) {
    r.skip((std::size_t{h.ihl} - 5) * 4);
  }
  return h;
}

std::uint16_t Ipv4Header::compute_checksum() const {
  // Serialize into a scratch buffer with the checksum field zeroed, then
  // checksum it.  Headers with options are checksummed by the caller over
  // the raw bytes; this helper covers the option-less header it emits.
  ByteBuffer buf(kMinSize, 0);
  Ipv4Header copy = *this;
  copy.header_checksum = 0;
  copy.ihl = 5;
  BufWriter w(buf);
  copy.write(w);
  return internet_checksum(buf);
}

void TcpHeader::write(BufWriter& w) const {
  MIDRR_REQUIRE(data_offset >= 5, "TCP data offset below minimum");
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(static_cast<std::uint8_t>(data_offset << 4));
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(urgent);
}

TcpHeader TcpHeader::read(BufReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  h.data_offset = static_cast<std::uint8_t>(r.u8() >> 4);
  if (h.data_offset < 5) {
    throw BufferOverrun("TCP parse: data offset " +
                        std::to_string(h.data_offset) + " < 5");
  }
  h.flags = r.u8();
  h.window = r.u16();
  h.checksum = r.u16();
  h.urgent = r.u16();
  if (h.data_offset > 5) {
    r.skip((std::size_t{h.data_offset} - 5) * 4);
  }
  return h;
}

void UdpHeader::write(BufWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

UdpHeader UdpHeader::read(BufReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  return h;
}

std::uint16_t l4_checksum(const Ipv4Address& src, const Ipv4Address& dst,
                          IpProto proto, std::span<const Byte> segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(static_cast<std::uint16_t>(proto));
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace midrr::net
