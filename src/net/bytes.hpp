// Byte-order-safe buffer access.
//
// All wire formats in this library are big-endian; BufReader/BufWriter are
// bounds-checked cursors over a byte span.  Out-of-range access throws
// (it indicates a malformed packet or a library bug, never a hot-path
// condition we silently tolerate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace midrr::net {

using Byte = std::uint8_t;
using ByteBuffer = std::vector<Byte>;

/// Thrown when a read/write would step outside the underlying buffer.
class BufferOverrun : public std::out_of_range {
 public:
  explicit BufferOverrun(const std::string& what_arg)
      : std::out_of_range(what_arg) {}
};

/// Bounds-checked big-endian reader over a constant byte span.
class BufReader {
 public:
  explicit BufReader(std::span<const Byte> data) : data_(data) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Reads `n` raw bytes.
  std::span<const Byte> bytes(std::size_t n);

  /// Moves the cursor forward without reading.
  void skip(std::size_t n);

  /// Repositions the cursor absolutely.
  void seek(std::size_t offset);

 private:
  void check(std::size_t n) const;

  std::span<const Byte> data_;
  std::size_t offset_ = 0;
};

/// Bounds-checked big-endian writer over a mutable byte span.
class BufWriter {
 public:
  explicit BufWriter(std::span<Byte> data) : data_(data) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const Byte> src);
  void fill(Byte value, std::size_t n);
  void seek(std::size_t offset);

 private:
  void check(std::size_t n) const;

  std::span<Byte> data_;
  std::size_t offset_ = 0;
};

/// Hex dump of a byte range ("de ad be ef ..."), for diagnostics and tests.
std::string hex_dump(std::span<const Byte> data, std::size_t max_bytes = 64);

}  // namespace midrr::net
