// pcap capture files (the classic libpcap format, readable by
// Wireshark/tcpdump) for frames crossing the virtual bridge.
//
// Writing real capture files makes the bridge's steering decisions
// inspectable with standard tooling: one capture per physical interface
// shows exactly which flows went where and how the headers were rewritten.
// Format reference: the de-facto standard 24-byte global header followed by
// 16-byte per-record headers, LINKTYPE_ETHERNET.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "net/bytes.hpp"
#include "util/time.hpp"

namespace midrr::net {

/// Writes a pcap stream (magic 0xa1b2c3d4, microsecond timestamps,
/// LINKTYPE_ETHERNET).  The stream is caller-owned and must outlive the
/// writer.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);

  /// Appends one frame with the given simulated timestamp.
  void record(SimTime at, std::span<const Byte> frame);

  std::uint64_t frames_written() const { return frames_; }

 private:
  void u32(std::uint32_t v);
  void u16(std::uint16_t v);

  std::ostream& out_;
  std::uint32_t snaplen_;
  std::uint64_t frames_ = 0;
};

/// A parsed pcap record (for tests and offline analysis).
struct PcapRecord {
  SimTime at = 0;
  ByteBuffer frame;
};

/// Reads back a pcap stream written by PcapWriter (same endianness);
/// returns nullopt if the magic or structure is wrong.
std::optional<std::vector<PcapRecord>> read_pcap(std::istream& in);

}  // namespace midrr::net
