#include "net/addr.hpp"

#include <cstdio>
#include <sstream>

namespace midrr::net {

namespace {

std::optional<int> parse_hex_byte(const std::string& s) {
  if (s.size() != 2) return std::nullopt;
  int v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return std::nullopt;
    v = v * 16 + digit;
  }
  return v;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(const std::string& text) {
  std::array<Byte, 6> octets{};
  std::istringstream in(text);
  std::string part;
  std::size_t i = 0;
  while (std::getline(in, part, ':')) {
    if (i >= 6) return std::nullopt;
    const auto v = parse_hex_byte(part);
    if (!v) return std::nullopt;
    octets[i++] = static_cast<Byte>(*v);
  }
  if (i != 6) return std::nullopt;
  return MacAddress(octets);
}

MacAddress MacAddress::local(std::uint32_t index) {
  // 0x02 sets the locally-administered bit and keeps unicast.
  return MacAddress({0x02, 0x1d, 0x72,
                     static_cast<Byte>((index >> 16) & 0xFF),
                     static_cast<Byte>((index >> 8) & 0xFF),
                     static_cast<Byte>(index & 0xFF)});
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

void MacAddress::write(BufWriter& w) const {
  w.bytes(std::span<const Byte>(octets_.data(), octets_.size()));
}

MacAddress MacAddress::read(BufReader& r) {
  const auto raw = r.bytes(6);
  std::array<Byte, 6> octets{};
  std::copy(raw.begin(), raw.end(), octets.begin());
  return MacAddress(octets);
}

std::optional<Ipv4Address> Ipv4Address::parse(const std::string& text) {
  std::istringstream in(text);
  std::string part;
  std::uint32_t value = 0;
  std::size_t i = 0;
  while (std::getline(in, part, '.')) {
    if (i >= 4 || part.empty() || part.size() > 3) return std::nullopt;
    int v = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + (c - '0');
    }
    if (v > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(v);
    ++i;
  }
  if (i != 4) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::ostringstream out;
  out << ((value_ >> 24) & 0xFF) << '.' << ((value_ >> 16) & 0xFF) << '.'
      << ((value_ >> 8) & 0xFF) << '.' << (value_ & 0xFF);
  return out.str();
}

}  // namespace midrr::net
