#include "net/frame_pool.hpp"

#include <cstring>
#include <new>

#include "util/assert.hpp"

namespace midrr::net {

namespace {

using PoolRef = std::shared_ptr<PacketPool>;

// Each pooled frame co-owns its PacketPool so that frames outliving the
// FramePool (queued in a scheduler when the producer shut down) keep the
// slab memory alive.  The co-owning reference is ONE shared_ptr copy per
// frame, placement-constructed at the tail of the slot's header region --
// NOT a member of the allocator, because std::allocate_shared copies the
// allocator several times internally and each shared_ptr copy is a pair
// of atomic refcount ops (~35 ns/frame measured, the whole gap between
// the pooled and heap paths).
PoolRef* keepalive_of(PacketPool& pool, std::uint32_t slot) {
  // header_bytes is a multiple of 64, so the tail is suitably aligned.
  return reinterpret_cast<PoolRef*>(pool.header_of(slot) +
                                    pool.header_bytes() - sizeof(PoolRef));
}

// Stateful allocator that points std::allocate_shared at a pool slot's
// header region, so the control block and the in-place Frame land inside
// the slot.  deallocate() runs after ~Frame -- the final touch of the
// slot -- releases the slot, and only then drops the frame's keepalive
// reference; release_slot is safe from any thread, which is exactly what
// a shared_ptr dropped on a worker needs.  The allocator itself is two
// raw words: copying it (which allocate_shared does freely) costs
// nothing.
template <typename T>
struct SlotAllocator {
  using value_type = T;

  PacketPool* pool = nullptr;
  std::uint32_t slot = PacketPool::kNoSlot;

  SlotAllocator(PacketPool* p, std::uint32_t s) : pool(p), slot(s) {}
  template <typename U>
  SlotAllocator(const SlotAllocator<U>& other)  // NOLINT(runtime/explicit)
      : pool(other.pool), slot(other.slot) {}

  T* allocate(std::size_t n) {
    // Validated by the FramePool constructor probe; the header region is
    // several times what libstdc++/libc++ place here (control block +
    // Frame), minus the keepalive slot at the tail.
    MIDRR_ASSERT(n * sizeof(T) <= pool->header_bytes() - sizeof(PoolRef),
                 "pool header region too small for shared_ptr control block");
    return reinterpret_cast<T*>(pool->header_of(slot));
  }

  void deallocate(T* ptr, std::size_t) {
    MIDRR_ASSERT(reinterpret_cast<std::uint8_t*>(ptr) ==
                     pool->header_of(slot),
                 "slot allocator freeing foreign memory");
    // Move the keepalive out BEFORE the slot goes home: once released,
    // the owner may hand the header region to another thread.  The pool
    // pointer stays valid through release_slot because `keep` still
    // holds it; if this frame was the pool's last reference, the pool
    // destructs right here, on whatever thread dropped the frame --
    // after its slot was already accounted home.
    PoolRef keep = std::move(*keepalive_of(*pool, slot));
    keepalive_of(*pool, slot)->~PoolRef();
    pool->release_slot(slot);
  }

  template <typename U>
  bool operator==(const SlotAllocator<U>& other) const {
    return pool == other.pool && slot == other.slot;
  }
};

}  // namespace

FramePool::FramePool(PacketPoolOptions options, std::size_t headroom_bytes)
    : pool_(std::make_shared<PacketPool>(options)),
      headroom_(headroom_bytes) {
  MIDRR_REQUIRE(headroom_ < pool_->buffer_bytes(),
                "FramePool: headroom must leave payload capacity");
  auto probe = make_filled(1, 0);
  MIDRR_REQUIRE(probe != nullptr && probe->pooled_storage(),
                "FramePool: header region cannot host this standard "
                "library's control block; raise header_bytes");
}

std::shared_ptr<const Frame> FramePool::wrap(std::uint32_t slot,
                                             std::size_t n) {
  // The keepalive must be in place before allocate_shared runs: if frame
  // construction unwinds, allocate_shared calls deallocate, which expects
  // to find it.
  new (keepalive_of(*pool_, slot)) PoolRef(pool_);
  return std::allocate_shared<Frame>(
      SlotAllocator<Frame>(pool_.get(), slot),
      Frame::ExternalStorage{pool_->buffer_of(slot) + headroom_, n,
                             headroom_});
}

std::shared_ptr<const Frame> FramePool::make_frame(
    std::span<const Byte> bytes) {
  if (bytes.size() > payload_capacity()) {
    pool_->count_miss();
    return std::make_shared<const Frame>(
        ByteBuffer(bytes.begin(), bytes.end()));
  }
  const std::uint32_t slot = pool_->acquire_slot();
  if (slot == PacketPool::kNoSlot) {  // miss already counted by the pool
    return std::make_shared<const Frame>(
        ByteBuffer(bytes.begin(), bytes.end()));
  }
  if (!bytes.empty()) {
    std::memcpy(pool_->buffer_of(slot) + headroom_, bytes.data(),
                bytes.size());
  }
  return wrap(slot, bytes.size());
}

std::shared_ptr<const Frame> FramePool::make_filled(std::size_t n,
                                                    Byte fill) {
  if (n > payload_capacity()) {
    pool_->count_miss();
    return std::make_shared<const Frame>(ByteBuffer(n, fill));
  }
  const std::uint32_t slot = pool_->acquire_slot();
  if (slot == PacketPool::kNoSlot) {
    return std::make_shared<const Frame>(ByteBuffer(n, fill));
  }
  if (n > 0) {
    std::memset(pool_->buffer_of(slot) + headroom_, fill, n);
  }
  return wrap(slot, n);
}

}  // namespace midrr::net
