// Pooled factory for shared immutable frames.
//
// A FramePool hands out `shared_ptr<const Frame>` whose payload bytes,
// Frame object, *and* shared_ptr control block all live in one PacketPool
// slot: creating and destroying a pooled frame performs zero heap
// allocations.  The slot is released when the last reference drops -- on
// whatever thread that happens -- via the pool's cross-thread return ring,
// so the classic producer-allocates / worker-frees malloc contention
// pattern never reaches the allocator.
//
// Exhaustion and oversized payloads degrade to plain heap frames (counted
// as pool misses), so callers never see a failure mode that the un-pooled
// path didn't have.
//
// Lifetime: every pooled frame co-owns the underlying PacketPool via one
// keepalive shared_ptr placement-constructed at the tail of its slot's
// header region (dropped only after the slot is released), so destroying
// the FramePool while frames are still queued in a scheduler is safe --
// the slab memory survives until the last frame drops, then the pool tears
// itself down on whichever thread that happens.
#pragma once

#include <memory>
#include <span>

#include "net/packet.hpp"
#include "util/packet_pool.hpp"

namespace midrr::net {

class FramePool {
 public:
  /// Carves the first slab eagerly (a construction-time probe validates
  /// that the configured header region fits this standard library's
  /// shared_ptr control block; the probe slot is recycled immediately).
  ///
  /// `headroom_bytes` reserves that many scratch bytes at the FRONT of
  /// every pooled payload (payload capacity shrinks accordingly), exposed
  /// via Frame::headroom_data().  The io_uring egress path writes its wire
  /// header there so [header|payload] is one contiguous registered-buffer
  /// range; heap-fallback frames have no headroom and take the copying
  /// path instead.
  explicit FramePool(PacketPoolOptions options = {},
                     std::size_t headroom_bytes = 0);

  /// Pooled copy of `bytes`; heap fallback (counted) on miss.
  std::shared_ptr<const Frame> make_frame(std::span<const Byte> bytes);

  /// Pooled frame of `n` bytes of `fill` (load-generator payloads);
  /// heap fallback (counted) on miss.
  std::shared_ptr<const Frame> make_filled(std::size_t n, Byte fill);

  /// The underlying slot pool: owner binding, stats, leak accounting.
  PacketPool& pool() { return *pool_; }
  const PacketPool& pool() const { return *pool_; }

  /// Headroom reserved in front of every pooled payload.
  std::size_t headroom_bytes() const { return headroom_; }
  /// Pooled payload capacity (buffer_bytes minus headroom); larger
  /// requests fall back to the heap.
  std::size_t payload_capacity() const {
    return pool_->buffer_bytes() - headroom_;
  }

 private:
  std::shared_ptr<const Frame> wrap(std::uint32_t slot, std::size_t n);

  std::shared_ptr<PacketPool> pool_;  // co-owned by every pooled frame
  std::size_t headroom_ = 0;
};

}  // namespace midrr::net
