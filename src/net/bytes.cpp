#include "net/bytes.hpp"

#include <sstream>

namespace midrr::net {

void BufReader::check(std::size_t n) const {
  if (n > remaining()) {
    throw BufferOverrun("read of " + std::to_string(n) + " bytes at offset " +
                        std::to_string(offset_) + " exceeds buffer of " +
                        std::to_string(data_.size()));
  }
}

std::uint8_t BufReader::u8() {
  check(1);
  return data_[offset_++];
}

std::uint16_t BufReader::u16() {
  check(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset_]) << 8) |
      static_cast<std::uint16_t>(data_[offset_ + 1]));
  offset_ += 2;
  return v;
}

std::uint32_t BufReader::u32() {
  check(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<std::uint32_t>(data_[offset_ + static_cast<std::size_t>(i)]);
  }
  offset_ += 4;
  return v;
}

std::uint64_t BufReader::u64() {
  check(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<std::uint64_t>(data_[offset_ + static_cast<std::size_t>(i)]);
  }
  offset_ += 8;
  return v;
}

std::span<const Byte> BufReader::bytes(std::size_t n) {
  check(n);
  auto out = data_.subspan(offset_, n);
  offset_ += n;
  return out;
}

void BufReader::skip(std::size_t n) {
  check(n);
  offset_ += n;
}

void BufReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw BufferOverrun("seek to " + std::to_string(offset) +
                        " beyond buffer of " + std::to_string(data_.size()));
  }
  offset_ = offset;
}

void BufWriter::check(std::size_t n) const {
  if (n > remaining()) {
    throw BufferOverrun("write of " + std::to_string(n) + " bytes at offset " +
                        std::to_string(offset_) + " exceeds buffer of " +
                        std::to_string(data_.size()));
  }
}

void BufWriter::u8(std::uint8_t v) {
  check(1);
  data_[offset_++] = v;
}

void BufWriter::u16(std::uint16_t v) {
  check(2);
  data_[offset_] = static_cast<Byte>(v >> 8);
  data_[offset_ + 1] = static_cast<Byte>(v & 0xFF);
  offset_ += 2;
}

void BufWriter::u32(std::uint32_t v) {
  check(4);
  for (int i = 3; i >= 0; --i) {
    data_[offset_++] = static_cast<Byte>((v >> (8 * i)) & 0xFF);
  }
}

void BufWriter::u64(std::uint64_t v) {
  check(8);
  for (int i = 7; i >= 0; --i) {
    data_[offset_++] = static_cast<Byte>((v >> (8 * i)) & 0xFF);
  }
}

void BufWriter::bytes(std::span<const Byte> src) {
  check(src.size());
  std::copy(src.begin(), src.end(), data_.begin() + static_cast<std::ptrdiff_t>(offset_));
  offset_ += src.size();
}

void BufWriter::fill(Byte value, std::size_t n) {
  check(n);
  std::fill_n(data_.begin() + static_cast<std::ptrdiff_t>(offset_), n, value);
  offset_ += n;
}

void BufWriter::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw BufferOverrun("seek to " + std::to_string(offset) +
                        " beyond buffer of " + std::to_string(data_.size()));
  }
  offset_ = offset;
}

std::string hex_dump(std::span<const Byte> data, std::size_t max_bytes) {
  static const char* digits = "0123456789abcdef";
  std::ostringstream out;
  const std::size_t n = std::min(data.size(), max_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out << ' ';
    out << digits[data[i] >> 4] << digits[data[i] & 0xF];
  }
  if (n < data.size()) out << " ... (+" << (data.size() - n) << " bytes)";
  return out.str();
}

}  // namespace midrr::net
