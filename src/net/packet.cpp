#include "net/packet.hpp"

#include "net/checksum.hpp"
#include "util/assert.hpp"

namespace midrr::net {

std::optional<FrameView> Frame::parse() const {
  BufReader r(cview());
  FrameView v;
  v.eth = EthernetHeader::read(r);
  if (v.eth.ether_type != EtherType::kIpv4) return std::nullopt;
  v.l3_offset = r.offset();
  v.ip = Ipv4Header::read(r);
  if (v.ip.total_length < v.ip.header_length()) {
    throw BufferOverrun("IPv4 total_length smaller than header");
  }
  if (v.l3_offset + v.ip.total_length > size()) {
    throw BufferOverrun("frame truncated relative to IPv4 total_length");
  }
  v.l4_offset = v.l3_offset + v.ip.header_length();
  r.seek(v.l4_offset);
  switch (v.ip.protocol) {
    case IpProto::kTcp: {
      v.tcp = TcpHeader::read(r);
      v.payload_offset = v.l4_offset + v.tcp->header_length();
      break;
    }
    case IpProto::kUdp: {
      v.udp = UdpHeader::read(r);
      v.payload_offset = v.l4_offset + UdpHeader::kSize;
      break;
    }
    default:
      v.payload_offset = v.l4_offset;
      break;
  }
  v.payload_length = v.l3_offset + v.ip.total_length - v.payload_offset;
  return v;
}

void Frame::rewrite_ip(bool rewrite_src, const MacAddress& mac,
                       const Ipv4Address& new_ip) {
  const auto view = parse();
  MIDRR_REQUIRE(view.has_value(), "cannot rewrite a non-IPv4 frame");

  // Ethernet address (no checksum covers it).
  {
    BufWriter w(mutable_view());
    if (rewrite_src) {
      w.seek(6);  // src MAC follows the 6-byte dst MAC
    }
    mac.write(w);
  }

  const Ipv4Address old_ip = rewrite_src ? view->ip.src : view->ip.dst;
  const std::size_t addr_offset =
      view->l3_offset + (rewrite_src ? 12 : 16);  // fixed IPv4 field offsets

  // IPv4 address field.
  {
    BufWriter w(mutable_view());
    w.seek(addr_offset);
    new_ip.write(w);
  }

  // Incremental IPv4 header checksum fix-up (RFC 1624).
  {
    const std::uint16_t new_ip_csum = checksum_update32(
        view->ip.header_checksum, old_ip.value(), new_ip.value());
    BufWriter w(mutable_view());
    w.seek(view->l3_offset + 10);
    w.u16(new_ip_csum);
  }

  // L4 checksum covers the pseudo-header (addresses), so fix it too.
  if (view->tcp.has_value()) {
    const std::uint16_t new_csum = checksum_update32(
        view->tcp->checksum, old_ip.value(), new_ip.value());
    BufWriter w(mutable_view());
    w.seek(view->l4_offset + 16);
    w.u16(new_csum);
  } else if (view->udp.has_value() && view->udp->checksum != 0) {
    const std::uint16_t new_csum = checksum_update32(
        view->udp->checksum, old_ip.value(), new_ip.value());
    BufWriter w(mutable_view());
    w.seek(view->l4_offset + 6);
    w.u16(new_csum == 0 ? 0xFFFF : new_csum);  // UDP: 0 means "no checksum"
  }
}

void Frame::rewrite_source(const MacAddress& new_src_mac,
                           const Ipv4Address& new_src_ip) {
  rewrite_ip(/*rewrite_src=*/true, new_src_mac, new_src_ip);
}

void Frame::rewrite_destination(const MacAddress& new_dst_mac,
                                const Ipv4Address& new_dst_ip) {
  rewrite_ip(/*rewrite_src=*/false, new_dst_mac, new_dst_ip);
}

bool Frame::checksums_valid() const {
  const auto view = parse();
  if (!view) return false;

  // IPv4 header checksum over the raw header bytes must fold to zero.
  const auto ip_header = cview().subspan(
      view->l3_offset, view->ip.header_length());
  if (internet_checksum(ip_header) != 0) return false;

  const std::size_t l4_length =
      view->l3_offset + view->ip.total_length - view->l4_offset;
  const auto segment = cview().subspan(view->l4_offset, l4_length);
  if (view->tcp.has_value()) {
    // Checksumming the segment with the checksum field in place folds to 0.
    ChecksumAccumulator acc;
    acc.add_u32(view->ip.src.value());
    acc.add_u32(view->ip.dst.value());
    acc.add_u16(static_cast<std::uint16_t>(IpProto::kTcp));
    acc.add_u16(static_cast<std::uint16_t>(l4_length));
    acc.add(segment);
    return acc.finish() == 0;
  }
  if (view->udp.has_value()) {
    if (view->udp->checksum == 0) return true;  // checksum disabled
    ChecksumAccumulator acc;
    acc.add_u32(view->ip.src.value());
    acc.add_u32(view->ip.dst.value());
    acc.add_u16(static_cast<std::uint16_t>(IpProto::kUdp));
    acc.add_u16(static_cast<std::uint16_t>(l4_length));
    acc.add(segment);
    return acc.finish() == 0;
  }
  return true;
}

FrameBuilder& FrameBuilder::eth_src(const MacAddress& mac) {
  eth_.src = mac;
  return *this;
}

FrameBuilder& FrameBuilder::eth_dst(const MacAddress& mac) {
  eth_.dst = mac;
  return *this;
}

FrameBuilder& FrameBuilder::ip_src(const Ipv4Address& ip) {
  ip_.src = ip;
  return *this;
}

FrameBuilder& FrameBuilder::ip_dst(const Ipv4Address& ip) {
  ip_.dst = ip;
  return *this;
}

FrameBuilder& FrameBuilder::ip_ttl(std::uint8_t ttl) {
  ip_.ttl = ttl;
  return *this;
}

FrameBuilder& FrameBuilder::ip_id(std::uint16_t id) {
  ip_.identification = id;
  return *this;
}

FrameBuilder& FrameBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port,
                                std::uint32_t seq, std::uint8_t flags) {
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.seq = seq;
  h.flags = flags;
  tcp_ = h;
  udp_.reset();
  return *this;
}

FrameBuilder& FrameBuilder::udp(std::uint16_t src_port,
                                std::uint16_t dst_port) {
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  udp_ = h;
  tcp_.reset();
  return *this;
}

FrameBuilder& FrameBuilder::payload(std::span<const Byte> data) {
  payload_.assign(data.begin(), data.end());
  return *this;
}

FrameBuilder& FrameBuilder::payload_size(std::size_t n) {
  payload_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload_[i] = static_cast<Byte>(i & 0xFF);
  }
  return *this;
}

Frame FrameBuilder::build() const {
  MIDRR_REQUIRE(tcp_.has_value() || udp_.has_value(),
                "FrameBuilder: choose tcp() or udp() before build()");
  const std::size_t l4_header_size =
      tcp_ ? TcpHeader::kMinSize : UdpHeader::kSize;
  const std::size_t l4_length = l4_header_size + payload_.size();
  const std::size_t ip_total = Ipv4Header::kMinSize + l4_length;
  MIDRR_REQUIRE(ip_total <= 0xFFFF, "frame exceeds IPv4 maximum size");

  ByteBuffer buf(EthernetHeader::kSize + ip_total, 0);

  Ipv4Header ip = ip_;
  ip.protocol = tcp_ ? IpProto::kTcp : IpProto::kUdp;
  ip.total_length = static_cast<std::uint16_t>(ip_total);
  ip.header_checksum = ip.compute_checksum();

  // Serialize the L4 segment first (checksum zero), checksum it, then emit
  // everything in order.
  ByteBuffer segment(l4_length, 0);
  {
    BufWriter w(segment);
    if (tcp_) {
      TcpHeader t = *tcp_;
      t.checksum = 0;
      t.write(w);
    } else {
      UdpHeader u = *udp_;
      u.length = static_cast<std::uint16_t>(l4_length);
      u.checksum = 0;
      u.write(w);
    }
    w.bytes(payload_);
  }
  std::uint16_t l4_csum = l4_checksum(ip.src, ip.dst, ip.protocol, segment);
  if (udp_ && l4_csum == 0) l4_csum = 0xFFFF;  // UDP: zero is reserved
  {
    BufWriter w(segment);
    w.seek(tcp_ ? 16u : 6u);
    w.u16(l4_csum);
  }

  BufWriter w(buf);
  eth_.write(w);
  ip.write(w);
  w.bytes(segment);
  return Frame(std::move(buf));
}

}  // namespace midrr::net
