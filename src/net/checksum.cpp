#include "net/checksum.hpp"

namespace midrr::net {

void ChecksumAccumulator::add(std::span<const Byte> data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the dangling byte from the previous range: it was the high
    // byte; this one is the low byte of the same 16-bit word.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint64_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint64_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) {
  const Byte bytes[2] = {static_cast<Byte>(v >> 8), static_cast<Byte>(v & 0xFF)};
  add(std::span<const Byte>(bytes, 2));
}

void ChecksumAccumulator::add_u32(std::uint32_t v) {
  add_u16(static_cast<std::uint16_t>(v >> 16));
  add_u16(static_cast<std::uint16_t>(v & 0xFFFF));
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xFFFF) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const Byte> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t checksum_update(std::uint16_t old_checksum,
                              std::uint16_t old_word, std::uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t checksum_update32(std::uint16_t old_checksum,
                                std::uint32_t old_value,
                                std::uint32_t new_value) {
  std::uint16_t c = checksum_update(old_checksum,
                                    static_cast<std::uint16_t>(old_value >> 16),
                                    static_cast<std::uint16_t>(new_value >> 16));
  c = checksum_update(c, static_cast<std::uint16_t>(old_value & 0xFFFF),
                      static_cast<std::uint16_t>(new_value & 0xFFFF));
  return c;
}

}  // namespace midrr::net
