// Wire-format headers: Ethernet II, IPv4, TCP, UDP.
//
// Each header type is a plain value with `read`/`write` against the
// bounds-checked buffer cursors and explicit checksum helpers.  Only the
// fields the bridge and tests need are modeled richly; the rest round-trip
// verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "net/bytes.hpp"

namespace midrr::net {

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86DD,
};

/// Ethernet II frame header (no 802.1Q tag support; the paper's bridge
/// operates on untagged frames).
struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst;
  MacAddress src;
  EtherType ether_type = EtherType::kIpv4;

  void write(BufWriter& w) const;
  static EthernetHeader read(BufReader& r);
};

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// IPv4 header without options (IHL fixed at 5, as emitted by the bridge;
/// packets carrying options are parsed and the options preserved opaquely).
struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words; >= 5
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF set, offset 0
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  std::uint16_t header_checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  std::size_t header_length() const { return std::size_t{ihl} * 4; }
  std::size_t payload_length() const { return total_length - header_length(); }

  /// Serializes with `header_checksum` as stored; call compute_checksum
  /// first (or fix up afterwards) for a valid packet.
  void write(BufWriter& w) const;
  static Ipv4Header read(BufReader& r);

  /// Checksum over this header with the checksum field taken as zero.
  std::uint16_t compute_checksum() const;
  bool checksum_valid() const { return compute_checksum() == header_checksum; }
};

/// TCP header (options preserved opaquely via data_offset).
struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words; >= 5
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  std::size_t header_length() const { return std::size_t{data_offset} * 4; }

  void write(BufWriter& w) const;
  static TcpHeader read(BufReader& r);
};

/// UDP header.
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void write(BufWriter& w) const;
  static UdpHeader read(BufReader& r);
};

/// Checksum over the TCP/UDP pseudo-header plus the L4 segment bytes
/// (`segment` must contain the L4 header with its checksum field zeroed,
/// followed by the payload).
std::uint16_t l4_checksum(const Ipv4Address& src, const Ipv4Address& dst,
                          IpProto proto, std::span<const Byte> segment);

}  // namespace midrr::net
