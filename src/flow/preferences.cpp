#include "flow/preferences.hpp"

#include "util/assert.hpp"

namespace midrr {

IfaceId Preferences::add_interface(std::string name) {
  IfaceEntry e;
  e.live = true;
  e.name = name.empty() ? ("iface" + std::to_string(ifaces_.size())) : std::move(name);
  ifaces_.push_back(std::move(e));
  for (auto& f : flows_) {
    f.willing.resize(ifaces_.size(), false);
  }
  ++version_;
  return static_cast<IfaceId>(ifaces_.size() - 1);
}

FlowId Preferences::add_flow(double weight, const std::vector<IfaceId>& willing,
                             std::string name) {
  MIDRR_REQUIRE(weight > 0.0, "flow weight must be positive");
  FlowEntry e;
  e.live = true;
  e.weight = weight;
  e.willing.assign(ifaces_.size(), false);
  e.name = name.empty() ? ("flow" + std::to_string(flows_.size())) : std::move(name);
  for (IfaceId j : willing) {
    MIDRR_REQUIRE(iface_exists(j), "willing list references unknown interface");
    e.willing[j] = true;
  }
  flows_.push_back(std::move(e));
  ++version_;
  return static_cast<FlowId>(flows_.size() - 1);
}

void Preferences::remove_flow(FlowId flow) {
  flow_entry(flow).live = false;
  ++version_;
}

void Preferences::remove_interface(IfaceId iface) {
  MIDRR_REQUIRE(iface_exists(iface), "removing unknown interface");
  ifaces_[iface].live = false;
  ++version_;
}

bool Preferences::flow_exists(FlowId flow) const {
  return flow < flows_.size() && flows_[flow].live;
}

bool Preferences::iface_exists(IfaceId iface) const {
  return iface < ifaces_.size() && ifaces_[iface].live;
}

const Preferences::FlowEntry& Preferences::flow_entry(FlowId flow) const {
  MIDRR_REQUIRE(flow_exists(flow), "unknown flow id");
  return flows_[flow];
}

Preferences::FlowEntry& Preferences::flow_entry(FlowId flow) {
  MIDRR_REQUIRE(flow_exists(flow), "unknown flow id");
  return flows_[flow];
}

bool Preferences::willing(FlowId flow, IfaceId iface) const {
  const auto& f = flow_entry(flow);
  if (!iface_exists(iface)) return false;
  return iface < f.willing.size() && f.willing[iface];
}

void Preferences::set_willing(FlowId flow, IfaceId iface, bool value) {
  MIDRR_REQUIRE(iface_exists(iface), "unknown interface id");
  auto& f = flow_entry(flow);
  f.willing[iface] = value;
  ++version_;
}

double Preferences::weight(FlowId flow) const { return flow_entry(flow).weight; }

void Preferences::set_weight(FlowId flow, double weight) {
  MIDRR_REQUIRE(weight > 0.0, "flow weight must be positive");
  flow_entry(flow).weight = weight;
  ++version_;
}

const std::string& Preferences::flow_name(FlowId flow) const {
  return flow_entry(flow).name;
}

const std::string& Preferences::iface_name(IfaceId iface) const {
  MIDRR_REQUIRE(iface_exists(iface), "unknown interface id");
  return ifaces_[iface].name;
}

std::vector<FlowId> Preferences::flows_willing(IfaceId iface) const {
  MIDRR_REQUIRE(iface_exists(iface), "unknown interface id");
  std::vector<FlowId> out;
  for (FlowId i = 0; i < flows_.size(); ++i) {
    if (flows_[i].live && iface < flows_[i].willing.size() &&
        flows_[i].willing[iface]) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<IfaceId> Preferences::ifaces_of(FlowId flow) const {
  const auto& f = flow_entry(flow);
  std::vector<IfaceId> out;
  for (IfaceId j = 0; j < f.willing.size(); ++j) {
    if (f.willing[j] && iface_exists(j)) out.push_back(j);
  }
  return out;
}

std::vector<FlowId> Preferences::flows() const {
  std::vector<FlowId> out;
  for (FlowId i = 0; i < flows_.size(); ++i) {
    if (flows_[i].live) out.push_back(i);
  }
  return out;
}

std::vector<IfaceId> Preferences::ifaces() const {
  std::vector<IfaceId> out;
  for (IfaceId j = 0; j < ifaces_.size(); ++j) {
    if (ifaces_[j].live) out.push_back(j);
  }
  return out;
}

std::size_t Preferences::flow_count() const { return flows().size(); }
std::size_t Preferences::iface_count() const { return ifaces().size(); }

}  // namespace midrr
