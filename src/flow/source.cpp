#include "flow/source.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace midrr {

SizeDistribution SizeDistribution::fixed(std::uint32_t size) {
  MIDRR_REQUIRE(size > 0, "packet size must be positive");
  SizeDistribution d;
  d.kind_ = Kind::kFixed;
  d.a_ = size;
  d.max_ = size;
  return d;
}

SizeDistribution SizeDistribution::uniform(std::uint32_t lo, std::uint32_t hi) {
  MIDRR_REQUIRE(lo > 0 && lo <= hi, "invalid uniform size range");
  SizeDistribution d;
  d.kind_ = Kind::kUniform;
  d.a_ = lo;
  d.b_ = hi;
  d.max_ = hi;
  return d;
}

SizeDistribution SizeDistribution::bimodal(std::uint32_t small,
                                           std::uint32_t large,
                                           double p_small) {
  MIDRR_REQUIRE(small > 0 && large >= small, "invalid bimodal sizes");
  MIDRR_REQUIRE(p_small >= 0.0 && p_small <= 1.0, "invalid probability");
  SizeDistribution d;
  d.kind_ = Kind::kBimodal;
  d.a_ = small;
  d.b_ = large;
  d.p_ = p_small;
  d.max_ = large;
  return d;
}

std::uint32_t SizeDistribution::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return a_;
    case Kind::kUniform:
      return static_cast<std::uint32_t>(rng.uniform_int(a_, b_));
    case Kind::kBimodal:
      return rng.coin(p_) ? a_ : b_;
  }
  return a_;
}

std::vector<std::uint32_t> TrafficSource::on_start(Rng&) { return {}; }

std::vector<std::uint32_t> TrafficSource::on_dequeue(std::uint32_t, Rng&) {
  return {};
}

std::optional<SourceEmission> TrafficSource::next_arrival(Rng&) {
  return std::nullopt;
}

bool TrafficSource::exhausted() const { return false; }

BackloggedSource::BackloggedSource(SizeDistribution sizes,
                                   std::uint64_t total_bytes,
                                   std::size_t depth)
    : sizes_(sizes), total_bytes_(total_bytes), depth_(depth) {
  MIDRR_REQUIRE(depth > 0, "backlogged source needs positive queue depth");
}

std::optional<std::uint32_t> BackloggedSource::draw(Rng& rng) {
  if (total_bytes_ != 0 && emitted_bytes_ >= total_bytes_) return std::nullopt;
  std::uint32_t size = sizes_.sample(rng);
  if (total_bytes_ != 0) {
    const std::uint64_t remaining = total_bytes_ - emitted_bytes_;
    // Clip the final packet so the flow transfers exactly total_bytes_.
    size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(size, remaining));
  }
  emitted_bytes_ += size;
  return size;
}

std::vector<std::uint32_t> BackloggedSource::on_start(Rng& rng) {
  std::vector<std::uint32_t> out;
  for (std::size_t k = 0; k < depth_; ++k) {
    const auto s = draw(rng);
    if (!s) break;
    out.push_back(*s);
  }
  return out;
}

std::vector<std::uint32_t> BackloggedSource::on_dequeue(std::uint32_t,
                                                        Rng& rng) {
  const auto s = draw(rng);
  if (!s) return {};
  return {*s};
}

bool BackloggedSource::exhausted() const {
  return total_bytes_ != 0 && emitted_bytes_ >= total_bytes_;
}

CbrSource::CbrSource(double rate_bps, std::uint32_t packet_size,
                     std::uint64_t total_bytes)
    : gap_(transmission_time(packet_size, rate_bps)),
      packet_size_(packet_size),
      total_bytes_(total_bytes) {
  MIDRR_REQUIRE(packet_size > 0, "packet size must be positive");
}

std::optional<SourceEmission> CbrSource::next_arrival(Rng&) {
  if (exhausted()) return std::nullopt;
  emitted_bytes_ += packet_size_;
  SourceEmission e;
  e.gap = first_ ? 0 : gap_;
  e.size_bytes = packet_size_;
  first_ = false;
  return e;
}

bool CbrSource::exhausted() const {
  return total_bytes_ != 0 && emitted_bytes_ >= total_bytes_;
}

PoissonSource::PoissonSource(double mean_rate_bps, SizeDistribution sizes,
                             std::uint64_t total_bytes)
    : rate_bps_hint_(mean_rate_bps), sizes_(sizes), total_bytes_(total_bytes) {
  MIDRR_REQUIRE(mean_rate_bps > 0.0, "mean rate must be positive");
}

std::optional<SourceEmission> PoissonSource::next_arrival(Rng& rng) {
  if (exhausted()) return std::nullopt;
  SourceEmission e;
  e.size_bytes = sizes_.sample(rng);
  const double mean_gap =
      static_cast<double>(e.size_bytes) * 8.0 / rate_bps_hint_;
  e.gap = from_seconds(rng.exponential(mean_gap));
  emitted_bytes_ += e.size_bytes;
  return e;
}

bool PoissonSource::exhausted() const {
  return total_bytes_ != 0 && emitted_bytes_ >= total_bytes_;
}

OnOffSource::OnOffSource(double burst_rate_bps, std::uint32_t packet_size,
                         double mean_on_seconds, double mean_off_seconds)
    : gap_(transmission_time(packet_size, burst_rate_bps)),
      packet_size_(packet_size),
      mean_on_(mean_on_seconds),
      mean_off_(mean_off_seconds) {
  MIDRR_REQUIRE(mean_on_seconds > 0.0 && mean_off_seconds >= 0.0,
                "invalid on/off durations");
}

std::optional<SourceEmission> OnOffSource::next_arrival(Rng& rng) {
  SourceEmission e;
  e.size_bytes = packet_size_;
  if (burst_left_ <= 0) {
    // Start a new burst after an off period.
    const double off = mean_off_ > 0.0 ? rng.exponential(mean_off_) : 0.0;
    burst_left_ = from_seconds(rng.exponential(mean_on_));
    e.gap = from_seconds(off) + gap_;
  } else {
    e.gap = gap_;
  }
  burst_left_ -= e.gap;
  return e;
}

}  // namespace midrr
