#include "flow/queue.hpp"

#include "util/assert.hpp"

namespace midrr {

bool FlowQueue::enqueue(Packet p) {
  MIDRR_REQUIRE(p.size_bytes > 0, "zero-size packet");
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + p.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += p.size_bytes;
    return false;
  }
  backlog_bytes_ += p.size_bytes;
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += p.size_bytes;
  packets_.push_back(std::move(p));
  return true;
}

std::optional<Packet> FlowQueue::dequeue() {
  if (packets_.empty()) return std::nullopt;
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  MIDRR_ASSERT(backlog_bytes_ >= p.size_bytes, "backlog accounting underflow");
  backlog_bytes_ -= p.size_bytes;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  return p;
}

std::optional<std::uint32_t> FlowQueue::head_size() const {
  if (packets_.empty()) return std::nullopt;
  return packets_.front().size_bytes;
}

void FlowQueue::clear() {
  backlog_bytes_ = 0;
  packets_.clear();
}

}  // namespace midrr
