#include "flow/queue.hpp"

#include "util/assert.hpp"

namespace midrr {

void FlowQueue::grow() {
  const std::size_t new_cap = ring_.empty() ? 16 : ring_.size() * 2;
  std::vector<Packet> next(new_cap);
  for (std::size_t i = 0; i < count_; ++i) {
    next[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
  }
  ring_.swap(next);
  head_ = 0;
}

bool FlowQueue::enqueue(Packet p) {
  MIDRR_REQUIRE(p.size_bytes > 0, "zero-size packet");
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + p.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += p.size_bytes;
    return false;
  }
  backlog_bytes_ += p.size_bytes;
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += p.size_bytes;
  if (count_ == ring_.size()) grow();
  ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(p);
  ++count_;
  return true;
}

std::optional<Packet> FlowQueue::dequeue() {
  if (count_ == 0) return std::nullopt;
  Packet p = std::move(ring_[head_]);
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
  MIDRR_ASSERT(backlog_bytes_ >= p.size_bytes, "backlog accounting underflow");
  backlog_bytes_ -= p.size_bytes;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  return p;
}

std::optional<std::uint32_t> FlowQueue::head_size() const {
  if (count_ == 0) return std::nullopt;
  return ring_[head_].size_bytes;
}

void FlowQueue::clear() {
  // Release queued packets' frame references but keep the ring capacity.
  for (std::size_t i = 0; i < count_; ++i) {
    ring_[(head_ + i) & (ring_.size() - 1)] = Packet{};
  }
  backlog_bytes_ = 0;
  head_ = 0;
  count_ = 0;
}

}  // namespace midrr
