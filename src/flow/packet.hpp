// The unit of scheduling.
//
// A Packet is what the schedulers move: flow membership, a size, and
// timestamps.  When the packet entered through the virtual-interface bridge
// it also carries the actual wire frame (shared, immutable until the bridge
// rewrites its own copy on transmit).  Simulation-only packets carry no
// frame and are pure (flow, size) records, which keeps the hot path cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "flow/ids.hpp"
#include "net/packet.hpp"
#include "util/time.hpp"

namespace midrr {

struct Packet {
  FlowId flow = kInvalidFlow;
  std::uint32_t size_bytes = 0;
  std::uint64_t seq = 0;         ///< per-flow sequence number (FIFO check)
  SimTime enqueued_at = 0;       ///< when the packet entered its flow queue
  std::uint64_t trace = 0;       ///< stage-trace tag; 0 = untraced
  std::shared_ptr<const net::Frame> frame;  ///< wire frame, if any

  Packet() = default;
  Packet(FlowId f, std::uint32_t size, std::uint64_t sequence = 0,
         SimTime t = 0)
      : flow(f), size_bytes(size), seq(sequence), enqueued_at(t) {}
};

}  // namespace midrr
