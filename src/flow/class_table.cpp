#include "flow/class_table.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace midrr {

std::size_t ClassKeyHash::operator()(const ClassKey& key) const {
  // FNV-1a over the weight bits, the queue bound, and the willing row.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  mix(std::bit_cast<std::uint64_t>(key.weight));
  mix(key.queue_capacity_bytes);
  for (const IfaceId j : key.willing) mix(j);
  return static_cast<std::size_t>(h);
}

void normalize_key(ClassKey& key) {
  std::sort(key.willing.begin(), key.willing.end());
  key.willing.erase(std::unique(key.willing.begin(), key.willing.end()),
                    key.willing.end());
}

ClassId ClassTable::intern(const ClassKey& key) {
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  const ClassId cls = static_cast<ClassId>(entries_.size());
  entries_.push_back(Entry{key, 0});
  by_key_.emplace(key, cls);
  return cls;
}

ClassId ClassTable::find(const ClassKey& key) const {
  const auto it = by_key_.find(key);
  return it != by_key_.end() ? it->second : kInvalidClass;
}

void ClassTable::add_member(ClassId cls, std::size_t count) {
  MIDRR_ASSERT(cls < entries_.size(), "add_member for unknown class");
  Entry& e = entries_[cls];
  if (e.members == 0 && count > 0) ++live_;
  e.members += count;
}

void ClassTable::remove_member(ClassId cls) {
  MIDRR_ASSERT(cls < entries_.size(), "remove_member for unknown class");
  Entry& e = entries_[cls];
  MIDRR_ASSERT(e.members > 0, "remove_member from an empty class");
  if (--e.members == 0) --live_;
}

std::size_t ClassTable::member_count(ClassId cls) const {
  return cls < entries_.size() ? entries_[cls].members : 0;
}

const ClassKey& ClassTable::key(ClassId cls) const {
  MIDRR_ASSERT(cls < entries_.size(), "key for unknown class");
  return entries_[cls].key;
}

std::vector<ClassId> ClassTable::live() const {
  std::vector<ClassId> out;
  out.reserve(live_);
  for (ClassId c = 0; c < entries_.size(); ++c) {
    if (entries_[c].members > 0) out.push_back(c);
  }
  return out;
}

}  // namespace midrr
