// ClassTable: interning of flow classes.
//
// A flow class is the equivalence class of flows that share an identical
// preference row Pi, rate weight phi, and queue bound.  Aggregating such
// flows into one schedulable unit is what collapses per-flow state and
// publish cost from O(flows) to O(classes) at million-flow scale: the DRR
// quantum results carry over because members are indistinguishable to the
// allocator (each contributes the same phi to the same interfaces).
//
// The table maps ClassKey -> dense ClassId.  Ids are never reused: a class
// whose last member leaves stays interned with zero members and revives
// under the SAME id when a matching flow appears again, so per-class flat
// arenas (deficit matrices, rings, counters) stay valid across churn.
// Weight comparison is exact (bitwise double equality): two flows share a
// class only when their phis are literally equal, which is the common case
// when weights come from a small set of service tiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flow/ids.hpp"

namespace midrr {

/// Everything that defines class identity.  `willing` must be sorted
/// ascending and deduplicated (normalize_key() does both).
struct ClassKey {
  double weight = 1.0;
  std::vector<IfaceId> willing{};
  std::uint64_t queue_capacity_bytes = 0;

  bool operator==(const ClassKey& other) const = default;
};

struct ClassKeyHash {
  std::size_t operator()(const ClassKey& key) const;
};

/// Sorts and deduplicates the willing row in place.
void normalize_key(ClassKey& key);

class ClassTable {
 public:
  /// Find-or-create: returns the id of the class with `key`, minting a new
  /// dense id on first sight.  `key` must be normalized.  Does NOT change
  /// the member count.
  ClassId intern(const ClassKey& key);

  /// Lookup without creation; kInvalidClass when absent.
  ClassId find(const ClassKey& key) const;

  void add_member(ClassId cls, std::size_t count = 1);
  void remove_member(ClassId cls);

  std::size_t member_count(ClassId cls) const;
  const ClassKey& key(ClassId cls) const;

  /// One past the largest id ever minted (per-class arenas size by this).
  std::size_t slots() const { return entries_.size(); }

  /// Classes currently holding at least one member.
  std::size_t live_count() const { return live_; }

  /// Live class ids, ascending (O(slots) scan; control-path only).
  std::vector<ClassId> live() const;

 private:
  struct Entry {
    ClassKey key;
    std::size_t members = 0;
  };

  std::unordered_map<ClassKey, ClassId, ClassKeyHash> by_key_;
  std::vector<Entry> entries_;  // by ClassId
  std::size_t live_ = 0;
};

}  // namespace midrr
