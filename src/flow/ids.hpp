// Identifiers shared across the library.
//
// FlowId names an application flow (the unit the user attaches preferences
// to); IfaceId names a physical network interface.  Both are dense small
// integers handed out by the owning registry (Preferences / bridges), which
// lets schedulers use flat vectors for their per-flow / per-interface state.
#pragma once

#include <cstdint>
#include <limits>

namespace midrr {

using FlowId = std::uint32_t;
using IfaceId = std::uint32_t;

/// Names a flow class: the equivalence class of flows sharing one
/// preference row Pi, one weight phi, and one queue bound.  Dense ids
/// minted by ClassTable; never reused (an emptied class keeps its id and
/// revives when a matching flow appears again).
using ClassId = std::uint32_t;

inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();
inline constexpr IfaceId kInvalidIface = std::numeric_limits<IfaceId>::max();
inline constexpr ClassId kInvalidClass = std::numeric_limits<ClassId>::max();

}  // namespace midrr
