// Identifiers shared across the library.
//
// FlowId names an application flow (the unit the user attaches preferences
// to); IfaceId names a physical network interface.  Both are dense small
// integers handed out by the owning registry (Preferences / bridges), which
// lets schedulers use flat vectors for their per-flow / per-interface state.
#pragma once

#include <cstdint>
#include <limits>

namespace midrr {

using FlowId = std::uint32_t;
using IfaceId = std::uint32_t;

inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();
inline constexpr IfaceId kInvalidIface = std::numeric_limits<IfaceId>::max();

}  // namespace midrr
