// Per-flow FIFO packet queue with byte accounting and an optional capacity
// bound (tail drop), plus the service counters S_i(t1, t2] that the paper's
// fairness metric (Definition 3) is computed from.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/packet.hpp"
#include "util/time.hpp"

namespace midrr {

/// Counters of everything a flow queue has seen; the raw material for the
/// directional fairness metric and for goodput reporting.
struct FlowQueueStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t enqueued_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;  ///< S_i(0, now] in bytes
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
};

/// FIFO queue for one flow.
class FlowQueue {
 public:
  /// `capacity_bytes` of 0 means unbounded.
  explicit FlowQueue(std::uint64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Appends a packet; returns false (and drops it) if the byte bound would
  /// be exceeded.
  bool enqueue(Packet p);

  /// Removes and returns the head packet; nullopt when empty.
  std::optional<Packet> dequeue();

  /// Size in bytes of the head-of-line packet (the paper's Size_i);
  /// nullopt when empty.
  std::optional<std::uint32_t> head_size() const;

  bool empty() const { return count_ == 0; }
  std::uint64_t backlog_bytes() const { return backlog_bytes_; }  ///< BL_i
  std::size_t backlog_packets() const { return count_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }  ///< 0 = unbounded

  const FlowQueueStats& stats() const { return stats_; }

  /// Discards all queued packets (flow removal).
  void clear();

 private:
  void grow();

  // Power-of-two circular buffer instead of std::deque: a deque allocates
  // and frees a block every ~dozen packets, which on the runtime's data
  // path happens under the shard mutex.  The ring grows geometrically and
  // never shrinks, so a queue at steady state enqueues and dequeues with
  // zero allocator traffic.
  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::vector<Packet> ring_;  // size is a power of two (or 0 before first use)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  FlowQueueStats stats_;
};

}  // namespace midrr
