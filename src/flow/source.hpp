// Traffic sources: how a flow's packets come into being.
//
// Sources are pure generators -- they hold no reference to the simulator.
// The simulation layer (sim/workload.hpp) drives them through three hooks:
//   * on_start()        -> packets to enqueue when the flow begins,
//   * on_dequeue()      -> packets to enqueue right after one is sent
//                          (this is how "continuously backlogged" flows are
//                          modeled without unbounded queues),
//   * next_arrival()    -> timer-driven arrivals (CBR / Poisson / on-off).
//
// The paper's experiments use backlogged flows with finite volumes (Fig 6:
// flow a completes at 66 s, flow b at 85 s) and rate-limited HTTP-like
// flows (Fig 10); both are expressible here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace midrr {

/// Distribution of packet sizes in bytes.
class SizeDistribution {
 public:
  /// Every packet is `size` bytes.
  static SizeDistribution fixed(std::uint32_t size);
  /// Uniform over [lo, hi].
  static SizeDistribution uniform(std::uint32_t lo, std::uint32_t hi);
  /// Internet-like mix: `small` bytes with probability p_small, else `large`.
  static SizeDistribution bimodal(std::uint32_t small, std::uint32_t large,
                                  double p_small);

  std::uint32_t sample(Rng& rng) const;
  std::uint32_t max_size() const { return max_; }

 private:
  enum class Kind { kFixed, kUniform, kBimodal };
  Kind kind_ = Kind::kFixed;
  std::uint32_t a_ = 1500;
  std::uint32_t b_ = 1500;
  double p_ = 0.0;
  std::uint32_t max_ = 1500;
};

/// A timer-driven packet arrival: wait `gap`, then a packet of `size_bytes`.
struct SourceEmission {
  SimDuration gap = 0;
  std::uint32_t size_bytes = 0;
};

/// Base interface for packet generation policies.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Packet sizes to enqueue immediately when the flow starts.
  virtual std::vector<std::uint32_t> on_start(Rng& rng);

  /// Packet sizes to enqueue right after a packet of this flow was sent.
  virtual std::vector<std::uint32_t> on_dequeue(std::uint32_t dequeued_bytes,
                                                Rng& rng);

  /// Next timer-driven arrival; nullopt if this source has none (left).
  virtual std::optional<SourceEmission> next_arrival(Rng& rng);

  /// True once the source will never emit again (lets the workload driver
  /// retire the flow when its queue also drains).
  virtual bool exhausted() const;
};

/// Continuously backlogged source, optionally bounded by a total volume.
/// Keeps `depth` packets in the queue; refills one per dequeue.
class BackloggedSource final : public TrafficSource {
 public:
  /// `total_bytes` of 0 means unbounded (backlogged forever).
  BackloggedSource(SizeDistribution sizes, std::uint64_t total_bytes = 0,
                   std::size_t depth = 8);

  std::vector<std::uint32_t> on_start(Rng& rng) override;
  std::vector<std::uint32_t> on_dequeue(std::uint32_t dequeued_bytes,
                                        Rng& rng) override;
  bool exhausted() const override;

  std::uint64_t emitted_bytes() const { return emitted_bytes_; }

 private:
  std::optional<std::uint32_t> draw(Rng& rng);

  SizeDistribution sizes_;
  std::uint64_t total_bytes_;
  std::size_t depth_;
  std::uint64_t emitted_bytes_ = 0;
};

/// Constant-bit-rate source: fixed-size packets at a fixed rate.
class CbrSource final : public TrafficSource {
 public:
  CbrSource(double rate_bps, std::uint32_t packet_size,
            std::uint64_t total_bytes = 0);

  std::optional<SourceEmission> next_arrival(Rng& rng) override;
  bool exhausted() const override;

 private:
  SimDuration gap_;
  std::uint32_t packet_size_;
  std::uint64_t total_bytes_;
  std::uint64_t emitted_bytes_ = 0;
  bool first_ = true;
};

/// Poisson arrivals with i.i.d. sizes.
class PoissonSource final : public TrafficSource {
 public:
  /// `mean_rate_bps` is the long-run average bit rate.
  PoissonSource(double mean_rate_bps, SizeDistribution sizes,
                std::uint64_t total_bytes = 0);

  std::optional<SourceEmission> next_arrival(Rng& rng) override;
  bool exhausted() const override;

 private:
  double rate_bps_hint_;
  SizeDistribution sizes_;
  std::uint64_t total_bytes_;
  std::uint64_t emitted_bytes_ = 0;
};

/// Factory for sources: each run of a scenario needs fresh source state.
using SourceFactory = std::function<std::unique_ptr<TrafficSource>()>;

/// Exponential on/off source: CBR bursts separated by silences.
class OnOffSource final : public TrafficSource {
 public:
  OnOffSource(double burst_rate_bps, std::uint32_t packet_size,
              double mean_on_seconds, double mean_off_seconds);

  std::optional<SourceEmission> next_arrival(Rng& rng) override;

 private:
  SimDuration gap_;
  std::uint32_t packet_size_;
  double mean_on_;
  double mean_off_;
  SimDuration burst_left_ = 0;
};

}  // namespace midrr
