// User preferences: the interface-preference matrix Pi and the
// rate-preference weights phi of the paper's Section 2 model (Fig 2).
//
// Preferences is the registry of flows and interfaces: it mints dense ids,
// stores the bipartite willingness graph, and validates inputs (weights must
// be positive; a flow may have an empty preference row -- it then simply
// never gets scheduled, which tests cover).  Schedulers observe it through
// the read-only API and are notified of changes by their owner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/ids.hpp"

namespace midrr {

/// The (Pi, phi) preference state for a set of flows and interfaces.
class Preferences {
 public:
  /// Registers a new interface; returns its dense id.
  IfaceId add_interface(std::string name = {});

  /// Registers a new flow with rate-preference weight `weight` (> 0) and
  /// the given willingness row; returns its dense id.
  FlowId add_flow(double weight, const std::vector<IfaceId>& willing,
                  std::string name = {});

  /// Removes a flow; its id is never reused.
  void remove_flow(FlowId flow);

  /// Removes an interface (e.g. WiFi went away); its id is never reused.
  void remove_interface(IfaceId iface);

  bool flow_exists(FlowId flow) const;
  bool iface_exists(IfaceId iface) const;

  /// pi_{flow,iface}: is the flow willing to use the interface?
  bool willing(FlowId flow, IfaceId iface) const;

  /// Updates one entry of Pi.
  void set_willing(FlowId flow, IfaceId iface, bool value);

  /// phi_flow.
  double weight(FlowId flow) const;
  void set_weight(FlowId flow, double weight);

  const std::string& flow_name(FlowId flow) const;
  const std::string& iface_name(IfaceId iface) const;

  /// Flows willing to use `iface` (the paper's F_j), in id order.
  std::vector<FlowId> flows_willing(IfaceId iface) const;

  /// Interfaces flow `flow` is willing to use, in id order.
  std::vector<IfaceId> ifaces_of(FlowId flow) const;

  /// All live flow / interface ids in id order.
  std::vector<FlowId> flows() const;
  std::vector<IfaceId> ifaces() const;

  std::size_t flow_count() const;
  std::size_t iface_count() const;

  /// One past the largest id ever handed out (ids are never reused, so
  /// dense per-flow / per-interface arrays must be sized by slots, not by
  /// the live count).
  std::size_t flow_slots() const { return flows_.size(); }
  std::size_t iface_slots() const { return ifaces_.size(); }

  /// Monotone counter bumped on every mutation; lets cached views (e.g. a
  /// scheduler's per-interface flow rings) detect staleness cheaply.
  std::uint64_t version() const { return version_; }

 private:
  struct FlowEntry {
    bool live = false;
    double weight = 1.0;
    std::vector<bool> willing;  // indexed by IfaceId
    std::string name;
  };
  struct IfaceEntry {
    bool live = false;
    std::string name;
  };

  const FlowEntry& flow_entry(FlowId flow) const;
  FlowEntry& flow_entry(FlowId flow);

  std::vector<FlowEntry> flows_;
  std::vector<IfaceEntry> ifaces_;
  std::uint64_t version_ = 0;
};

}  // namespace midrr
