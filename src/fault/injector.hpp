// FaultInjector: compiles a FaultPlan into per-target timelines and serves
// them to the runtime's hot paths behind zero-cost-when-disabled seams.
//
// Determinism: everything the injector answers is a pure function of
// (plan, topology, now_ns) plus a seeded Rng owned by the CALLER for the
// probabilistic ingress faults -- each ingress port forks its own stream
// from plan.seed, so a run's fault sequence is reproducible per producer
// regardless of thread interleaving.
//
// Hot-path cost model: the runtime holds a `FaultInjector*` that is null
// in production; every seam is one pointer test.  When armed, interface
// queries are an amortized-O(1) cursor walk over a precompiled piecewise
// timeline (the worker owns the cursor), and ingress sampling is a binary
// search over a handful of windows (empty-vector early-out when the plan
// has no ingress faults).
//
// Worker stalls double as the SAFE POINT for watchdog-driven restarts: a
// stalled worker is parked inside maybe_stall() holding no locks and
// touching no runtime state, so the watchdog can -- under the injector's
// stall mutex -- bump the worker's generation and spawn a replacement
// thread, knowing the old thread will observe the new generation before it
// touches anything (see begin_restart / Runtime::restart_worker).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace midrr::telemetry {
class MetricsRegistry;
class ChromeTraceBuilder;
}  // namespace midrr::telemetry

namespace midrr::fault {

/// What an ingress offer should suffer right now.
enum class IngressAction : std::uint8_t { kNone, kDrop, kDup, kDelay };

/// One entry of the injector's (low-rate, mutex-guarded) event log --
/// consumed by tests and rendered into the Chrome trace after a run.
struct FaultLogEntry {
  SimTime at_ns = 0;
  std::string what;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Compiles the plan against a concrete topology.  Called by
  /// Runtime::start(); events targeting out-of-range interfaces or workers
  /// throw here (a plan written for 8 interfaces run against 4 is a bug).
  void attach(std::size_t iface_count, std::size_t worker_count);
  bool attached() const { return attached_; }

  const FaultPlan& plan() const { return plan_; }

  // --- Interface capacity overlay ---------------------------------------

  /// The capacity multiplier in effect for `iface` at `now` (1.0 healthy,
  /// 0.0 dead, in between for collapses).  Amortized O(1): `cursor` is
  /// owned by the calling worker and advanced monotonically.
  double iface_scale(IfaceId iface, SimTime now, std::size_t& cursor) const;

  /// Snapshot form (no cursor); O(log points).  For tests and supervision.
  double iface_scale_at(IfaceId iface, SimTime now) const;

  /// Record that a worker applied a scale transition (telemetry + log).
  void note_iface_transition(IfaceId iface, SimTime now, double scale);

  // --- Worker stalls & the restart safe point ----------------------------

  enum class StallOutcome : std::uint8_t {
    kNotStalled,  ///< no stall window covers `now`
    kResumed,     ///< parked and released; continue the drain loop
    kSuperseded,  ///< generation changed while parked; EXIT without
                  ///< touching any runtime state (a replacement runs)
  };

  /// Worker `w`'s safe point, called at the top of its loop.  If a stall
  /// window covers `now`, parks the calling thread until the window ends,
  /// a restart preempts it, or release_all() (shutdown).  `generation` is
  /// the worker's slot generation; `my_generation` the value this thread
  /// was spawned with.
  StallOutcome maybe_stall(std::uint32_t worker, SimTime now,
                           const std::atomic<std::uint64_t>& generation,
                           std::uint64_t my_generation);

  /// True while worker `w` is parked inside maybe_stall (racy peek for
  /// telemetry; the authoritative check happens inside begin_restart).
  bool worker_in_stall(std::uint32_t worker) const;

  /// Watchdog half of the restart protocol: if worker `w` is provably
  /// parked at the safe point, bumps `generation` and wakes it so it exits
  /// as kSuperseded, and returns true -- the caller may then spawn a
  /// replacement thread for the slot.  Returns false (doing nothing) when
  /// the worker is not at the safe point; a thread wedged in arbitrary
  /// code cannot be restarted safely in-process.
  bool begin_restart(std::uint32_t worker,
                     std::atomic<std::uint64_t>& generation);

  /// Wakes every parked worker (shutdown); stalls become no-ops after.
  void release_all();

  // --- Ingress faults -----------------------------------------------------

  /// True if the plan contains any ingress_drop/dup/delay events (ports
  /// skip sampling entirely otherwise).
  bool has_ingress_faults() const { return has_ingress_; }

  /// Samples the fate of one offer at `now` using the caller's stream.
  /// On kDelay, `delay_ns` receives the hold duration.  Counters for the
  /// chosen action are bumped here.
  IngressAction sample_ingress(SimTime now, Rng& rng, SimDuration& delay_ns);

  /// Derives the deterministic per-producer ingress RNG stream.
  Rng fork_ingress_rng(std::size_t producer) const {
    return Rng(plan_.seed * 0x9E3779B97F4A7C15ull + producer + 1);
  }

  // --- Pool exhaustion ----------------------------------------------------

  bool has_pool_faults() const { return !pool_windows_.empty(); }

  /// True while a pool_exhaust window covers `now`; the caller must fail
  /// the acquire and call note_pool_reject().
  bool pool_exhausted(SimTime now) const;
  void note_pool_reject() {
    pool_rejects_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Telemetry & introspection -----------------------------------------

  std::uint64_t ingress_drops() const {
    return ingress_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t ingress_dups() const {
    return ingress_dups_.load(std::memory_order_relaxed);
  }
  std::uint64_t ingress_delays() const {
    return ingress_delays_.load(std::memory_order_relaxed);
  }
  std::uint64_t pool_rejects() const {
    return pool_rejects_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalls_entered() const {
    return stalls_entered_.load(std::memory_order_relaxed);
  }
  std::uint64_t iface_transitions() const {
    return iface_transitions_.load(std::memory_order_relaxed);
  }

  /// Registers midrr_fault_* series; `registry` must outlive the injector.
  void register_metrics(telemetry::MetricsRegistry& registry);

  /// Copy of the event log (fault applications in wall order).
  std::vector<FaultLogEntry> log() const;

  /// Renders the event log as instant events under `pid`.
  void export_trace(telemetry::ChromeTraceBuilder& builder,
                    std::uint32_t pid) const;

  /// The compiled (time, scale) timeline for one interface (tests).
  const std::vector<std::pair<SimTime, double>>& iface_timeline(
      IfaceId iface) const;

 private:
  struct Window {
    SimTime begin = 0;
    SimTime end = 0;
    double probability = 0.0;
    SimDuration delay_ns = 0;
  };

  struct WorkerStalls {
    std::vector<Window> windows;  ///< merged, sorted
    std::size_t cursor = 0;       ///< owned by the worker slot's thread
    bool in_stall = false;        ///< guarded by stall_mu_
    bool preempt = false;         ///< guarded by stall_mu_
  };

  static const Window* find_window(const std::vector<Window>& windows,
                                   SimTime now);
  void append_log(SimTime at, std::string what);

  FaultPlan plan_;
  bool attached_ = false;
  bool has_ingress_ = false;

  std::vector<std::vector<std::pair<SimTime, double>>> iface_points_;
  std::vector<WorkerStalls> worker_stalls_;
  std::vector<Window> drop_windows_;
  std::vector<Window> dup_windows_;
  std::vector<Window> delay_windows_;
  std::vector<Window> pool_windows_;

  mutable std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  bool released_ = false;  ///< guarded by stall_mu_

  std::atomic<std::uint64_t> ingress_drops_{0};
  std::atomic<std::uint64_t> ingress_dups_{0};
  std::atomic<std::uint64_t> ingress_delays_{0};
  std::atomic<std::uint64_t> pool_rejects_{0};
  std::atomic<std::uint64_t> stalls_entered_{0};
  std::atomic<std::uint64_t> iface_transitions_{0};

  mutable std::mutex log_mu_;
  std::vector<FaultLogEntry> log_;
};

}  // namespace midrr::fault
