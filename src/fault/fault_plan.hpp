// FaultPlan: a deterministic, declarative schedule of failures.
//
// The paper's headline dynamic claim is that miDRR "adjusts seamlessly"
// when interfaces come, go, or change capacity.  A FaultPlan makes those
// events -- and the uglier ones real multi-homed stacks see (flapping
// radios, stalled threads, lossy ingress, exhausted buffer pools) -- a
// first-class, replayable input: a seeded list of timed events that the
// FaultInjector compiles into per-target timelines and applies to a live
// Runtime.  Two runs with the same plan (same seed) inject byte-for-byte
// the same faults, so chaos tests are regressions, not dice rolls.
//
// Wire format (JSON; see docs/ROBUSTNESS.md for the full schema):
//
//   {
//     "seed": 42,
//     "events": [
//       {"at_ms": 500,  "kind": "iface_down", "iface": 1},
//       {"at_ms": 900,  "kind": "iface_flap", "iface": 1,
//        "period_ms": 100, "duty": 0.5, "duration_ms": 600},
//       {"at_ms": 2000, "kind": "iface_up",   "iface": 1},
//       {"at_ms": 300,  "kind": "iface_scale", "iface": 0, "scale": 0.25,
//        "duration_ms": 400},
//       {"at_ms": 400,  "kind": "worker_stall", "worker": 0,
//        "duration_ms": 250},
//       {"at_ms": 100,  "kind": "ingress_drop", "probability": 0.01,
//        "duration_ms": 1000},
//       {"at_ms": 100,  "kind": "ingress_dup", "probability": 0.01,
//        "duration_ms": 1000},
//       {"at_ms": 100,  "kind": "ingress_delay", "probability": 0.02,
//        "delay_ms": 5, "duration_ms": 1000},
//       {"at_ms": 600,  "kind": "pool_exhaust", "duration_ms": 200}
//     ]
//   }
//
// Times are milliseconds since Runtime::start().  Unknown keys, unknown
// kinds, and missing required fields are hard parse errors -- a typo'd
// chaos plan must fail loudly, not silently do nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "flow/ids.hpp"
#include "util/time.hpp"

namespace midrr::fault {

enum class FaultKind : std::uint8_t {
  kIfaceDown,     ///< interface dead from `at` until a matching iface_up
  kIfaceUp,       ///< revive an interface (cancels down/flap/scale)
  kIfaceFlap,     ///< square-wave up/down with `duty` fraction up
  kIfaceScale,    ///< capacity multiplied by `scale` for `duration`
  kWorkerStall,   ///< worker parks at its safe point for `duration`
  kIngressDrop,   ///< each offer dropped with `probability` (counted)
  kIngressDup,    ///< each offer duplicated with `probability`
  kIngressDelay,  ///< each offer delayed by `delay` with `probability`
  kPoolExhaust,   ///< packet-pool acquires fail for `duration`
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kIfaceDown;
  SimTime at_ns = 0;
  SimDuration duration_ns = 0;  ///< 0 = until cancelled (iface_down) / no-op
  IfaceId iface = kInvalidIface;       ///< iface_* kinds
  std::uint32_t worker = 0;            ///< worker_stall
  double probability = 0.0;            ///< ingress_* kinds
  SimDuration delay_ns = 0;            ///< ingress_delay
  double scale = 1.0;                  ///< iface_scale
  SimDuration period_ns = 0;           ///< iface_flap
  double duty = 0.5;                   ///< iface_flap: fraction of period up
};

/// A timestamped annotation captured by the FaultPlanRecorder (shed
/// episodes, watermark moves, capacity-drift readings).  The injector
/// ignores notes on replay; they exist so a recorded incident plan is
/// self-describing when read by a human or a triage script.
struct ObservedNote {
  SimTime at_ns = 0;
  std::string note;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;  ///< sorted by at_ns after parsing
  std::vector<ObservedNote> observed;  ///< annotations; not replayed

  bool empty() const { return events.empty(); }

  /// Last instant any event in the plan can still be active (kSimTimeMax
  /// when an open-ended iface_down is never revived).
  SimTime horizon_ns() const;

  /// Parses and validates a JSON plan document.  Throws std::runtime_error
  /// (or JsonError) with a message naming the offending event/field.
  static FaultPlan parse_json(std::string_view text);

  /// Reads and parses `path`; throws on I/O or parse failure.
  static FaultPlan parse_file(const std::string& path);

  /// Canonical serialization: events stably sorted by at_ns, fixed key
  /// order per kind, shortest round-trip number formatting (integral
  /// millisecond values print without a decimal point).  The invariant the
  /// recorder and the round-trip test lean on: for any plan P,
  /// parse_json(P.to_json()).to_json() == P.to_json() byte-for-byte.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws on I/O failure.
  void write_file(const std::string& path) const;
};

}  // namespace midrr::fault
