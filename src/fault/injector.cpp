#include "fault/injector.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>

#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"

namespace midrr::fault {

namespace {

/// A flap or scale overlay, already truncated at any cancelling iface_up.
struct Overlay {
  SimTime begin = 0;
  SimTime end = 0;
  bool is_flap = false;
  double scale = 1.0;       ///< iface_scale only
  SimDuration period = 0;   ///< iface_flap only
  SimDuration up_span = 0;  ///< iface_flap: duty * period
};

double base_at(const std::vector<std::pair<SimTime, double>>& base,
               SimTime t) {
  double v = 1.0;
  for (const auto& [at, s] : base) {
    if (at > t) break;
    v = s;
  }
  return v;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::attach(std::size_t iface_count, std::size_t worker_count) {
  if (attached_) throw std::runtime_error("fault injector attached twice");
  attached_ = true;
  iface_points_.assign(iface_count, {});
  worker_stalls_.clear();
  worker_stalls_.resize(worker_count);

  for (const FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case FaultKind::kIfaceDown:
      case FaultKind::kIfaceUp:
      case FaultKind::kIfaceFlap:
      case FaultKind::kIfaceScale:
        if (e.iface >= iface_count) {
          throw std::runtime_error(
              "fault plan targets interface " + std::to_string(e.iface) +
              " but the runtime has " + std::to_string(iface_count));
        }
        break;
      case FaultKind::kWorkerStall:
        if (e.worker >= worker_count) {
          throw std::runtime_error(
              "fault plan targets worker " + std::to_string(e.worker) +
              " but the runtime has " + std::to_string(worker_count));
        }
        worker_stalls_[e.worker].windows.push_back(
            Window{e.at_ns, e.at_ns + e.duration_ns, 0.0, 0});
        break;
      case FaultKind::kIngressDrop:
        drop_windows_.push_back(
            Window{e.at_ns, e.at_ns + e.duration_ns, e.probability, 0});
        break;
      case FaultKind::kIngressDup:
        dup_windows_.push_back(
            Window{e.at_ns, e.at_ns + e.duration_ns, e.probability, 0});
        break;
      case FaultKind::kIngressDelay:
        delay_windows_.push_back(Window{e.at_ns, e.at_ns + e.duration_ns,
                                        e.probability, e.delay_ns});
        break;
      case FaultKind::kPoolExhaust:
        pool_windows_.push_back(
            Window{e.at_ns, e.at_ns + e.duration_ns, 0.0, 0});
        break;
    }
  }
  has_ingress_ = !drop_windows_.empty() || !dup_windows_.empty() ||
                 !delay_windows_.empty();

  // Merge overlapping stall windows so one park covers them all.
  for (WorkerStalls& ws : worker_stalls_) {
    std::sort(ws.windows.begin(), ws.windows.end(),
              [](const Window& a, const Window& b) { return a.begin < b.begin; });
    std::vector<Window> merged;
    for (const Window& w : ws.windows) {
      if (!merged.empty() && w.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, w.end);
      } else {
        merged.push_back(w);
      }
    }
    ws.windows = std::move(merged);
  }

  // Compile each interface's capacity multiplier into a piecewise-constant
  // (time, scale) timeline.  Base state comes from down/up events; flap and
  // scale act as time-bounded overlays on top of the base, the
  // latest-starting overlay winning where they overlap, and any iface_up
  // cancelling overlays that began at or before it.
  for (IfaceId i = 0; i < iface_count; ++i) {
    std::vector<std::pair<SimTime, double>> base{{0, 1.0}};
    std::vector<Overlay> overlays;
    std::vector<SimTime> revives;
    for (const FaultEvent& e : plan_.events) {
      if (e.iface != i) continue;
      switch (e.kind) {
        case FaultKind::kIfaceDown: base.emplace_back(e.at_ns, 0.0); break;
        case FaultKind::kIfaceUp:
          base.emplace_back(e.at_ns, 1.0);
          revives.push_back(e.at_ns);
          break;
        case FaultKind::kIfaceFlap: {
          Overlay o;
          o.begin = e.at_ns;
          o.end = e.at_ns + e.duration_ns;
          o.is_flap = true;
          o.period = e.period_ns;
          o.up_span = static_cast<SimDuration>(
              e.duty * static_cast<double>(e.period_ns));
          overlays.push_back(o);
          break;
        }
        case FaultKind::kIfaceScale: {
          Overlay o;
          o.begin = e.at_ns;
          o.end = e.at_ns + e.duration_ns;
          o.scale = e.scale;
          overlays.push_back(o);
          break;
        }
        default: break;
      }
    }
    for (Overlay& o : overlays) {
      for (const SimTime up : revives) {
        if (up >= o.begin) o.end = std::min(o.end, up);
      }
    }

    std::set<SimTime> boundaries;
    for (const auto& [at, s] : base) boundaries.insert(at);
    for (const Overlay& o : overlays) {
      boundaries.insert(o.begin);
      boundaries.insert(o.end);
      if (o.is_flap && o.period > 0) {
        for (SimTime t = o.begin; t < o.end; t += o.period) {
          boundaries.insert(t);
          if (t + o.up_span < o.end) boundaries.insert(t + o.up_span);
        }
      }
    }

    std::vector<std::pair<SimTime, double>>& points = iface_points_[i];
    for (const SimTime t : boundaries) {
      const double base_v = base_at(base, t);
      const Overlay* active = nullptr;
      for (const Overlay& o : overlays) {
        if (o.begin <= t && t < o.end &&
            (active == nullptr || o.begin >= active->begin)) {
          active = &o;
        }
      }
      double v = base_v;
      if (active != nullptr) {
        if (active->is_flap) {
          const SimTime phase = (t - active->begin) % active->period;
          v = phase < active->up_span ? base_v : 0.0;
        } else {
          v = base_v * active->scale;
        }
      }
      if (points.empty() || points.back().second != v) {
        points.emplace_back(t, v);
      }
    }
    if (points.empty() || points.front().first != 0) {
      points.insert(points.begin(), {0, 1.0});
    }
  }
}

double FaultInjector::iface_scale(IfaceId iface, SimTime now,
                                  std::size_t& cursor) const {
  const auto& pts = iface_points_[iface];
  if (cursor >= pts.size()) cursor = pts.size() - 1;
  while (cursor + 1 < pts.size() && pts[cursor + 1].first <= now) ++cursor;
  return pts[cursor].second;
}

double FaultInjector::iface_scale_at(IfaceId iface, SimTime now) const {
  const auto& pts = iface_points_[iface];
  auto it = std::upper_bound(
      pts.begin(), pts.end(), now,
      [](SimTime t, const std::pair<SimTime, double>& p) { return t < p.first; });
  if (it == pts.begin()) return 1.0;
  return std::prev(it)->second;
}

void FaultInjector::note_iface_transition(IfaceId iface, SimTime now,
                                          double scale) {
  iface_transitions_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream what;
  what << "iface " << iface << " scale -> " << scale;
  append_log(now, what.str());
}

FaultInjector::StallOutcome FaultInjector::maybe_stall(
    std::uint32_t worker, SimTime now,
    const std::atomic<std::uint64_t>& generation,
    std::uint64_t my_generation) {
  WorkerStalls& ws = worker_stalls_[worker];
  // Cursor is owned by the worker slot's current thread: advance past
  // expired windows without locking.
  while (ws.cursor < ws.windows.size() && ws.windows[ws.cursor].end <= now) {
    ++ws.cursor;
  }
  if (ws.cursor >= ws.windows.size()) return StallOutcome::kNotStalled;
  const Window& w = ws.windows[ws.cursor];
  if (now < w.begin) return StallOutcome::kNotStalled;

  stalls_entered_.fetch_add(1, std::memory_order_relaxed);
  append_log(now, "worker " + std::to_string(worker) + " stalled for " +
                      std::to_string((w.end - now) / 1000000) + " ms");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(w.end - now);
  std::unique_lock<std::mutex> lk(stall_mu_);
  ws.in_stall = true;
  while (!released_ && !ws.preempt &&
         std::chrono::steady_clock::now() < deadline) {
    stall_cv_.wait_until(lk, deadline);
  }
  ws.in_stall = false;
  ws.preempt = false;
  // Read under stall_mu_: begin_restart() bumps the generation while
  // holding it, so a restarted slot is observed before we touch anything.
  const bool superseded =
      generation.load(std::memory_order_relaxed) != my_generation;
  return superseded ? StallOutcome::kSuperseded : StallOutcome::kResumed;
}

bool FaultInjector::worker_in_stall(std::uint32_t worker) const {
  std::lock_guard<std::mutex> lk(stall_mu_);
  return worker_stalls_[worker].in_stall;
}

bool FaultInjector::begin_restart(std::uint32_t worker,
                                  std::atomic<std::uint64_t>& generation) {
  std::lock_guard<std::mutex> lk(stall_mu_);
  WorkerStalls& ws = worker_stalls_[worker];
  if (!ws.in_stall) return false;
  generation.fetch_add(1, std::memory_order_relaxed);
  ws.preempt = true;
  // Skip past the window being restarted out of: the replacement thread
  // must not immediately re-enter the very stall its predecessor was
  // killed for.  Safe to touch here: the parked thread never reads the
  // cursor again after entering the wait.
  ++ws.cursor;
  stall_cv_.notify_all();
  return true;
}

void FaultInjector::release_all() {
  std::lock_guard<std::mutex> lk(stall_mu_);
  released_ = true;
  stall_cv_.notify_all();
}

const FaultInjector::Window* FaultInjector::find_window(
    const std::vector<Window>& windows, SimTime now) {
  const Window* hit = nullptr;
  for (const Window& w : windows) {
    if (w.begin <= now && now < w.end) hit = &w;  // latest-starting wins
  }
  return hit;
}

IngressAction FaultInjector::sample_ingress(SimTime now, Rng& rng,
                                            SimDuration& delay_ns) {
  if (const Window* w = find_window(drop_windows_, now);
      w != nullptr && rng.coin(w->probability)) {
    ingress_drops_.fetch_add(1, std::memory_order_relaxed);
    return IngressAction::kDrop;
  }
  if (const Window* w = find_window(dup_windows_, now);
      w != nullptr && rng.coin(w->probability)) {
    ingress_dups_.fetch_add(1, std::memory_order_relaxed);
    return IngressAction::kDup;
  }
  if (const Window* w = find_window(delay_windows_, now);
      w != nullptr && rng.coin(w->probability)) {
    ingress_delays_.fetch_add(1, std::memory_order_relaxed);
    delay_ns = w->delay_ns;
    return IngressAction::kDelay;
  }
  return IngressAction::kNone;
}

bool FaultInjector::pool_exhausted(SimTime now) const {
  return find_window(pool_windows_, now) != nullptr;
}

void FaultInjector::register_metrics(telemetry::MetricsRegistry& registry) {
  registry.counter_fn(
      "midrr_fault_ingress_total", "Ingress offers faulted by the injector",
      {{"action", "drop"}},
      [this] { return static_cast<double>(ingress_drops()); });
  registry.counter_fn(
      "midrr_fault_ingress_total", "Ingress offers faulted by the injector",
      {{"action", "dup"}},
      [this] { return static_cast<double>(ingress_dups()); });
  registry.counter_fn(
      "midrr_fault_ingress_total", "Ingress offers faulted by the injector",
      {{"action", "delay"}},
      [this] { return static_cast<double>(ingress_delays()); });
  registry.counter_fn(
      "midrr_fault_pool_rejects_total",
      "Pool acquires failed by injected exhaustion", {},
      [this] { return static_cast<double>(pool_rejects()); });
  registry.counter_fn(
      "midrr_fault_worker_stalls_total", "Worker stalls injected", {},
      [this] { return static_cast<double>(stalls_entered()); });
  registry.counter_fn(
      "midrr_fault_iface_transitions_total",
      "Interface capacity transitions applied by workers", {},
      [this] { return static_cast<double>(iface_transitions()); });
}

void FaultInjector::append_log(SimTime at, std::string what) {
  std::lock_guard<std::mutex> lk(log_mu_);
  log_.push_back(FaultLogEntry{at, std::move(what)});
}

std::vector<FaultLogEntry> FaultInjector::log() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return log_;
}

void FaultInjector::export_trace(telemetry::ChromeTraceBuilder& builder,
                                 std::uint32_t pid) const {
  builder.set_process_name(pid, "fault injector");
  for (const FaultLogEntry& entry : log()) {
    builder.add_instant(pid, 0, entry.what, entry.at_ns);
  }
}

const std::vector<std::pair<SimTime, double>>& FaultInjector::iface_timeline(
    IfaceId iface) const {
  return iface_points_[iface];
}

}  // namespace midrr::fault
