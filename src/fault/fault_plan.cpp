#include "fault/fault_plan.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fault/json.hpp"

namespace midrr::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIfaceDown: return "iface_down";
    case FaultKind::kIfaceUp: return "iface_up";
    case FaultKind::kIfaceFlap: return "iface_flap";
    case FaultKind::kIfaceScale: return "iface_scale";
    case FaultKind::kWorkerStall: return "worker_stall";
    case FaultKind::kIngressDrop: return "ingress_drop";
    case FaultKind::kIngressDup: return "ingress_dup";
    case FaultKind::kIngressDelay: return "ingress_delay";
    case FaultKind::kPoolExhaust: return "pool_exhaust";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(std::size_t index, const std::string& what) {
  throw std::runtime_error("fault plan: event " + std::to_string(index) +
                           ": " + what);
}

FaultKind parse_kind(std::size_t index, const std::string& name) {
  for (const FaultKind k :
       {FaultKind::kIfaceDown, FaultKind::kIfaceUp, FaultKind::kIfaceFlap,
        FaultKind::kIfaceScale, FaultKind::kWorkerStall,
        FaultKind::kIngressDrop, FaultKind::kIngressDup,
        FaultKind::kIngressDelay, FaultKind::kPoolExhaust}) {
    if (name == to_string(k)) return k;
  }
  fail(index, "unknown kind \"" + name + "\"");
}

/// Required fields per kind, beyond the universal at_ms/kind; everything
/// else present must come from the optional set.
struct FieldSpec {
  std::set<std::string> required;
  std::set<std::string> optional;
};

FieldSpec fields_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIfaceDown: return {{"iface"}, {}};
    case FaultKind::kIfaceUp: return {{"iface"}, {}};
    case FaultKind::kIfaceFlap:
      return {{"iface", "period_ms", "duration_ms"}, {"duty"}};
    case FaultKind::kIfaceScale:
      return {{"iface", "scale", "duration_ms"}, {}};
    case FaultKind::kWorkerStall: return {{"worker", "duration_ms"}, {}};
    case FaultKind::kIngressDrop:
    case FaultKind::kIngressDup:
      return {{"probability", "duration_ms"}, {}};
    case FaultKind::kIngressDelay:
      return {{"probability", "delay_ms", "duration_ms"}, {}};
    case FaultKind::kPoolExhaust: return {{"duration_ms"}, {}};
  }
  return {};
}

SimDuration ms_to_ns(double ms) {
  return static_cast<SimDuration>(ms * 1e6 + 0.5);
}

double number_field(const JsonValue& obj, std::size_t index,
                    const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(index, "missing field \"" + key + "\"");
  try {
    return v->as_number();
  } catch (const std::exception&) {
    fail(index, "field \"" + key + "\" must be a number");
  }
}

/// Shortest representation that strtod round-trips to the same double.
std::string number_str(double v) {
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// Nanoseconds as milliseconds: integral values without a decimal point so
/// hand-written plans ("at_ms": 100) survive a round trip byte-identical.
/// Fractional values print shortest-round-trip; ms_to_ns recovers the
/// exact nanosecond count because the absolute error of ns/1e6*1e6 is far
/// below the +0.5 rounding slack for any ns < 2^51.
std::string ms_str(SimDuration ns) {
  if (ns % 1'000'000 == 0) return std::to_string(ns / 1'000'000);
  return number_str(static_cast<double>(ns) / 1e6);
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

SimTime FaultPlan::horizon_ns() const {
  SimTime horizon = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kIfaceDown) {
      // Open-ended unless a later iface_up revives this interface.
      const bool revived = std::any_of(
          events.begin(), events.end(), [&](const FaultEvent& later) {
            return later.kind == FaultKind::kIfaceUp &&
                   later.iface == e.iface && later.at_ns >= e.at_ns;
          });
      if (!revived) return kSimTimeMax;
    }
    horizon = std::max(horizon, e.at_ns + e.duration_ns);
  }
  return horizon;
}

FaultPlan FaultPlan::parse_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("fault plan: top level must be an object");
  }
  for (const std::string& key : doc.keys()) {
    if (key != "seed" && key != "events" && key != "observed") {
      throw std::runtime_error("fault plan: unknown top-level key \"" + key +
                               "\"");
    }
  }
  FaultPlan plan;
  if (const JsonValue* seed = doc.find("seed"); seed != nullptr) {
    const double s = seed->as_number();
    if (s < 0 || s != std::floor(s)) {
      throw std::runtime_error("fault plan: seed must be a whole number >= 0");
    }
    plan.seed = static_cast<std::uint64_t>(s);
  }
  const JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("fault plan: missing \"events\" array");
  }
  std::size_t index = 0;
  for (const JsonValue& entry : events->as_array()) {
    if (!entry.is_object()) fail(index, "must be an object");
    const JsonValue* kind_v = entry.find("kind");
    if (kind_v == nullptr) fail(index, "missing field \"kind\"");
    FaultEvent e;
    e.kind = parse_kind(index, kind_v->as_string());
    const FieldSpec spec = fields_for(e.kind);
    for (const std::string& key : entry.keys()) {
      if (key == "kind" || key == "at_ms") continue;
      if (spec.required.count(key) == 0 && spec.optional.count(key) == 0) {
        fail(index, std::string("unknown field \"") + key + "\" for kind " +
                        to_string(e.kind));
      }
    }
    const double at_ms = number_field(entry, index, "at_ms");
    if (at_ms < 0) fail(index, "at_ms must be >= 0");
    e.at_ns = ms_to_ns(at_ms);
    for (const std::string& key : spec.required) {
      if (entry.find(key) == nullptr) {
        fail(index, std::string("kind ") + to_string(e.kind) +
                        " requires field \"" + key + "\"");
      }
    }
    if (entry.find("iface") != nullptr) {
      const double v = number_field(entry, index, "iface");
      if (v < 0 || v != std::floor(v)) fail(index, "iface must be an index");
      e.iface = static_cast<IfaceId>(v);
    }
    if (entry.find("worker") != nullptr) {
      const double v = number_field(entry, index, "worker");
      if (v < 0 || v != std::floor(v)) fail(index, "worker must be an index");
      e.worker = static_cast<std::uint32_t>(v);
    }
    if (entry.find("duration_ms") != nullptr) {
      const double v = number_field(entry, index, "duration_ms");
      if (v <= 0) fail(index, "duration_ms must be > 0");
      e.duration_ns = ms_to_ns(v);
    }
    if (entry.find("period_ms") != nullptr) {
      const double v = number_field(entry, index, "period_ms");
      if (v <= 0) fail(index, "period_ms must be > 0");
      e.period_ns = ms_to_ns(v);
    }
    if (entry.find("delay_ms") != nullptr) {
      const double v = number_field(entry, index, "delay_ms");
      if (v <= 0) fail(index, "delay_ms must be > 0");
      e.delay_ns = ms_to_ns(v);
    }
    if (entry.find("probability") != nullptr) {
      e.probability = number_field(entry, index, "probability");
      if (e.probability < 0.0 || e.probability > 1.0) {
        fail(index, "probability must be in [0, 1]");
      }
    }
    if (entry.find("scale") != nullptr) {
      e.scale = number_field(entry, index, "scale");
      if (e.scale < 0.0 || e.scale > 1.0) {
        fail(index, "scale must be in [0, 1] (use iface_up to restore)");
      }
    }
    if (entry.find("duty") != nullptr) {
      e.duty = number_field(entry, index, "duty");
      if (e.duty <= 0.0 || e.duty >= 1.0) {
        fail(index, "duty must be in (0, 1)");
      }
    }
    plan.events.push_back(e);
    ++index;
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_ns < b.at_ns; });
  if (const JsonValue* observed = doc.find("observed"); observed != nullptr) {
    if (!observed->is_array()) {
      throw std::runtime_error("fault plan: \"observed\" must be an array");
    }
    std::size_t note_index = 0;
    for (const JsonValue& entry : observed->as_array()) {
      const auto note_fail = [&](const std::string& what) -> void {
        throw std::runtime_error("fault plan: observed " +
                                 std::to_string(note_index) + ": " + what);
      };
      if (!entry.is_object()) note_fail("must be an object");
      for (const std::string& key : entry.keys()) {
        if (key != "at_ms" && key != "note") {
          note_fail("unknown field \"" + key + "\"");
        }
      }
      const JsonValue* at = entry.find("at_ms");
      const JsonValue* note = entry.find("note");
      if (at == nullptr) note_fail("missing field \"at_ms\"");
      if (note == nullptr) note_fail("missing field \"note\"");
      const double at_ms = at->as_number();
      if (at_ms < 0) note_fail("at_ms must be >= 0");
      plan.observed.push_back(ObservedNote{ms_to_ns(at_ms), note->as_string()});
      ++note_index;
    }
    std::stable_sort(plan.observed.begin(), plan.observed.end(),
                     [](const ObservedNote& a, const ObservedNote& b) {
                       return a.at_ns < b.at_ns;
                     });
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_ns < b.at_ns; });
  std::vector<ObservedNote> notes = observed;
  std::stable_sort(notes.begin(), notes.end(),
                   [](const ObservedNote& a, const ObservedNote& b) {
                     return a.at_ns < b.at_ns;
                   });
  std::ostringstream out;
  out << "{\n  \"seed\": " << seed << ",\n  \"events\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const FaultEvent& e = sorted[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"at_ms\": " << ms_str(e.at_ns)
        << ", \"kind\": \"" << to_string(e.kind) << '"';
    switch (e.kind) {
      case FaultKind::kIfaceDown:
      case FaultKind::kIfaceUp:
        out << ", \"iface\": " << e.iface;
        break;
      case FaultKind::kIfaceFlap:
        out << ", \"iface\": " << e.iface
            << ", \"period_ms\": " << ms_str(e.period_ns)
            << ", \"duty\": " << number_str(e.duty)
            << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
      case FaultKind::kIfaceScale:
        out << ", \"iface\": " << e.iface
            << ", \"scale\": " << number_str(e.scale)
            << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
      case FaultKind::kWorkerStall:
        out << ", \"worker\": " << e.worker
            << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
      case FaultKind::kIngressDrop:
      case FaultKind::kIngressDup:
        out << ", \"probability\": " << number_str(e.probability)
            << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
      case FaultKind::kIngressDelay:
        out << ", \"probability\": " << number_str(e.probability)
            << ", \"delay_ms\": " << ms_str(e.delay_ns)
            << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
      case FaultKind::kPoolExhaust:
        out << ", \"duration_ms\": " << ms_str(e.duration_ns);
        break;
    }
    out << '}';
  }
  out << (sorted.empty() ? "]" : "\n  ]");
  if (!notes.empty()) {
    out << ",\n  \"observed\": [";
    for (std::size_t i = 0; i < notes.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    {\"at_ms\": "
          << ms_str(notes[i].at_ns) << ", \"note\": \""
          << json_escaped(notes[i].note) << "\"}";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
  return out.str();
}

void FaultPlan::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("fault plan: cannot write " + path);
  }
  out << to_json();
  if (!out.flush()) {
    throw std::runtime_error("fault plan: write failed for " + path);
  }
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("fault plan: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace midrr::fault
