// FaultPlanRecorder: closes the record/replay loop.
//
// PR 5 made scripted chaos replayable; this records the OBSERVED side so
// an unscripted incident becomes a script.  The supervisor mirrors its
// terminal link verdicts (dead -> iface_down, dead->healthy -> iface_up)
// and observed worker stalls (worker_stall spanning the freeze window);
// the adaptive controller mirrors capacity-droop episodes (iface_scale
// with the episode's lowest measured drift ratio) and annotates shed
// engage/disengage edges as replay-inert "observed" notes.  plan() yields
// a FaultPlan whose canonical to_json() feeds straight back into the
// FaultInjector, so the regression test for a production incident is the
// incident itself.
//
// Timestamps arrive in runtime nanoseconds-since-start, exactly the
// clock FaultPlan events use.  All methods are mutex-guarded appends --
// callers are the supervisor probe thread today, but nothing here cares.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "fault/fault_plan.hpp"
#include "flow/ids.hpp"
#include "util/time.hpp"

namespace midrr::fault {

class FaultPlanRecorder {
 public:
  /// `seed` becomes the recorded plan's seed (replays of a recorded plan
  /// should inject ingress noise, if any is added by hand, deterministically
  /// against the same seed the incident run used).
  explicit FaultPlanRecorder(std::uint64_t seed = 1);

  void record_link_dead(IfaceId iface, SimTime at);
  void record_link_revived(IfaceId iface, SimTime at);
  /// One observed capacity-droop episode, closed: capacity was `scale` x
  /// configured from `begin` to `end`.  Spans shorter than 1 ms are
  /// widened to 1 ms (the plan schema requires a positive duration).
  void record_iface_scale(IfaceId iface, SimTime begin, SimTime end,
                          double scale);
  void record_worker_stall(std::uint32_t worker, SimTime begin,
                           SimDuration duration);
  /// Replay-inert annotation (shed episodes, watermark moves).
  void note(SimTime at, std::string what);

  std::size_t event_count() const;
  std::size_t note_count() const;

  /// Snapshot of everything recorded so far as a plan (to_json() orders
  /// it canonically).
  FaultPlan plan() const;

  /// plan().write_file(path); returns false (with no throw) on I/O error
  /// so a bad --record-faults path degrades to a warning, not a crash.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
  std::vector<ObservedNote> notes_;
};

}  // namespace midrr::fault
