#include "fault/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "fairness/clusters.hpp"
#include "fairness/maxmin.hpp"
#include "fault/adapt.hpp"
#include "fault/recorder.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"

namespace midrr::fault {

const char* to_string(LinkState state) {
  switch (state) {
    case LinkState::kHealthy: return "healthy";
    case LinkState::kSuspect: return "suspect";
    case LinkState::kDead: return "dead";
  }
  return "?";
}

Supervisor::Supervisor(SupervisedRuntime& rt, SupervisorOptions options,
                       telemetry::FairnessSource* fairness)
    : rt_(rt),
      options_(options),
      fairness_(fairness),
      links_(rt.iface_count()),
      workers_(rt.worker_count()),
      state_mirror_(rt.iface_count()) {
  MIDRR_REQUIRE(options_.probe_interval_ns > 0,
                "probe interval must be positive");
  MIDRR_REQUIRE(options_.dead_after_probes > 0 &&
                    options_.healthy_after_probes > 0,
                "hysteresis thresholds must be positive");
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  MIDRR_REQUIRE(!running_.load(std::memory_order_relaxed),
                "supervisor started twice");
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { supervise_main(); });
}

void Supervisor::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Supervisor::supervise_main() {
  std::unique_lock<std::mutex> lk(wake_mu_);
  while (!stopping_) {
    lk.unlock();
    probe();
    lk.lock();
    wake_cv_.wait_for(lk,
                      std::chrono::nanoseconds(options_.probe_interval_ns),
                      [this] { return stopping_; });
  }
}

void Supervisor::probe() {
  const SimTime now = rt_.now_ns();
  probe_links(now);
  probe_workers();
  last_probe_ns_ = now;
}

void Supervisor::probe_links(SimTime now) {
  bool topology_changed = false;
  const double window_s =
      last_probe_ns_ >= 0 ? static_cast<double>(now - last_probe_ns_) / 1e9
                          : 0.0;
  // Per-window measured drain rates and verdicts, handed to the adaptive
  // controller after the pass (it judges drift and re-derives shed_bytes).
  std::vector<double> window_bps(links_.size(), 0.0);
  std::vector<LinkState> verdicts(links_.size(), LinkState::kHealthy);
  for (IfaceId j = 0; j < links_.size(); ++j) {
    LinkHealth& h = links_[j];
    const std::uint64_t bytes = rt_.iface_sent_bytes(j);
    const double tokens = rt_.iface_tokens(j);
    const std::uint64_t send_errors = rt_.iface_send_errors(j);
    if (last_probe_ns_ < 0) {
      // First probe establishes baselines; no verdicts from a zero window.
      h.last_bytes = bytes;
      h.last_tokens = tokens;
      h.last_send_errors = send_errors;
      continue;
    }
    window_bps[j] =
        window_s > 0.0
            ? static_cast<double>(bytes - h.last_bytes) * 8.0 / window_s
            : 0.0;
    const bool progressed = bytes > h.last_bytes;
    // Egress send errors: a window with NEW hard transmit failures counts
    // against the link even when the pacer looks normal (the socket is
    // rejecting work the scheduler already granted).
    if (send_errors > h.last_send_errors) {
      ++h.error_probes;
    } else {
      h.error_probes = 0;
    }
    h.last_send_errors = send_errors;

    if (h.state == LinkState::kDead) {
      // Recovery.  Death required backlog against a silent link, which
      // drains the token bucket below one packet; so EITHER bytes moving
      // again OR the bucket refilling past ~one MTU means capacity is
      // back.  (The shard's backlog was re-steered away at the kill, so
      // "bytes moving" alone would never fire -- tokens are the signal.)
      const bool alive = progressed || tokens >= options_.revive_tokens;
      if (alive) {
        if (++h.good_probes >= options_.healthy_after_probes) {
          transition(j, h, LinkState::kHealthy, now);
          rt_.set_iface_down(j, false);
          topology_changed = true;
        }
      } else {
        h.good_probes = 0;
      }
      h.last_bytes = bytes;
      h.last_tokens = tokens;
      verdicts[j] = h.state;
      continue;
    }

    const double configured = rt_.iface_configured_bps(j, now);
    const std::uint64_t backlog = rt_.iface_backlog_bytes(j);
    const double measured_bps = window_bps[j];
    // An unpaced link (configured == 0) has no "should be moving"
    // baseline and is never judged.  Silent = work waiting, nothing sent.
    const bool silent = configured > 0.0 && backlog > 0 && !progressed;
    const bool degraded = configured > 0.0 && backlog > 0 && progressed &&
                          measured_bps < options_.degraded_fraction * configured;
    // Sustained send errors degrade the link through the same suspect
    // machinery as a slow pacer: flagged, surfaced in /healthz, but not
    // killed -- the socket may still be moving most of the traffic.
    const bool erroring = options_.send_error_probes > 0 &&
                          h.error_probes >= options_.send_error_probes;
    if (silent) {
      if (h.state == LinkState::kHealthy) {
        transition(j, h, LinkState::kSuspect, now);
      }
      if (++h.bad_probes >= options_.dead_after_probes) {
        transition(j, h, LinkState::kDead, now);
        rt_.set_iface_down(j, true);
        topology_changed = true;
      }
    } else if (degraded || erroring) {
      // Degraded links are flagged but not killed: the pacer still moves
      // bytes, and killing a slow link strictly reduces capacity.
      h.bad_probes = 0;
      if (h.state == LinkState::kHealthy) {
        transition(j, h, LinkState::kSuspect, now);
      }
    } else {
      h.bad_probes = 0;
      if (h.state == LinkState::kSuspect) {
        transition(j, h, LinkState::kHealthy, now);
      }
    }
    h.last_bytes = bytes;
    h.last_tokens = tokens;
    verdicts[j] = h.state;
  }
  if (adapt_ != nullptr && last_probe_ns_ >= 0) {
    adapt_->on_probe(now, window_s, window_bps, verdicts);
  }
  if (topology_changed && options_.replay_clustering && fairness_ != nullptr) {
    replay_clustering(now);
  }
}

void Supervisor::probe_workers() {
  for (std::uint32_t w = 0; w < workers_.size(); ++w) {
    WorkerHealth& wh = workers_[w];
    const std::uint64_t beat = rt_.worker_heartbeat(w);
    if (beat != wh.last_heartbeat) {
      wh.last_heartbeat = beat;
      wh.frozen_probes = 0;
      continue;
    }
    if (++wh.frozen_probes < options_.worker_stall_probes) continue;
    wh.frozen_probes = 0;  // one attempt per freeze threshold, not per probe
    if (recorder_ != nullptr) {
      // The freeze threshold just fired: the stall began (at least)
      // worker_stall_probes windows ago.  Recorded regardless of whether
      // the restart below is taken -- the stall was observed either way.
      const SimDuration span = static_cast<SimDuration>(
          options_.worker_stall_probes) * options_.probe_interval_ns;
      const SimTime at = rt_.now_ns();
      recorder_->record_worker_stall(w, at > span ? at - span : 0, span);
    }
    if (!options_.restart_stalled_workers) continue;
    restarts_attempted_.fetch_add(1, std::memory_order_relaxed);
    const SimTime now = rt_.now_ns();
    if (rt_.restart_worker(w)) {
      restarts_succeeded_.fetch_add(1, std::memory_order_relaxed);
      append_log(now, "worker " + std::to_string(w) + " restarted");
    } else {
      // Not at the safe point: restarting a thread wedged in arbitrary
      // code would corrupt shard state, so the runtime refused.
      restarts_refused_.fetch_add(1, std::memory_order_relaxed);
      append_log(now, "worker " + std::to_string(w) +
                          " restart refused (not at safe point)");
    }
  }
}

void Supervisor::transition(IfaceId iface, LinkHealth& health, LinkState to,
                            SimTime now) {
  const LinkState from = health.state;
  health.state = to;
  health.bad_probes = 0;
  health.good_probes = 0;
  state_mirror_[iface].store(static_cast<std::uint8_t>(to),
                             std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  if (flight_ != nullptr) {
    telemetry::FlightCode code = telemetry::FlightCode::kLinkHealthy;
    if (to == LinkState::kSuspect) code = telemetry::FlightCode::kLinkSuspect;
    if (to == LinkState::kDead) code = telemetry::FlightCode::kLinkDead;
    flight_->log(static_cast<std::uint64_t>(now),
                 telemetry::FlightCategory::kSupervisor, code, iface,
                 static_cast<std::uint64_t>(from));
  }
  std::ostringstream what;
  what << "link " << rt_.iface_name(iface) << " " << to_string(from) << " -> "
       << to_string(to);
  append_log(now, what.str());
  // Terminal verdicts feed the determinism signature and the recorder;
  // suspect flicker deliberately does not (it is probe-timing sensitive).
  if (to == LinkState::kDead) {
    {
      std::lock_guard<std::mutex> lk(verdict_mu_);
      verdicts_.push_back(rt_.iface_name(iface) + ":dead");
    }
    if (recorder_ != nullptr) recorder_->record_link_dead(iface, now);
  } else if (from == LinkState::kDead && to == LinkState::kHealthy) {
    {
      std::lock_guard<std::mutex> lk(verdict_mu_);
      verdicts_.push_back(rt_.iface_name(iface) + ":revived");
    }
    if (recorder_ != nullptr) recorder_->record_link_revived(iface, now);
  }
}

std::vector<std::string> Supervisor::verdict_sequence() const {
  std::lock_guard<std::mutex> lk(verdict_mu_);
  return verdicts_;
}

void Supervisor::replay_clustering(SimTime now) {
  // Re-solve the paper's reference program on the SURVIVING interface set
  // and check the Theorem 2 clustering conditions on its allocation: the
  // degraded topology must itself be a consistent miDRR instance.
  const telemetry::FairnessSample sample = fairness_->fairness_sample();
  const std::size_t m = sample.capacities_bps.size();
  fair::MaxMinInput input;
  input.capacities_bps.resize(m);
  for (IfaceId j = 0; j < m; ++j) {
    if (j < links_.size() && links_[j].state == LinkState::kDead) {
      input.capacities_bps[j] = 0.0;
    } else if (sample.capacities_bps[j] < 0.0) {
      // Unpaced: substitute the lifetime-average drain rate, the same
      // convention the fairness-drift sampler uses for "the fair split of
      // what the hardware actually moved".
      input.capacities_bps[j] =
          now > 0 ? static_cast<double>(sample.iface_sent_bytes[j]) * 8.0 /
                        (static_cast<double>(now) / 1e9)
                  : 0.0;
    } else {
      input.capacities_bps[j] = sample.capacities_bps[j];
    }
  }
  for (const telemetry::FairnessFlowSample& flow : sample.flows) {
    std::vector<bool> willing(m, false);
    bool any_live = false;
    for (IfaceId j = 0; j < m && j < flow.willing.size(); ++j) {
      const bool dead =
          j < links_.size() && links_[j].state == LinkState::kDead;
      willing[j] = flow.willing[j] && !dead;
      any_live = any_live || willing[j];
    }
    // Quarantined flows (no surviving willing interface) leave the
    // program; their rate is zero by construction, not a violation.
    if (!any_live) continue;
    input.weights.push_back(flow.weight);
    input.willing.push_back(std::move(willing));
  }
  if (input.weights.empty()) return;

  clustering_checks_.fetch_add(1, std::memory_order_relaxed);
  const fair::MaxMinResult result = fair::solve_max_min(input);
  const std::optional<std::string> violation =
      fair::check_max_min_conditions(input, result.alloc_bps);
  {
    std::lock_guard<std::mutex> lk(verdict_mu_);
    clustering_verdict_ = violation.value_or("");
  }
  if (violation.has_value()) {
    clustering_violations_.fetch_add(1, std::memory_order_relaxed);
    append_log(now, "clustering violation on survivors: " + *violation);
  } else {
    std::ostringstream what;
    what << "clustering consistent on survivors (" << input.weights.size()
         << " flows, total " << result.total_rate_bps() / 1e6 << " Mbit/s)";
    append_log(now, what.str());
  }
}

bool Supervisor::any_degraded() const {
  for (const auto& s : state_mirror_) {
    if (s.load(std::memory_order_relaxed) !=
        static_cast<std::uint8_t>(LinkState::kHealthy)) {
      return true;
    }
  }
  return false;
}

std::string Supervisor::last_clustering_verdict() const {
  std::lock_guard<std::mutex> lk(verdict_mu_);
  return clustering_verdict_;
}

void Supervisor::register_metrics(telemetry::MetricsRegistry& registry) {
  for (IfaceId j = 0; j < state_mirror_.size(); ++j) {
    registry.gauge_fn(
        "midrr_supervisor_link_state",
        "Supervisor link verdict (0 healthy, 1 suspect, 2 dead)",
        {{"iface", rt_.iface_name(j)}}, [this, j] {
          return static_cast<double>(
              state_mirror_[j].load(std::memory_order_relaxed));
        });
  }
  registry.counter_fn(
      "midrr_supervisor_link_transitions_total",
      "Link state-machine transitions", {},
      [this] { return static_cast<double>(transitions()); });
  registry.counter_fn(
      "midrr_supervisor_worker_restarts_total", "Worker restart attempts",
      {{"outcome", "succeeded"}},
      [this] { return static_cast<double>(restarts_succeeded()); });
  registry.counter_fn(
      "midrr_supervisor_worker_restarts_total", "Worker restart attempts",
      {{"outcome", "refused"}},
      [this] { return static_cast<double>(restarts_refused()); });
  registry.counter_fn(
      "midrr_supervisor_clustering_checks_total",
      "Theorem-2 replays on the surviving interface set", {},
      [this] { return static_cast<double>(clustering_checks()); });
  registry.counter_fn(
      "midrr_supervisor_clustering_violations_total",
      "Theorem-2 replays that found a max-min inconsistency", {},
      [this] { return static_cast<double>(clustering_violations()); });
}

void Supervisor::append_log(SimTime at, std::string what) {
  std::lock_guard<std::mutex> lk(verdict_mu_);
  log_.push_back(FaultLogEntry{at, std::move(what)});
}

std::vector<FaultLogEntry> Supervisor::log() const {
  std::lock_guard<std::mutex> lk(verdict_mu_);
  return log_;
}

void Supervisor::export_trace(telemetry::ChromeTraceBuilder& builder,
                              std::uint32_t pid) const {
  builder.set_process_name(pid, "supervisor");
  for (const FaultLogEntry& entry : log()) {
    builder.add_instant(pid, 0, entry.what, entry.at_ns);
  }
}

}  // namespace midrr::fault
