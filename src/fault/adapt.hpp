// AdaptiveController: the closed loop that turns measurement into policy.
//
// PR 5's degradation story was open-loop: shedding armed at a FIXED byte
// watermark (`--shed-bytes`), and the fairness solver believed CONFIGURED
// interface capacities no matter what the links actually moved.  This
// controller closes both loops from the supervisor's probe cadence:
//
//   * Adaptive shedding.  The operator states an objective -- "hold traced
//     p99 residence at T" (`--shed-target-p99-ms`) -- and the controller
//     derives the watermark from Little's law: a shard whose slowest drain
//     path moves R bytes/s holds residence under T only if its backlog
//     stays under R*T.  The base watermark is therefore
//     min-over-shards(drain Bps) * T, multiplied by a slow multiplicative
//     correction driven by the StageTracer's WINDOWED p99 (bucket-count
//     deltas between probes, so old samples cannot mask a fresh overload):
//     correction *= exp(gain * clamp(ln(target/p99), -1, 1)), clamped to
//     [correction_min, correction_max], watermark clamped to
//     [shed_floor_bytes, shed_ceiling_bytes].  The target is re-tunable
//     live (telemetry `/adapt?target_p99_ms=`).
//
//   * Measured-capacity re-lowering.  Per link, an EWMA of the
//     supervisor-measured drain rate (only windows with backlog count --
//     an idle link's drain rate says nothing about its capacity) yields a
//     drift ratio measured/configured.  Hysteresis (droop_enter_probes
//     consecutive windows below droop_enter_ratio to enter, droop_exit_*
//     to leave) keeps a transient stall from collapsing fairness shares;
//     while "drooped", effective_capacity_bps() substitutes
//     configured * clamp(ratio, capacity_floor_fraction, 1) and the
//     runtime's fairness_sample() feeds that to the max-min solver, the
//     drift sampler, and the supervisor's Theorem-2 replay alike.
//
// Threading: on_probe() runs on the supervisor's probe thread (or a test
// driving probes directly) and owns all mutable state; cross-thread
// readers (fairness_sample, telemetry, /healthz, /adapt) see atomic
// mirrors only.  set_target_p99_ns() is safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/supervisor.hpp"
#include "util/time.hpp"

namespace midrr::telemetry {
class MetricsRegistry;
}

namespace midrr::fault {

class FaultPlanRecorder;

struct AdaptOptions {
  /// Objective for adaptive shedding; 0 leaves the watermark alone (the
  /// capacity-drift half of the loop still runs).
  SimDuration target_p99_ns = 0;
  /// Watermark clamps: the floor keeps a mis-measured slow shard from
  /// shedding everything; the ceiling bounds memory under a huge target.
  std::uint64_t shed_floor_bytes = 4 * 1024;
  std::uint64_t shed_ceiling_bytes = 64ull * 1024 * 1024;
  /// Multiplicative-correction loop gain (per probe window).
  double gain = 0.25;
  double correction_min = 0.125;
  double correction_max = 4.0;
  /// Windowed-p99 updates need at least this many new samples; thinner
  /// windows keep the previous correction (no decisions on noise).
  std::uint64_t min_window_samples = 8;
  /// Drain-rate EWMA weight for the newest probe window.
  double ewma_alpha = 0.3;
  /// Capacity-droop hysteresis: enter below `droop_enter_ratio` for
  /// `droop_enter_probes` consecutive backlogged windows, leave above
  /// `droop_exit_ratio` for `droop_exit_probes`.
  double droop_enter_ratio = 0.70;
  double droop_exit_ratio = 0.90;
  std::uint32_t droop_enter_probes = 3;
  std::uint32_t droop_exit_probes = 3;
  /// Re-lowered capacity never drops below this fraction of configured
  /// (shares degrade gracefully; they do not collapse to zero).
  double capacity_floor_fraction = 0.05;
};

class AdaptiveController {
 public:
  /// `rt` must outlive the controller.  Link slots are sized once from
  /// rt.iface_count().
  AdaptiveController(SupervisedRuntime& rt, AdaptOptions options);

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  /// Mirrors droop episodes and shed engage/disengage edges into a
  /// recorder.  Probe-thread use only; set before probing starts.
  void set_recorder(FaultPlanRecorder* recorder) { recorder_ = recorder; }

  /// One adaptation pass; called by the supervisor after each link probe
  /// with that window's measured per-link drain rates and link verdicts.
  /// `window_s <= 0` (first probe) only seeds baselines.
  void on_probe(SimTime now, double window_s,
                const std::vector<double>& measured_bps,
                const std::vector<LinkState>& states);

  /// Closes any open droop episodes into the recorder (call once at
  /// shutdown, after the supervisor stopped probing).
  void finalize(SimTime now);

  /// Live re-tune of the shedding objective (any thread); 0 disables.
  void set_target_p99_ns(SimDuration target);
  SimDuration target_p99_ns() const {
    return target_p99_ns_.load(std::memory_order_relaxed);
  }

  // --- Cross-thread mirrors ----------------------------------------------

  /// Capacity the fairness program should believe for `iface`:
  /// `configured_bps` while healthy, re-lowered while drooped.  Safe from
  /// any thread (fairness_sample on the control-plane path calls this).
  double effective_capacity_bps(IfaceId iface, double configured_bps) const;

  /// Latest measured/configured drain ratio EWMA (1.0 until judged).
  double drift_ratio(IfaceId iface) const;
  bool drooped(IfaceId iface) const;

  std::uint64_t current_shed_bytes() const {
    return shed_bytes_mirror_.load(std::memory_order_relaxed);
  }
  /// True while some shard's backlog sits at/above the watermark (the
  /// runtime's shedding arm condition).
  bool shed_active() const {
    return shed_active_.load(std::memory_order_relaxed) != 0;
  }
  double windowed_p99_ns() const {
    return windowed_p99_ns_.load(std::memory_order_relaxed);
  }
  double correction() const {
    return correction_mirror_.load(std::memory_order_relaxed);
  }
  std::uint64_t updates() const {
    return updates_.load(std::memory_order_relaxed);
  }
  std::uint64_t retunes() const {
    return retunes_.load(std::memory_order_relaxed);
  }
  std::uint64_t droop_enters() const {
    return droop_enters_.load(std::memory_order_relaxed);
  }
  std::uint64_t droop_exits() const {
    return droop_exits_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_engages() const {
    return shed_engages_.load(std::memory_order_relaxed);
  }

  /// Registers midrr_adapt_* and midrr_supervisor_capacity_drift_ratio;
  /// `registry` must outlive this.
  void register_metrics(telemetry::MetricsRegistry& registry);

 private:
  struct Link {
    // Probe-thread-owned.
    double ewma_bps = -1.0;  ///< < 0 = no backlogged window judged yet
    double min_ratio = 1.0;  ///< lowest ratio seen in the open droop
    std::uint32_t low_streak = 0;
    std::uint32_t high_streak = 0;
    bool drooped = false;
    SimTime droop_since = 0;
    // Cross-thread mirrors.
    std::atomic<double> ratio{1.0};
    std::atomic<std::uint8_t> drooped_mirror{0};
  };

  void update_drift(SimTime now, const std::vector<double>& measured_bps,
                    const std::vector<LinkState>& states);
  void update_shedding(SimTime now, const std::vector<LinkState>& states);
  void close_droop(IfaceId iface, Link& link, SimTime now);
  /// Windowed traced p99 in ns from bucket-count deltas since the last
  /// probe; < 0 when the window holds too few samples to judge.
  double windowed_p99(SimTime now);

  SupervisedRuntime& rt_;
  AdaptOptions options_;
  FaultPlanRecorder* recorder_ = nullptr;  ///< probe-thread only

  std::vector<Link> links_;
  std::vector<std::uint64_t> prev_e2e_;   ///< last cumulative bucket snapshot
  std::vector<std::uint64_t> cur_e2e_;    ///< reused scratch
  double correction_ = 1.0;               ///< probe-thread owned

  std::atomic<SimDuration> target_p99_ns_;
  std::atomic<std::uint64_t> shed_bytes_mirror_{0};
  std::atomic<std::uint8_t> shed_active_{0};
  std::atomic<double> windowed_p99_ns_{0.0};
  std::atomic<double> correction_mirror_{1.0};
  std::atomic<std::uint64_t> updates_{0};
  std::atomic<std::uint64_t> retunes_{0};
  std::atomic<std::uint64_t> droop_enters_{0};
  std::atomic<std::uint64_t> droop_exits_{0};
  std::atomic<std::uint64_t> shed_engages_{0};
};

}  // namespace midrr::fault
