#include "fault/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace midrr::fault {

namespace {

bool is_json_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_space();
    if (pos_ != text_.size()) {
      throw JsonError("trailing characters after JSON document", pos_);
    }
    return v;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() && is_json_space(text_[pos_])) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw JsonError(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_space();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
          return v;
        }
        throw JsonError("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = false;
          return v;
        }
        throw JsonError("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        throw JsonError("bad literal", pos_);
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_space();
      const std::string key = string();
      skip_space();
      expect(':');
      if (!v.object_.emplace(key, value()).second) {
        throw JsonError("duplicate key \"" + key + "\"", pos_);
      }
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        throw JsonError("unterminated string", pos_);
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        throw JsonError("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) throw JsonError("dangling escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Plans are ASCII in practice; decode BMP code points to UTF-8 and
          // reject surrogate pairs (nothing a fault plan needs).
          if (pos_ + 4 > text_.size()) throw JsonError("bad \\u escape", pos_);
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw JsonError("bad \\u escape", pos_ - 1);
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            throw JsonError("surrogate pairs unsupported", pos_);
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: throw JsonError("unknown escape", pos_ - 1);
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") throw JsonError("bad number", start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      throw JsonError("bad number \"" + token + "\"", start);
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error("JSON value is not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error("JSON value is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("JSON value is not an array");
  }
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("JSON value is not an object");
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::vector<std::string> JsonValue::keys() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("JSON value is not an object");
  }
  std::vector<std::string> out;
  out.reserve(object_.size());
  for (const auto& [k, v] : object_) out.push_back(k);
  return out;
}

}  // namespace midrr::fault
