// Minimal JSON reader for fault plans.
//
// The library deliberately has no third-party dependencies, and until now
// only WROTE JSON (Chrome traces, /flows).  Fault plans are the first
// input that arrives as JSON, so this is the smallest conforming reader
// that covers them: objects, arrays, strings (with escapes), numbers,
// booleans, null.  It parses into an immutable Value tree; there is no
// writer, no streaming, and no attempt to preserve key order or number
// formatting -- plan files are small and parsed once at startup.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace midrr::fault {

/// Thrown on malformed input; carries a byte offset for error messages.
struct JsonError : std::runtime_error {
  JsonError(const std::string& what, std::size_t at)
      : std::runtime_error(what + " (at byte " + std::to_string(at) + ")") {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; trailing non-whitespace is an error.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw JsonError-free std::runtime_error on kind
  /// mismatch (schema errors, reported with the offending key by callers).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object lookup; nullptr when the key is absent (callers decide whether
  /// that is an error or a default).
  const JsonValue* find(const std::string& key) const;

  /// Keys present in an object (schema validation: reject unknown keys so
  /// a typo'd "duraton_ms" fails loudly instead of silently defaulting).
  std::vector<std::string> keys() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace midrr::fault
