// Supervisor: graceful degradation and worker supervision as a policy
// layer over observable runtime state.
//
// The supervisor deliberately has no access to the FaultInjector's ground
// truth.  It watches the same things an operator's dashboards would --
// per-interface drained bytes, pacer token movement, shard backlog, worker
// heartbeats -- and drives the runtime through the narrow SupervisedRuntime
// interface:
//
//   * Link health: an interface whose profile says it should be moving
//     bytes, while its hosting shard holds backlog and nothing drains, is
//     suspect; `dead_after_probes` consecutive silent probes declare it
//     dead and trigger one RCU re-steer (ControlPlane::set_iface_down) that
//     moves every affected flow onto its surviving Pi-permitted
//     interfaces; flows with no surviving interface are quarantined, and
//     their offers are rejected-with-count upstream.  Recovery is the
//     mirror image with `healthy_after_probes` of hysteresis (a flapping
//     radio is ridden out at the detector, not replayed into the control
//     plane at flap frequency): a dead link whose token bucket starts
//     moving again -- death requires the bucket to have run dry against
//     backlog, so motion is a real signal -- is revived and its flows
//     re-steered back.
//   * Theorem-2 replay: after every verdict the supervisor re-solves the
//     weighted max-min program on the SURVIVING interface set and checks
//     the paper's clustering conditions on the reference allocation -- the
//     degraded system should still be a valid miDRR instance, just a
//     smaller one.  Violations are counted and kept as a verdict string.
//   * Worker supervision: a worker whose heartbeat freezes for
//     `worker_stall_probes` probes gets a restart attempt.  The restart is
//     only taken when the runtime can PROVE the thread is parked at the
//     fault injector's safe point (see FaultInjector::begin_restart); a
//     thread wedged in arbitrary code is refused and counted -- restarting
//     it blind would corrupt shard state.
//
// One background thread, probe-driven; all verdict state is plain fields
// owned by that thread, with atomics mirroring what other threads read.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/time.hpp"

namespace midrr::fault {

/// What the supervisor may observe and actuate.  Implemented by
/// rt::Runtime; a mock in tests drives the state machine without threads.
/// Everything here must be callable from the supervisor thread
/// concurrently with the data path.
class SupervisedRuntime {
 public:
  virtual ~SupervisedRuntime() = default;

  virtual std::size_t iface_count() const = 0;
  virtual std::size_t worker_count() const = 0;
  virtual SimTime now_ns() const = 0;

  // --- Observables --------------------------------------------------------

  virtual std::string iface_name(IfaceId iface) const = 0;
  virtual std::uint64_t iface_sent_bytes(IfaceId iface) const = 0;
  /// Configured capacity (bits/s) of the interface's rate profile at
  /// `now`; 0 for unpaced interfaces (which are never declared dead -- an
  /// unpaced link has no "should be moving" baseline).
  virtual double iface_configured_bps(IfaceId iface, SimTime now) const = 0;
  /// Token-bucket balance mirror (may be negative: pacer debt).
  virtual double iface_tokens(IfaceId iface) const = 0;
  /// Bytes queued in the shard hosting this interface.
  virtual std::uint64_t iface_backlog_bytes(IfaceId iface) const = 0;
  /// Monotone per-loop tick of the worker's drain loop.
  virtual std::uint64_t worker_heartbeat(std::uint32_t worker) const = 0;
  /// Cumulative hard transmit errors reported by the egress backend for
  /// this interface.  Defaulted to 0 so pacer-only runtimes (and mocks)
  /// need not implement it; real I/O backends feed it, and a sustained
  /// error rate marks the link suspect (degraded) without killing it.
  virtual std::uint64_t iface_send_errors(IfaceId iface) const {
    (void)iface;
    return 0;
  }
  /// Shard topology, for per-shard drain-capacity aggregation by the
  /// adaptive controller.  Defaulted to a single shard so mocks and
  /// pacer-only runtimes need not implement it.
  virtual std::size_t shard_count() const { return 1; }
  virtual std::uint32_t iface_shard(IfaceId iface) const {
    (void)iface;
    return 0;
  }
  /// Cumulative end-to-end stage-latency bucket counts (LatencyHistogram
  /// grid order), summed over interfaces; false when no tracer is wired.
  /// The adaptive controller diffs successive snapshots for windowed p99.
  virtual bool sample_e2e_buckets(std::vector<std::uint64_t>& out) const {
    (void)out;
    return false;
  }

  // --- Actuation ----------------------------------------------------------

  virtual void set_iface_down(IfaceId iface, bool down) = 0;
  /// Attempts a safe in-process restart of worker `worker`'s drain loop;
  /// false when the thread is not provably parked at a safe point.
  virtual bool restart_worker(std::uint32_t worker) = 0;
  /// Current / new overload-shedding byte watermark (0 = shedding off).
  /// Defaulted no-ops so mocks without an overload path stay valid.
  virtual std::uint64_t shed_bytes() const { return 0; }
  virtual void set_shed_bytes(std::uint64_t bytes) { (void)bytes; }
};

struct SupervisorOptions {
  SimDuration probe_interval_ns = 5 * kMillisecond;
  /// Consecutive silent probes (backlog, no drain) before declaring dead.
  std::uint32_t dead_after_probes = 3;
  /// Consecutive alive probes before reviving a dead interface.
  std::uint32_t healthy_after_probes = 4;
  /// Token balance that counts as "the pacer is moving again" for a dead
  /// link (one MTU by default).
  double revive_tokens = 1500.0;
  /// Measured drain below this fraction of configured capacity (with
  /// backlog present) marks a link degraded (suspect) without killing it.
  double degraded_fraction = 0.10;
  /// Egress send errors accumulating in at least this many consecutive
  /// probe windows mark the link suspect (degraded) -- the socket is
  /// rejecting work even if the pacer looks normal.  Recovery is the
  /// usual hysteresis once the error counter stops moving.  0 disables.
  std::uint32_t send_error_probes = 2;
  /// Heartbeat frozen for this many probes triggers a restart attempt.
  std::uint32_t worker_stall_probes = 8;
  bool restart_stalled_workers = true;
  /// Re-run the Theorem-2 clustering check after each link verdict (needs
  /// `fairness`).
  bool replay_clustering = true;
};

enum class LinkState : std::uint8_t { kHealthy = 0, kSuspect = 1, kDead = 2 };
const char* to_string(LinkState state);

class AdaptiveController;
class FaultPlanRecorder;

class Supervisor {
 public:
  /// `fairness` may be null (disables the Theorem-2 replay); both it and
  /// `rt` must outlive the supervisor.
  Supervisor(SupervisedRuntime& rt, SupervisorOptions options,
             telemetry::FairnessSource* fairness = nullptr);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void start();
  void stop();  ///< idempotent; joins the probe thread

  /// One probe pass over every link and worker; called by the probe thread
  /// each interval, and directly by deterministic tests (no thread).
  void probe();

  LinkState link_state(IfaceId iface) const {
    return static_cast<LinkState>(
        state_mirror_[iface].load(std::memory_order_relaxed));
  }
  bool any_degraded() const;

  std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts_attempted() const {
    return restarts_attempted_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts_succeeded() const {
    return restarts_succeeded_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts_refused() const {
    return restarts_refused_.load(std::memory_order_relaxed);
  }
  std::uint64_t clustering_checks() const {
    return clustering_checks_.load(std::memory_order_relaxed);
  }
  std::uint64_t clustering_violations() const {
    return clustering_violations_.load(std::memory_order_relaxed);
  }

  /// Last Theorem-2 verdict ("" = consistent); probe-thread written,
  /// mutex-guarded.
  std::string last_clustering_verdict() const;

  /// Registers midrr_supervisor_* series; `registry` must outlive this.
  void register_metrics(telemetry::MetricsRegistry& registry);

  /// Mirrors link verdicts into a flight-recorder lane.  The lane is
  /// written only by the probe thread (single-writer contract); set it
  /// before start() and leave it for the supervisor's lifetime.
  void set_flight_log(telemetry::FlightLog* log) { flight_ = log; }

  /// Drives an adaptive controller's on_probe() from each link probe with
  /// the window's measured drain rates and verdicts.  Set before start().
  void set_adaptive(AdaptiveController* adapt) { adapt_ = adapt; }

  /// Mirrors dead/revive edges and observed worker stalls into a FaultPlan
  /// recorder.  Set before start().
  void set_recorder(FaultPlanRecorder* recorder) { recorder_ = recorder; }

  /// Ordered terminal link verdicts ("name:dead" / "name:revived"), the
  /// record->replay determinism signature.  Suspect flicker is excluded on
  /// purpose: it is timing-sensitive, terminal verdicts are not.
  std::vector<std::string> verdict_sequence() const;

  /// Copy of the verdict/event log (probe-thread written, wall order).
  std::vector<FaultLogEntry> log() const;

  /// Renders the event log as instant events under `pid`.
  void export_trace(telemetry::ChromeTraceBuilder& builder,
                    std::uint32_t pid) const;

 private:
  struct LinkHealth {
    LinkState state = LinkState::kHealthy;
    std::uint32_t bad_probes = 0;
    std::uint32_t good_probes = 0;
    std::uint32_t error_probes = 0;  ///< consecutive windows with new
                                     ///< egress send errors
    std::uint64_t last_bytes = 0;
    std::uint64_t last_send_errors = 0;
    double last_tokens = 0.0;
  };
  struct WorkerHealth {
    std::uint64_t last_heartbeat = 0;
    std::uint32_t frozen_probes = 0;
  };

  void probe_links(SimTime now);
  void probe_workers();
  void transition(IfaceId iface, LinkHealth& health, LinkState to,
                  SimTime now);
  void replay_clustering(SimTime now);
  void append_log(SimTime at, std::string what);
  void supervise_main();

  SupervisedRuntime& rt_;
  SupervisorOptions options_;
  telemetry::FairnessSource* fairness_;
  telemetry::FlightLog* flight_ = nullptr;    ///< probe-thread only
  AdaptiveController* adapt_ = nullptr;       ///< probe-thread only
  FaultPlanRecorder* recorder_ = nullptr;     ///< probe-thread only

  // Probe-thread-owned verdict state; mirrors for cross-thread readers.
  std::vector<LinkHealth> links_;
  std::vector<WorkerHealth> workers_;
  std::vector<std::atomic<std::uint8_t>> state_mirror_;
  SimTime last_probe_ns_ = -1;

  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> restarts_attempted_{0};
  std::atomic<std::uint64_t> restarts_succeeded_{0};
  std::atomic<std::uint64_t> restarts_refused_{0};
  std::atomic<std::uint64_t> clustering_checks_{0};
  std::atomic<std::uint64_t> clustering_violations_{0};

  mutable std::mutex verdict_mu_;
  std::string clustering_verdict_;
  std::vector<FaultLogEntry> log_;
  std::vector<std::string> verdicts_;  ///< guarded by verdict_mu_

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;  ///< guarded by wake_mu_
  std::atomic<bool> running_{false};
};

}  // namespace midrr::fault
