#include "fault/adapt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fault/recorder.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"
#include "util/latency_histogram.hpp"

namespace midrr::fault {

AdaptiveController::AdaptiveController(SupervisedRuntime& rt,
                                       AdaptOptions options)
    : rt_(rt),
      options_(options),
      links_(rt.iface_count()),
      prev_e2e_(LatencyHistogram::kBuckets, 0),
      cur_e2e_(LatencyHistogram::kBuckets, 0),
      target_p99_ns_(options.target_p99_ns) {
  MIDRR_REQUIRE(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1]");
  MIDRR_REQUIRE(options_.droop_enter_ratio <= options_.droop_exit_ratio,
                "droop hysteresis band inverted");
  MIDRR_REQUIRE(options_.droop_enter_probes > 0 &&
                    options_.droop_exit_probes > 0,
                "droop hysteresis thresholds must be positive");
  MIDRR_REQUIRE(options_.shed_floor_bytes <= options_.shed_ceiling_bytes,
                "shed clamp band inverted");
  MIDRR_REQUIRE(options_.correction_min > 0.0 &&
                    options_.correction_min <= options_.correction_max,
                "correction clamp band inverted");
  correction_mirror_.store(correction_, std::memory_order_relaxed);
}

void AdaptiveController::set_target_p99_ns(SimDuration target) {
  target_p99_ns_.store(std::max<SimDuration>(target, 0),
                       std::memory_order_relaxed);
  retunes_.fetch_add(1, std::memory_order_relaxed);
}

void AdaptiveController::on_probe(SimTime now, double window_s,
                                  const std::vector<double>& measured_bps,
                                  const std::vector<LinkState>& states) {
  if (window_s <= 0.0) return;
  update_drift(now, measured_bps, states);
  update_shedding(now, states);
  updates_.fetch_add(1, std::memory_order_relaxed);
}

void AdaptiveController::update_drift(SimTime now,
                                      const std::vector<double>& measured_bps,
                                      const std::vector<LinkState>& states) {
  for (IfaceId j = 0; j < links_.size(); ++j) {
    Link& link = links_[j];
    const bool dead = j < states.size() && states[j] == LinkState::kDead;
    if (dead) {
      // Topology, not drift: the supervisor's kill/re-steer machinery owns
      // dead links (and the recorder already holds the iface_down edge).
      // Close any open droop so the episodes do not overlap on replay.
      if (link.drooped) close_droop(j, link, now);
      link.low_streak = 0;
      link.high_streak = 0;
      continue;
    }
    const double configured = rt_.iface_configured_bps(j, now);
    if (configured <= 0.0) continue;  // unpaced: no baseline, never judged
    if (rt_.iface_backlog_bytes(j) == 0) {
      // No backlog: drain equals offered load and says nothing about
      // capacity.  Hold state, but break any entry streak -- an idle link
      // is not evidence of a droop.
      link.low_streak = 0;
      continue;
    }
    const double measured = j < measured_bps.size() ? measured_bps[j] : 0.0;
    link.ewma_bps = link.ewma_bps < 0.0
                        ? measured
                        : options_.ewma_alpha * measured +
                              (1.0 - options_.ewma_alpha) * link.ewma_bps;
    const double ratio = link.ewma_bps / configured;
    link.ratio.store(ratio, std::memory_order_relaxed);
    if (link.drooped) link.min_ratio = std::min(link.min_ratio, ratio);
    if (ratio < options_.droop_enter_ratio) {
      link.high_streak = 0;
      if (!link.drooped && ++link.low_streak >= options_.droop_enter_probes) {
        link.drooped = true;
        link.droop_since = now;
        link.min_ratio = ratio;
        link.low_streak = 0;
        link.drooped_mirror.store(1, std::memory_order_release);
        droop_enters_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (ratio > options_.droop_exit_ratio) {
      link.low_streak = 0;
      if (link.drooped && ++link.high_streak >= options_.droop_exit_probes) {
        close_droop(j, link, now);
      }
    } else {
      // Inside the hysteresis band: no evidence either way.
      link.low_streak = 0;
      link.high_streak = 0;
    }
  }
}

void AdaptiveController::close_droop(IfaceId iface, Link& link, SimTime now) {
  link.drooped = false;
  link.high_streak = 0;
  link.drooped_mirror.store(0, std::memory_order_release);
  droop_exits_.fetch_add(1, std::memory_order_relaxed);
  if (recorder_ != nullptr) {
    recorder_->record_iface_scale(
        iface, link.droop_since, now,
        std::clamp(link.min_ratio, options_.capacity_floor_fraction, 1.0));
  }
}

void AdaptiveController::finalize(SimTime now) {
  for (IfaceId j = 0; j < links_.size(); ++j) {
    if (links_[j].drooped) close_droop(j, links_[j], now);
  }
}

double AdaptiveController::windowed_p99(SimTime now) {
  (void)now;
  if (!rt_.sample_e2e_buckets(cur_e2e_)) return -1.0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cur_e2e_.size() && i < prev_e2e_.size(); ++i) {
    const std::uint64_t c = cur_e2e_[i];
    // Swap roles: cur becomes the delta in place, prev the new snapshot.
    cur_e2e_[i] = c >= prev_e2e_[i] ? c - prev_e2e_[i] : 0;
    prev_e2e_[i] = c;
    total += cur_e2e_[i];
  }
  if (total < options_.min_window_samples) return -1.0;
  // Same estimator as LatencyHistogram::quantile, over the window's
  // bucket-count deltas (cumulative grids cannot be reset in place).
  const double rank = 0.99 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < cur_e2e_.size(); ++i) {
    if (cur_e2e_[i] == 0) continue;
    if (static_cast<double>(seen + cur_e2e_[i]) >= rank) {
      const double lo = LatencyHistogram::lower_bound(i);
      if (i < (std::size_t{1} << (LatencyHistogram::kSubBits + 1))) {
        return lo;  // exact region
      }
      const double width = LatencyHistogram::upper_bound(i) - lo + 1.0;
      double into = (rank - static_cast<double>(seen)) /
                    static_cast<double>(cur_e2e_[i]);
      into = std::clamp(into, 0.0, 1.0);
      return lo + width * into;
    }
    seen += cur_e2e_[i];
  }
  return LatencyHistogram::upper_bound(cur_e2e_.size() - 1);
}

void AdaptiveController::update_shedding(SimTime now,
                                         const std::vector<LinkState>& states) {
  const SimDuration target =
      target_p99_ns_.load(std::memory_order_relaxed);
  if (target <= 0) {
    shed_active_.store(0, std::memory_order_relaxed);
    return;
  }
  const double p99 = windowed_p99(now);
  if (p99 > 0.0) {
    windowed_p99_ns_.store(p99, std::memory_order_relaxed);
    const double err = std::clamp(
        std::log(static_cast<double>(target) / p99), -1.0, 1.0);
    correction_ = std::clamp(correction_ * std::exp(options_.gain * err),
                             options_.correction_min, options_.correction_max);
    correction_mirror_.store(correction_, std::memory_order_relaxed);
  }
  // Little's law base: residence <= T needs backlog <= drain_Bps * T per
  // shard; the binding shard is the slowest one hosting any live link.
  std::vector<double> shard_bps(std::max<std::size_t>(rt_.shard_count(), 1),
                                0.0);
  for (IfaceId j = 0; j < links_.size(); ++j) {
    if (j < states.size() && states[j] == LinkState::kDead) continue;
    double rate = links_[j].ewma_bps;
    if (rate < 0.0) rate = std::max(rt_.iface_configured_bps(j, now), 0.0);
    const std::uint32_t shard = rt_.iface_shard(j);
    if (shard < shard_bps.size()) shard_bps[shard] += rate;
  }
  double min_bps = -1.0;
  for (const double bps : shard_bps) {
    if (bps > 0.0 && (min_bps < 0.0 || bps < min_bps)) min_bps = bps;
  }
  if (min_bps <= 0.0) return;  // nothing draining anywhere: keep watermark
  const double target_s = static_cast<double>(target) / 1e9;
  const double raw = (min_bps / 8.0) * target_s * correction_;
  const std::uint64_t watermark = static_cast<std::uint64_t>(std::clamp(
      raw, static_cast<double>(options_.shed_floor_bytes),
      static_cast<double>(options_.shed_ceiling_bytes)));
  rt_.set_shed_bytes(watermark);
  shed_bytes_mirror_.store(watermark, std::memory_order_relaxed);

  bool armed = false;
  for (IfaceId j = 0; j < links_.size() && !armed; ++j) {
    armed = rt_.iface_backlog_bytes(j) >= watermark;
  }
  const bool was_armed = shed_active_.load(std::memory_order_relaxed) != 0;
  if (armed != was_armed) {
    shed_active_.store(armed ? 1 : 0, std::memory_order_relaxed);
    if (armed) shed_engages_.fetch_add(1, std::memory_order_relaxed);
    if (recorder_ != nullptr) {
      std::ostringstream what;
      what << "shed " << (armed ? "engaged" : "disengaged")
           << " watermark_bytes=" << watermark;
      if (p99 > 0.0) what << " windowed_p99_ms=" << p99 / 1e6;
      recorder_->note(now, what.str());
    }
  }
}

double AdaptiveController::effective_capacity_bps(IfaceId iface,
                                                  double configured_bps) const {
  if (iface >= links_.size() || configured_bps <= 0.0) return configured_bps;
  const Link& link = links_[iface];
  if (link.drooped_mirror.load(std::memory_order_acquire) == 0) {
    return configured_bps;
  }
  const double ratio =
      std::clamp(link.ratio.load(std::memory_order_relaxed),
                 options_.capacity_floor_fraction, 1.0);
  return configured_bps * ratio;
}

double AdaptiveController::drift_ratio(IfaceId iface) const {
  return iface < links_.size()
             ? links_[iface].ratio.load(std::memory_order_relaxed)
             : 1.0;
}

bool AdaptiveController::drooped(IfaceId iface) const {
  return iface < links_.size() &&
         links_[iface].drooped_mirror.load(std::memory_order_acquire) != 0;
}

void AdaptiveController::register_metrics(
    telemetry::MetricsRegistry& registry) {
  registry.gauge_fn(
      "midrr_adapt_shed_bytes",
      "Adaptive overload watermark currently applied to the runtime", {},
      [this] { return static_cast<double>(current_shed_bytes()); });
  registry.gauge_fn(
      "midrr_adapt_target_p99_ns", "Shedding latency objective (0 = off)", {},
      [this] { return static_cast<double>(target_p99_ns()); });
  registry.gauge_fn(
      "midrr_adapt_windowed_p99_ns",
      "Traced end-to-end p99 over the last probe window", {},
      [this] { return windowed_p99_ns(); });
  registry.gauge_fn(
      "midrr_adapt_correction",
      "Multiplicative correction applied to the Little's-law watermark", {},
      [this] { return correction(); });
  registry.gauge_fn(
      "midrr_adapt_shedding_active",
      "1 while some shard backlog sits at/above the shed watermark", {},
      [this] { return shed_active() ? 1.0 : 0.0; });
  registry.counter_fn(
      "midrr_adapt_updates_total", "Adaptation passes", {},
      [this] { return static_cast<double>(updates()); });
  registry.counter_fn(
      "midrr_adapt_retunes_total",
      "Live target retunes accepted via the control plane", {},
      [this] { return static_cast<double>(retunes()); });
  registry.counter_fn(
      "midrr_adapt_droop_events_total", "Capacity-droop episodes",
      {{"edge", "enter"}},
      [this] { return static_cast<double>(droop_enters()); });
  registry.counter_fn(
      "midrr_adapt_droop_events_total", "Capacity-droop episodes",
      {{"edge", "exit"}},
      [this] { return static_cast<double>(droop_exits()); });
  for (IfaceId j = 0; j < links_.size(); ++j) {
    registry.gauge_fn(
        "midrr_supervisor_capacity_drift_ratio",
        "Measured/configured drain-rate EWMA (1.0 until judged)",
        {{"iface", rt_.iface_name(j)}},
        [this, j] { return drift_ratio(j); });
  }
}

}  // namespace midrr::fault
