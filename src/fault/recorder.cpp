#include "fault/recorder.hpp"

#include <algorithm>

namespace midrr::fault {

FaultPlanRecorder::FaultPlanRecorder(std::uint64_t seed) : seed_(seed) {}

void FaultPlanRecorder::record_link_dead(IfaceId iface, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kIfaceDown;
  e.at_ns = at;
  e.iface = iface;
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void FaultPlanRecorder::record_link_revived(IfaceId iface, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kIfaceUp;
  e.at_ns = at;
  e.iface = iface;
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void FaultPlanRecorder::record_iface_scale(IfaceId iface, SimTime begin,
                                           SimTime end, double scale) {
  FaultEvent e;
  e.kind = FaultKind::kIfaceScale;
  e.at_ns = begin;
  e.duration_ns = std::max<SimDuration>(end - begin, kMillisecond);
  e.iface = iface;
  e.scale = std::clamp(scale, 0.0, 1.0);
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void FaultPlanRecorder::record_worker_stall(std::uint32_t worker,
                                            SimTime begin,
                                            SimDuration duration) {
  FaultEvent e;
  e.kind = FaultKind::kWorkerStall;
  e.at_ns = begin;
  e.duration_ns = std::max<SimDuration>(duration, kMillisecond);
  e.worker = worker;
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void FaultPlanRecorder::note(SimTime at, std::string what) {
  std::lock_guard<std::mutex> lk(mu_);
  notes_.push_back(ObservedNote{at, std::move(what)});
}

std::size_t FaultPlanRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::size_t FaultPlanRecorder::note_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return notes_.size();
}

FaultPlan FaultPlanRecorder::plan() const {
  FaultPlan out;
  std::lock_guard<std::mutex> lk(mu_);
  out.seed = seed_;
  out.events = events_;
  out.observed = notes_;
  return out;
}

bool FaultPlanRecorder::write_file(const std::string& path) const {
  try {
    plan().write_file(path);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace midrr::fault
