#include "bridge/bridge.hpp"

#include "sched/hier_midrr.hpp"
#include "telemetry/metrics.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace midrr::bridge {

VirtualBridge::VirtualBridge(std::unique_ptr<Scheduler> scheduler,
                             net::MacAddress virt_mac,
                             net::Ipv4Address virt_ip)
    : scheduler_(std::move(scheduler)),
      virt_mac_(virt_mac),
      virt_ip_(virt_ip) {
  MIDRR_REQUIRE(scheduler_ != nullptr, "bridge needs a scheduler");
}

IfaceId VirtualBridge::add_physical(const PhysicalInterface& phys) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const IfaceId id = scheduler_->add_interface(phys.name);
  if (physical_.size() <= id) {
    physical_.resize(static_cast<std::size_t>(id) + 1);
  }
  physical_[id] = phys;
  return id;
}

FlowId VirtualBridge::add_flow(const FlowSpec& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->add_flow(spec);
}

std::size_t VirtualBridge::class_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto* hier = dynamic_cast<const HierMiDrrScheduler*>(scheduler_.get());
  return hier != nullptr ? hier->class_count() : 0;
}

ClassId VirtualBridge::class_of(FlowId flow) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto* hier = dynamic_cast<const HierMiDrrScheduler*>(scheduler_.get());
  return hier != nullptr ? hier->class_of(flow) : kInvalidClass;
}

std::optional<FlowId> VirtualBridge::send_from_app(net::Frame frame,
                                                   SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.app_frames_in;

  const auto view = frame.parse();
  if (!view) {
    ++stats_.app_frames_dropped_unclassified;
    return std::nullopt;
  }
  const auto tuple = FiveTuple::from(*view);
  if (!tuple) {
    ++stats_.app_frames_dropped_unclassified;
    return std::nullopt;
  }
  const FlowId flow = classifier_.classify(*tuple);
  if (flow == kInvalidFlow || !scheduler_->preferences().flow_exists(flow)) {
    ++stats_.app_frames_dropped_unclassified;
    return std::nullopt;
  }

  Packet packet(flow, static_cast<std::uint32_t>(frame.size()));
  if (frame_pool_ != nullptr) {
    // Pool slot instead of heap: mutex_ serializes the acquisition (the
    // pool runs owner-detached); oversize/exhaustion falls back to the
    // heap inside make_frame, counted as a miss.
    packet.frame = frame_pool_->make_frame(frame.bytes());
  } else {
    packet.frame = std::make_shared<net::Frame>(std::move(frame));
  }
  const EnqueueResult result = scheduler_->enqueue(std::move(packet), now);
  if (!result.accepted) {
    ++stats_.app_frames_dropped_queue;
    return std::nullopt;
  }
  return flow;
}

net::Frame VirtualBridge::steer_locked(const Packet& packet, IfaceId iface,
                                       SimTime now) {
  MIDRR_ASSERT(packet.frame != nullptr, "bridge packet without frame");
  MIDRR_ASSERT(iface < physical_.size(), "unknown physical interface");
  const PhysicalInterface& phys = physical_[iface];

  // Copy-on-steer: the queued frame is immutable; the wire copy gets the
  // physical source addresses and fixed-up checksums.
  net::Frame wire = *packet.frame;
  wire.rewrite_source(phys.mac, phys.ip);

  // Track the connection for the return path: the reply will arrive on
  // this interface with src/dst mirrored relative to the rewritten frame.
  const auto view = wire.parse();
  if (view) {
    if (const auto sent = FiveTuple::from(*view)) {
      FiveTuple reply;
      reply.src_ip = sent->dst_ip;
      reply.dst_ip = sent->src_ip;  // the physical interface's address
      reply.src_port = sent->dst_port;
      reply.dst_port = sent->src_port;
      reply.proto = sent->proto;
      TrackedConnection conn;
      conn.flow = packet.flow;
      if (const auto original_view = packet.frame->parse()) {
        if (const auto original = FiveTuple::from(*original_view)) {
          conn.original = *original;
        }
      }
      conntrack_[reply] = conn;
    }
  }

  ++stats_.frames_steered;
  if (iface < taps_.size() && taps_[iface] != nullptr) {
    taps_[iface]->record(now, wire.bytes());
  }
  return wire;
}

std::optional<net::Frame> VirtualBridge::next_frame(IfaceId iface,
                                                    SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto packet = scheduler_->dequeue(iface, now);
  if (!packet) return std::nullopt;
  return steer_locked(*packet, iface, now);
}

std::size_t VirtualBridge::next_burst(IfaceId iface, std::uint64_t byte_budget,
                                      SimTime now,
                                      std::vector<net::Frame>& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Packet> batch;
  const std::size_t count = scheduler_->dequeue_burst(iface, byte_budget, now,
                                                      batch);
  out.reserve(out.size() + count);
  for (const Packet& packet : batch) {
    out.push_back(steer_locked(packet, iface, now));
  }
  return count;
}

void VirtualBridge::attach_tap(IfaceId iface, net::PcapWriter* tap) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (taps_.size() <= iface) {
    taps_.resize(static_cast<std::size_t>(iface) + 1, nullptr);
  }
  taps_[iface] = tap;
}

void VirtualBridge::set_frame_pool(net::FramePool* pool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  frame_pool_ = pool;
}

bool VirtualBridge::has_traffic(IfaceId iface) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->has_eligible(iface);
}

std::optional<net::Frame> VirtualBridge::receive_from_network(
    IfaceId iface, net::Frame frame, SimTime now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.frames_received;
  if (iface < taps_.size() && taps_[iface] != nullptr) {
    taps_[iface]->record(now, frame.bytes());
  }
  const auto view = frame.parse();
  if (!view) {
    ++stats_.frames_received_unmatched;
    return std::nullopt;
  }
  const auto tuple = FiveTuple::from(*view);
  if (!tuple || conntrack_.find(*tuple) == conntrack_.end()) {
    ++stats_.frames_received_unmatched;
    MIDRR_LOG_DEBUG() << "bridge: unmatched inbound frame on iface " << iface;
    return std::nullopt;
  }
  // Restore the application-visible addressing.
  frame.rewrite_destination(virt_mac_, virt_ip_);
  return frame;
}

void VirtualBridge::register_metrics(telemetry::MetricsRegistry& registry,
                                     const std::string& instance) {
  const telemetry::LabelSet labels{{"bridge", instance}};
  // Each callback takes the bridge mutex for one field read; scrape-rate
  // only, and the mutex is never held while calling into the registry.
  const auto field = [this](std::uint64_t BridgeStats::*member) {
    return [this, member] {
      const std::lock_guard<std::mutex> lock(mutex_);
      return static_cast<double>(stats_.*member);
    };
  };
  registry.counter_fn("midrr_bridge_app_frames_in_total",
                      "Frames applications sent on the virtual interface.",
                      labels, field(&BridgeStats::app_frames_in));
  registry.counter_fn("midrr_bridge_unclassified_drops_total",
                      "App frames dropped because no classifier rule "
                      "mapped them to a flow.",
                      labels,
                      field(&BridgeStats::app_frames_dropped_unclassified));
  registry.counter_fn("midrr_bridge_queue_drops_total",
                      "App frames dropped by a flow's queue bound.", labels,
                      field(&BridgeStats::app_frames_dropped_queue));
  registry.counter_fn("midrr_bridge_frames_steered_total",
                      "Frames steered out of physical interfaces "
                      "(post-rewrite).",
                      labels, field(&BridgeStats::frames_steered));
  registry.counter_fn("midrr_bridge_frames_received_total",
                      "Frames arriving on physical interfaces.", labels,
                      field(&BridgeStats::frames_received));
  registry.counter_fn("midrr_bridge_unmatched_inbound_total",
                      "Inbound frames with no conntrack match (not for the "
                      "virtual interface).",
                      labels, field(&BridgeStats::frames_received_unmatched));
  registry.gauge_fn("midrr_bridge_conntrack_entries",
                    "Tracked (interface, 5-tuple) connections.", labels,
                    [this] {
                      const std::lock_guard<std::mutex> lock(mutex_);
                      return static_cast<double>(conntrack_.size());
                    });
}

}  // namespace midrr::bridge
