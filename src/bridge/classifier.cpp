#include "bridge/classifier.hpp"

namespace midrr::bridge {

std::optional<FiveTuple> FiveTuple::from(const net::FrameView& view) {
  FiveTuple t;
  t.src_ip = view.ip.src;
  t.dst_ip = view.ip.dst;
  t.proto = view.ip.protocol;
  if (view.tcp) {
    t.src_port = view.tcp->src_port;
    t.dst_port = view.tcp->dst_port;
  } else if (view.udp) {
    t.src_port = view.udp->src_port;
    t.dst_port = view.udp->dst_port;
  } else {
    return std::nullopt;
  }
  return t;
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const {
  // FNV-1a over the tuple fields.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(t.src_ip.value());
  mix(t.dst_ip.value());
  mix(t.src_port);
  mix(t.dst_port);
  mix(static_cast<std::uint64_t>(t.proto));
  return static_cast<std::size_t>(h);
}

bool ClassifierRule::matches(const FiveTuple& t) const {
  if (proto && *proto != t.proto) return false;
  if (src_port && *src_port != t.src_port) return false;
  if (dst_port && *dst_port != t.dst_port) return false;
  if (dst_ip && *dst_ip != t.dst_ip) return false;
  return true;
}

void FlowClassifier::add_rule(ClassifierRule rule) {
  rules_.push_back(rule);
}

void FlowClassifier::pin(const FiveTuple& tuple, FlowId flow) {
  pinned_[tuple] = flow;
}

FlowId FlowClassifier::classify(const FiveTuple& tuple) const {
  const auto pinned = pinned_.find(tuple);
  if (pinned != pinned_.end()) return pinned->second;
  for (const ClassifierRule& rule : rules_) {
    if (rule.matches(tuple)) return rule.flow;
  }
  return default_flow_;
}

void FlowClassifier::remove_flow(FlowId flow) {
  for (auto it = pinned_.begin(); it != pinned_.end();) {
    it = (it->second == flow) ? pinned_.erase(it) : std::next(it);
  }
  std::erase_if(rules_,
                [flow](const ClassifierRule& r) { return r.flow == flow; });
  if (default_flow_ == flow) default_flow_ = kInvalidFlow;
}

}  // namespace midrr::bridge
