// Flow classification for the virtual-interface bridge.
//
// The bridge must map every application packet to the flow whose user
// preferences govern it.  Classification is rule-based (match on any
// subset of protocol / ports / destination address, first match wins,
// e.g. "TCP dst-port 443 to netflix.example -> flow `netflix`") with an
// exact 5-tuple cache in front, mirroring how the paper's kernel module
// pins individual connections to policy classes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/ids.hpp"
#include "net/packet.hpp"

namespace midrr::bridge {

/// Connection identity (host byte order).
struct FiveTuple {
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  net::IpProto proto = net::IpProto::kTcp;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  /// Extracts the 5-tuple from a parsed frame; nullopt for non-TCP/UDP.
  static std::optional<FiveTuple> from(const net::FrameView& view);
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const;
};

/// One classification rule; unset fields match anything.
struct ClassifierRule {
  std::optional<net::IpProto> proto;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<net::Ipv4Address> dst_ip;
  FlowId flow = kInvalidFlow;

  bool matches(const FiveTuple& t) const;
};

class FlowClassifier {
 public:
  /// Appends a rule (evaluated in insertion order; first match wins).
  void add_rule(ClassifierRule rule);

  /// Pins a specific connection to a flow (consulted before the rules).
  void pin(const FiveTuple& tuple, FlowId flow);

  /// Flow for unmatched traffic; kInvalidFlow (default) = drop.
  void set_default_flow(FlowId flow) { default_flow_ = flow; }

  /// Classifies a connection; kInvalidFlow means "drop".
  FlowId classify(const FiveTuple& tuple) const;

  /// Forgets every pin and cache entry referring to `flow` (flow removal).
  void remove_flow(FlowId flow);

  std::size_t rule_count() const { return rules_.size(); }

 private:
  std::vector<ClassifierRule> rules_;
  std::unordered_map<FiveTuple, FlowId, FiveTupleHash> pinned_;
  FlowId default_flow_ = kInvalidFlow;
};

}  // namespace midrr::bridge
