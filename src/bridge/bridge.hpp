// The virtual-interface bridge: the C++ analog of the paper's 1,010-line
// Linux kernel module (Section 5, Figure 3).
//
// Applications see ONE virtual interface with a stable address.  The bridge
// classifies each outgoing frame into a flow, queues it under the chosen
// scheduling policy, and -- when a physical interface is free -- steers the
// next scheduled frame out of that interface, rewriting the source MAC/IP
// to the physical interface's own (with incremental checksum fix-up, as the
// kernel does) so upstream routers accept it.  A connection-tracking table
// remembers the (interface, rewritten 5-tuple) so inbound replies can be
// rewritten back to the virtual address and handed to the application
// unchanged.
//
// Thread-safety: like the kernel prototype, a single mutex guards the
// scheduler; enter via the public methods only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bridge/classifier.hpp"
#include "net/frame_pool.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "sched/scheduler.hpp"

namespace midrr::telemetry {
class MetricsRegistry;  // bridge.cpp links the telemetry layer
}

namespace midrr::bridge {

/// Addressing of one physical interface.
struct PhysicalInterface {
  std::string name;
  net::MacAddress mac;
  net::Ipv4Address ip;
};

struct BridgeStats {
  std::uint64_t app_frames_in = 0;
  std::uint64_t app_frames_dropped_unclassified = 0;
  std::uint64_t app_frames_dropped_queue = 0;
  std::uint64_t frames_steered = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_received_unmatched = 0;
};

class VirtualBridge {
 public:
  /// The bridge owns its scheduler (policy injected).
  VirtualBridge(std::unique_ptr<Scheduler> scheduler, net::MacAddress virt_mac,
                net::Ipv4Address virt_ip);

  // --- Configuration -----------------------------------------------------

  /// Registers a physical interface; returns the scheduler's id for it.
  IfaceId add_physical(const PhysicalInterface& phys);

  /// Registers a policy flow; returns its id.
  FlowId add_flow(const FlowSpec& spec);

  /// Number of live flow classes, when the bridge's scheduler aggregates
  /// flows into classes (Policy::kHierMiDrr); 0 for flat policies.
  std::size_t class_count() const;

  /// The class of a flow under a class-aggregating scheduler; kInvalidClass
  /// for flat policies or detached flows.
  ClassId class_of(FlowId flow) const;

  FlowClassifier& classifier() { return classifier_; }
  Scheduler& scheduler() { return *scheduler_; }
  const BridgeStats& stats() const { return stats_; }
  net::Ipv4Address virtual_ip() const { return virt_ip_; }

  /// Registers the bridge's counters (frames in/steered/received, the two
  /// drop classes, conntrack size) in `registry` under a
  /// {bridge="<instance>"} label.  Callbacks take the bridge mutex at
  /// scrape time; both the bridge and the registry must outlive the last
  /// scrape.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        const std::string& instance = "bridge0");

  /// Attaches a pcap tap to a physical interface: every frame steered out
  /// of it (post-rewrite) and every matched inbound frame (pre-restore) is
  /// recorded -- tcpdump on the virtual device, effectively.  The writer
  /// must outlive the bridge; pass nullptr to detach.
  void attach_tap(IfaceId iface, net::PcapWriter* tap);

  /// Attaches a frame pool: queued app frames are copied into pool slots
  /// instead of heap-allocated (send_from_app's make_shared disappears
  /// from the enqueue path).  The pool should be owner-DETACHED
  /// (PacketPool::detach_owner): the bridge acquires under its own mutex
  /// -- which provides the required serialization -- from whichever thread
  /// calls send_from_app, and dequeued frames may be released anywhere.
  /// The pool must outlive every frame the bridge queued from it; pass
  /// nullptr to go back to heap frames.
  void set_frame_pool(net::FramePool* pool);

  // --- Outbound path -------------------------------------------------------

  /// An application sent a frame on the virtual interface.  Returns the
  /// flow it was queued under, or nullopt if it was dropped (no matching
  /// flow / queue full).  Callers then kick their transmitters.
  std::optional<FlowId> send_from_app(net::Frame frame, SimTime now);

  /// Physical interface `iface` is free: returns the next frame to put on
  /// the wire, already rewritten to the interface's source addresses.
  std::optional<net::Frame> next_frame(IfaceId iface, SimTime now);

  /// Batched variant: drains up to `byte_budget` of scheduled frames for
  /// `iface` in ONE scheduler pass under ONE lock acquisition (the per-frame
  /// mutex round-trip dominates next_frame at NIC ring-refill rates).
  /// Frames are appended to `out` already rewritten; returns the count.
  std::size_t next_burst(IfaceId iface, std::uint64_t byte_budget, SimTime now,
                         std::vector<net::Frame>& out);

  /// True if some frame is eligible for `iface`.
  bool has_traffic(IfaceId iface) const;

  // --- Inbound path --------------------------------------------------------

  /// A frame arrived on physical interface `iface`.  If it matches a
  /// tracked connection, returns the frame rewritten back to the virtual
  /// interface's addresses (to hand to the application); otherwise nullopt.
  std::optional<net::Frame> receive_from_network(IfaceId iface,
                                                 net::Frame frame,
                                                 SimTime now = 0);

 private:
  struct TrackedConnection {
    FiveTuple original;  ///< as the application sent it
    FlowId flow = kInvalidFlow;
  };

  /// Rewrites a dequeued packet for the wire, records conntrack + tap.
  /// Caller must hold mutex_.
  net::Frame steer_locked(const Packet& packet, IfaceId iface, SimTime now);

  std::unique_ptr<Scheduler> scheduler_;
  FlowClassifier classifier_;
  net::MacAddress virt_mac_;
  net::Ipv4Address virt_ip_;
  std::vector<PhysicalInterface> physical_;  // by IfaceId
  // Return-path table: (iface, remote ip/port, local port, proto) -> conn.
  std::unordered_map<FiveTuple, TrackedConnection, FiveTupleHash> conntrack_;
  std::vector<net::PcapWriter*> taps_;  // by IfaceId; nullptr = no tap
  net::FramePool* frame_pool_ = nullptr;  // optional; acquisitions under mutex_
  BridgeStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace midrr::bridge
