// Deterministic random-number utilities.
//
// All stochastic components of the library (traffic sources, trace
// generators, property-test scenario generators) draw from an explicitly
// seeded midrr::Rng so every run is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/assert.hpp"

namespace midrr {

/// A seeded pseudo-random generator with the handful of distributions the
/// library needs.  Thin wrapper over std::mt19937_64; never seeded from
/// entropy implicitly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MIDRR_REQUIRE(lo <= hi, "uniform_int with empty range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    MIDRR_REQUIRE(lo <= hi, "uniform with inverted range");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability `p` of true.
  bool coin(double p) {
    MIDRR_REQUIRE(p >= 0.0 && p <= 1.0, "coin probability outside [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    MIDRR_REQUIRE(mean > 0.0, "exponential with non-positive mean");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Geometric-ish integer >= 1 with the given mean (>= 1).
  std::int64_t geometric_at_least_one(double mean) {
    MIDRR_REQUIRE(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0) return 1;
    std::geometric_distribution<std::int64_t> d(1.0 / mean);
    return 1 + d(engine_);
  }

  /// Pareto-distributed value with scale `xm` and shape `alpha`.
  /// Used for heavy-tailed flow sizes (web-like workloads).
  double pareto(double xm, double alpha) {
    MIDRR_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto parameters must be > 0");
    const double u = uniform(std::numeric_limits<double>::min(), 1.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    MIDRR_REQUIRE(!weights.empty(), "weighted_index with no weights");
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Derives an independent child generator; useful to give each component
  /// its own stream while keeping a single master seed.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace midrr
