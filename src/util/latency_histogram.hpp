// Lock-free log-bucketed latency histogram (HDR-histogram-lite).
//
// The real-time runtime records one enqueue->dequeue latency sample per
// packet from several worker threads; exact-sample containers (EmpiricalCdf)
// would allocate on the hot path and need locking.  This histogram instead
// keeps a fixed 64 x 8 grid of relaxed atomic counters: bucket = (bit width
// of the nanosecond value, next 3 bits below the leading one).  That bounds
// the quantile error to one sub-bucket (<= 12.5% of the value), which is
// plenty for p50/p99 reporting, at a cost of one relaxed fetch_add per
// sample and zero allocation.
//
// record() is safe from any number of threads.  Readers (quantile/count/
// merge_from) see a racy but internally consistent-enough view: totals are
// monotone, so quantiles computed while writers run are a snapshot "around
// now" -- exactly what a live stats line wants.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace midrr {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kBuckets = 64u << kSubBits;

  LatencyHistogram() = default;

  // Atomics are neither copyable nor movable; the histogram lives in place.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample of `ns` nanoseconds.  Thread-safe, wait-free.
  void record(std::uint64_t ns) {
    counts_[index_of(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  double mean_ns() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_ns_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Value v with cdf(v) ~= q (q in [0, 1]); 0 for an empty histogram.
  ///
  /// The quantile's bucket is found by rank, then the value is linearly
  /// interpolated *within* the bucket by the rank's position among the
  /// bucket's samples (assuming a uniform spread inside the bucket, the
  /// standard HDR/Prometheus estimator).  Without interpolation every
  /// quantile snapped to a bucket midpoint, so unrelated runs reported
  /// bit-identical p99s (e.g. 2.75251e6 ns); with it the error is still
  /// bounded by one sub-bucket width but no longer quantized to it.
  /// Values in the exact region (below 2^(kSubBits+1)) are returned
  /// exactly, as before.
  double quantile(double q) const {
    std::vector<std::uint64_t> snap(kBuckets);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap[i] = counts_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (snap[i] == 0) continue;
      const double seen_after = static_cast<double>(seen + snap[i]);
      if (seen_after >= rank) {
        const double lo = lower_bound(i);
        if (i < (std::size_t{1} << (kSubBits + 1))) {
          return lo;  // exact region: the bucket holds one value
        }
        const double width = upper_bound(i) - lo + 1.0;
        double into = (rank - static_cast<double>(seen)) /
                      static_cast<double>(snap[i]);
        if (into < 0.0) into = 0.0;
        if (into > 1.0) into = 1.0;
        return lo + width * into;
      }
      seen += snap[i];
    }
    return upper_bound(kBuckets - 1);
  }

  /// Adds `other`'s counters into this histogram (per-worker -> global).
  void merge_from(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  /// Raw count of bucket `index` (telemetry exposition reads the grid
  /// directly to build cumulative Prometheus buckets).
  std::uint64_t bucket_count(std::size_t index) const {
    return counts_[index].load(std::memory_order_relaxed);
  }

  /// Sum of all recorded values (racy companion to count()).
  std::uint64_t sum_raw() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }

  /// Smallest value bucket i can hold.
  static double lower_bound(std::size_t index) {
    if (index < (std::size_t{1} << (kSubBits + 1))) {
      return static_cast<double>(index);
    }
    const unsigned octave = static_cast<unsigned>(index >> kSubBits);
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    return static_cast<double>((std::uint64_t{1} << octave) |
                               (sub << (octave - kSubBits)));
  }

  /// Largest value bucket i can hold (inclusive).
  static double upper_bound(std::size_t index) {
    if (index < (std::size_t{1} << (kSubBits + 1))) {
      return static_cast<double>(index);
    }
    const unsigned octave = static_cast<unsigned>(index >> kSubBits);
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    const std::uint64_t lo =
        (std::uint64_t{1} << octave) | (sub << (octave - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
    return static_cast<double>(lo + width - 1);
  }

  /// Midpoint of bucket i's value range (Prometheus exposition anchor;
  /// quantile() interpolates within the bucket instead of reporting this).
  static double representative(std::size_t index) {
    if (index < (std::size_t{1} << (kSubBits + 1))) {
      // The exact region: bucket i holds precisely the value i.
      return static_cast<double>(index);
    }
    const unsigned octave = static_cast<unsigned>(index >> kSubBits);
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    const std::uint64_t lo =
        (std::uint64_t{1} << octave) | (sub << (octave - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
    return static_cast<double>(lo) + static_cast<double>(width) / 2.0;
  }

  static std::size_t index_of(std::uint64_t ns) {
    if (ns < (std::uint64_t{1} << (kSubBits + 1))) {
      // Values below 2^(kSubBits+1) get exact buckets.
      return static_cast<std::size_t>(ns);
    }
    const unsigned octave = static_cast<unsigned>(std::bit_width(ns)) - 1;
    const std::uint64_t sub =
        (ns >> (octave - kSubBits)) & ((1u << kSubBits) - 1);
    return (static_cast<std::size_t>(octave) << kSubBits) |
           static_cast<std::size_t>(sub);
  }

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace midrr
