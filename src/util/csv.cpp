#include "util/csv.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace midrr {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  MIDRR_REQUIRE(!header.empty(), "CSV header must not be empty");
  row(header);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  MIDRR_REQUIRE(fields.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss << v;
    fields.push_back(ss.str());
  }
  row(fields);
}

void write_time_series_csv(std::ostream& out,
                           const std::vector<const TimeSeries*>& series) {
  CsvWriter csv(out, {"series", "t_seconds", "value"});
  for (const TimeSeries* s : series) {
    MIDRR_REQUIRE(s != nullptr, "null time series");
    for (const auto& [t, v] : s->points()) {
      std::ostringstream ts;
      ts << to_seconds(t);
      std::ostringstream vs;
      vs << v;
      csv.row({s->name(), ts.str(), vs.str()});
    }
  }
}

void write_cdf_csv(std::ostream& out, const EmpiricalCdf& cdf,
                   const std::string& value_label) {
  CsvWriter csv(out, {value_label, "cum_probability"});
  for (const auto& [v, p] : cdf.curve()) {
    std::ostringstream vs;
    vs << v;
    std::ostringstream ps;
    ps << p;
    csv.row({vs.str(), ps.str()});
  }
}

}  // namespace midrr
