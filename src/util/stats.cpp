#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace midrr {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  MIDRR_REQUIRE(hi > lo, "histogram range must be non-empty");
  MIDRR_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

double Histogram::bucket_mid(std::size_t i) const {
  MIDRR_REQUIRE(i < counts_.size(), "bucket index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

void EmpiricalCdf::add(double x) { add_weighted(x, 1.0); }

void EmpiricalCdf::add_weighted(double x, double weight) {
  MIDRR_REQUIRE(weight >= 0.0, "negative CDF sample weight");
  if (weight == 0.0) return;
  samples_.emplace_back(x, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void EmpiricalCdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    if (v > x) break;
    acc += w;
  }
  return acc / total_weight_;
}

double EmpiricalCdf::quantile(double q) const {
  MIDRR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile argument outside [0,1]");
  MIDRR_REQUIRE(!samples_.empty(), "quantile of an empty CDF");
  sort_if_needed();
  const double target = q * total_weight_;
  double acc = 0.0;
  for (const auto& [v, w] : samples_) {
    acc += w;
    if (acc >= target) return v;
  }
  return samples_.back().first;
}

double EmpiricalCdf::min() const {
  MIDRR_REQUIRE(!samples_.empty(), "min of an empty CDF");
  sort_if_needed();
  return samples_.front().first;
}

double EmpiricalCdf::max() const {
  MIDRR_REQUIRE(!samples_.empty(), "max of an empty CDF");
  sort_if_needed();
  return samples_.back().first;
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [v, w] : samples_) acc += v * w;
  return acc / total_weight_;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve() const {
  sort_if_needed();
  std::vector<std::pair<double, double>> out;
  double acc = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    acc += samples_[i].second;
    const bool last_of_value =
        (i + 1 == samples_.size()) ||
        (samples_[i + 1].first != samples_[i].first);
    if (last_of_value) {
      out.emplace_back(samples_[i].first, acc / total_weight_);
    }
  }
  return out;
}

RateMeter::RateMeter(SimDuration bin, std::size_t window_bins)
    : bin_(bin), window_bins_(window_bins) {
  MIDRR_REQUIRE(bin > 0, "rate meter bin must be positive");
  MIDRR_REQUIRE(window_bins > 0, "rate meter window must be positive");
}

std::int64_t RateMeter::bin_index(SimTime t) const { return t / bin_; }

void RateMeter::record(SimTime t, std::uint64_t bytes) {
  MIDRR_REQUIRE(bin_index(t) >= gc_floor_,
                "rate meter fed a timestamp older than its retention window");
  last_time_ = std::max(last_time_, t);
  bins_[bin_index(t)] += bytes;
  total_bytes_ += bytes;
  // Garbage-collect bins that can no longer affect any window query at or
  // after the newest time seen (keep a little slack so queries and records
  // slightly in the past still work).
  gc_floor_ = bin_index(last_time_) -
              2 * static_cast<std::int64_t>(window_bins_);
  while (!bins_.empty() && bins_.begin()->first < gc_floor_) {
    bins_.erase(bins_.begin());
  }
}

double RateMeter::rate_bps(SimTime t) const {
  const std::int64_t end = bin_index(t);            // current (partial) bin
  const std::int64_t start = end - static_cast<std::int64_t>(window_bins_);
  // Window covers the `window_bins_` full bins before the current one.
  std::uint64_t bytes = 0;
  for (auto it = bins_.lower_bound(start); it != bins_.end() && it->first < end;
       ++it) {
    bytes += it->second;
  }
  const SimDuration span = static_cast<SimDuration>(window_bins_) * bin_;
  return static_cast<double>(bytes) * 8.0 / to_seconds(span);
}

double TimeSeries::mean_over(SimTime from, SimTime to) const {
  double acc = 0.0;
  std::uint64_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from && t < to) {
      acc += v;
      ++n;
    }
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

double jain_index(const std::vector<double>& rates,
                  const std::vector<double>& weights) {
  MIDRR_REQUIRE(weights.empty() || weights.size() == rates.size(),
                "weights must be empty or match rates");
  if (rates.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    MIDRR_REQUIRE(w > 0.0, "jain_index weight must be positive");
    const double x = rates[i] / w;
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(rates.size()) * sum_sq);
}

}  // namespace midrr
