#include "util/logging.hpp"

#include <iostream>

namespace midrr {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

Logger::Logger() : sink_(&std::cerr) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = (sink != nullptr) ? sink : &std::cerr;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(sink_mu_);
  (*sink_) << "[" << to_string(level) << "] " << message << '\n';
}

}  // namespace midrr
