// Assertion and precondition helpers for the midrr library.
//
// Two levels are provided:
//   MIDRR_REQUIRE(cond, msg)  -- precondition on a public API boundary.
//                                Always checked; throws midrr::PreconditionError.
//   MIDRR_ASSERT(cond, msg)   -- internal invariant. Checked in all builds
//                                (the costs are negligible next to packet
//                                processing) and throws midrr::InvariantError
//                                so tests can observe violations.
#pragma once

#include <stdexcept>
#include <string>

namespace midrr {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Thrown when an internal invariant of the library is broken (a bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void precondition_failed(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + cond + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void invariant_failed(const char* cond, const char* file,
                                          int line, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + cond + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (": " + msg)));
}

}  // namespace detail
}  // namespace midrr

#define MIDRR_REQUIRE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::midrr::detail::precondition_failed(#cond, __FILE__, __LINE__,    \
                                           (msg));                       \
    }                                                                    \
  } while (false)

#define MIDRR_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::midrr::detail::invariant_failed(#cond, __FILE__, __LINE__,       \
                                        (msg));                          \
    }                                                                    \
  } while (false)
