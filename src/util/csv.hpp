// CSV emission for the benchmark harness.
//
// Every figure-reproducing bench both prints a human-readable summary to
// stdout and (optionally) writes the raw series as CSV so the figures can be
// re-plotted externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace midrr {

/// Streams rows of a fixed-width CSV table. Fields containing commas,
/// quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& fields);
  void row_values(const std::vector<double>& values);

  std::size_t columns() const { return columns_; }

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
  std::size_t columns_;
};

/// Writes several time series as long-format CSV: series,name / t_seconds /
/// value.  Series may have different lengths.
void write_time_series_csv(std::ostream& out,
                           const std::vector<const TimeSeries*>& series);

/// Writes a CDF curve as CSV: value,cum_probability.
void write_cdf_csv(std::ostream& out, const EmpiricalCdf& cdf,
                   const std::string& value_label);

}  // namespace midrr
