// Minimal leveled logger.
//
// The library itself logs nothing at Info by default; simulations and the
// benchmark harness raise the level when tracing a run.  Output goes to a
// caller-provided std::ostream (stderr by default) so tests can capture it.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace midrr {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* to_string(LogLevel level);

/// Process-wide logger configuration; not thread-safe by design (the
/// simulator is single-threaded; the kernel-bridge analog takes a lock
/// around scheduling, not logging).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void set_sink(std::ostream* sink);

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, const std::string& message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_;
};

namespace detail {

/// Builds one log line in a temporary stream and flushes it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace midrr

#define MIDRR_LOG(level)                                  \
  if (!::midrr::Logger::instance().enabled(level)) {      \
  } else                                                  \
    ::midrr::detail::LogLine(level)

#define MIDRR_LOG_TRACE() MIDRR_LOG(::midrr::LogLevel::kTrace)
#define MIDRR_LOG_DEBUG() MIDRR_LOG(::midrr::LogLevel::kDebug)
#define MIDRR_LOG_INFO() MIDRR_LOG(::midrr::LogLevel::kInfo)
#define MIDRR_LOG_WARN() MIDRR_LOG(::midrr::LogLevel::kWarn)
#define MIDRR_LOG_ERROR() MIDRR_LOG(::midrr::LogLevel::kError)
