// Minimal leveled logger.
//
// The library itself logs nothing at Info by default; simulations and the
// benchmark harness raise the level when tracing a run.  Output goes to a
// caller-provided std::ostream (stderr by default) so tests can capture it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <sstream>
#include <string>

namespace midrr {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* to_string(LogLevel level);

/// Process-wide logger configuration.  Thread-safe: the level is an atomic
/// (enabled() stays a single relaxed load on the fast path) and a mutex
/// serializes sink writes so lines from the runtime's worker threads never
/// interleave mid-line.  (The logger predates src/runtime and used to be
/// single-thread-only; the real-time engine made that a bug.)
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void set_sink(std::ostream* sink);

  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }
  void write(LogLevel level, const std::string& message);

 private:
  Logger();

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex sink_mu_;  ///< guards sink_ pointer and every write through it
  std::ostream* sink_;
};

/// Wait-free token check for rate-limiting hot-path warnings (ring-full,
/// straggler drops): at most one emission per `min_interval`, suppressed
/// messages are counted so the next emitted line can report them.
///
///   static LogRateLimiter limiter(std::chrono::seconds(1));
///   if (limiter.allow()) {
///     MIDRR_LOG_WARN() << "ring full (" << limiter.take_suppressed()
///                      << " earlier drops unreported)";
///   }
class LogRateLimiter {
 public:
  explicit LogRateLimiter(std::chrono::nanoseconds min_interval)
      : interval_ns_(min_interval.count()) {}

  /// True if the caller may emit a message now; false counts a suppression.
  bool allow() {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    std::int64_t next = next_ns_.load(std::memory_order_relaxed);
    if (now < next) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (next_ns_.compare_exchange_strong(next, now + interval_ns_,
                                         std::memory_order_relaxed)) {
      return true;
    }
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Returns and resets the suppressed-message count.
  std::uint64_t take_suppressed() {
    return suppressed_.exchange(0, std::memory_order_relaxed);
  }

  std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::int64_t interval_ns_;
  std::atomic<std::int64_t> next_ns_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

namespace detail {

/// Builds one log line in a temporary stream and flushes it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace midrr

#define MIDRR_LOG(level)                                  \
  if (!::midrr::Logger::instance().enabled(level)) {      \
  } else                                                  \
    ::midrr::detail::LogLine(level)

#define MIDRR_LOG_TRACE() MIDRR_LOG(::midrr::LogLevel::kTrace)
#define MIDRR_LOG_DEBUG() MIDRR_LOG(::midrr::LogLevel::kDebug)
#define MIDRR_LOG_INFO() MIDRR_LOG(::midrr::LogLevel::kInfo)
#define MIDRR_LOG_WARN() MIDRR_LOG(::midrr::LogLevel::kWarn)
#define MIDRR_LOG_ERROR() MIDRR_LOG(::midrr::LogLevel::kError)
