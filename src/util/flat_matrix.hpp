// FlowIfaceMatrix: a row-major flat arena for per-(flow, interface) state.
//
// The schedulers keep several [flow][iface] tables (deficit counters,
// service flags, sent-byte counters, turn counts).  Nested
// vector<vector<T>> puts every row behind its own heap pointer, so the
// per-packet hot path chases two cache lines per access.  This class stores
// the whole table in ONE contiguous buffer with a fixed column stride:
// element (i, j) lives at data[i * stride + j], and a row is a plain T*
// the inner scheduling loops can walk.
//
// Rows and columns only ever grow (flow / interface ids are dense and never
// reused).  Growing rows is an amortized O(1) append; growing columns
// re-lays the buffer out (an interface registration -- control path, rare).
#pragma once

#include <cstddef>
#include <vector>

namespace midrr {

template <typename T>
class FlowIfaceMatrix {
 public:
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Grows the table to at least rows x cols, value-initializing new cells
  /// and preserving existing contents.  Never shrinks.
  void ensure(std::size_t rows, std::size_t cols) {
    if (cols > cols_ && cols <= stride_) {
      // Slack from a previous geometric stride growth; the uncovered cells
      // are still value-initialized (nothing ever wrote past cols_).
      cols_ = cols;
    } else if (cols > cols_) {
      // Column growth changes the stride: re-lay out the buffer.  Grow
      // geometrically so registering interfaces one by one stays O(n).
      std::size_t new_stride = cols_ == 0 ? cols : cols_;
      while (new_stride < cols) new_stride *= 2;
      std::vector<T> wider(rows_ * new_stride, T{});
      for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
          wider[r * new_stride + c] = data_[r * stride_ + c];
        }
      }
      data_.swap(wider);
      stride_ = new_stride;
      cols_ = cols;
    }
    if (rows > rows_) {
      data_.resize(rows * stride_, T{});
      rows_ = rows;
    }
  }

  /// Unchecked element access; (row, col) must be within ensure()d bounds.
  T& at(std::size_t row, std::size_t col) { return data_[row * stride_ + col]; }
  const T& at(std::size_t row, std::size_t col) const {
    return data_[row * stride_ + col];
  }

  /// Bounds-tolerant read: cells never written read as T{} (introspection
  /// accessors accept ids the table has not grown to yet).
  T get(std::size_t row, std::size_t col) const {
    return row < rows_ && col < cols_ ? data_[row * stride_ + col] : T{};
  }

  /// Pointer to the first element of a row (cols() contiguous elements).
  T* row(std::size_t r) { return data_.data() + r * stride_; }
  const T* row(std::size_t r) const { return data_.data() + r * stride_; }

  /// Overwrites every cell of row `r` (within cols()) with `value`.
  void fill_row(std::size_t r, T value) {
    T* p = row(r);
    for (std::size_t c = 0; c < cols_; ++c) p[c] = value;
  }

  void clear() {
    data_.clear();
    rows_ = cols_ = stride_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace midrr
