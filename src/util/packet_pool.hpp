// Slab-based buffer pool with cross-thread recycling.
//
// A PacketPool carves large slabs into fixed-size slots.  Each slot is a
// [header | buffer] pair: the buffer region holds packet payload bytes and
// the header region is reserved for the small control structures that give
// the buffer shared ownership (net::FramePool places a shared_ptr control
// block plus the Frame object there via std::allocate_shared, so a pooled
// frame performs *zero* heap allocations end to end).
//
// Ownership protocol (documented in docs/RUNTIME.md "Memory ownership &
// pooling"):
//   * one *owner* thread acquires slots (per-thread freelist, no locks,
//     no atomics on the hot path beyond stats counters);
//   * *any* thread releases a slot: the owner thread pushes straight back
//     onto the freelist, every other thread pushes the slot index onto a
//     lock-free MPSC return ring;
//   * the owner drains the return ring into its freelist when the
//     freelist runs dry; a full return ring falls back to a mutex-guarded
//     overflow list (counted, never lost, never blocking the fast path).
//
// Exhaustion (all slabs in flight) and oversized requests are *misses*:
// callers fall back to plain heap allocation and the miss counter records
// it, so a pool that is sized too small degrades to today's behavior
// instead of failing.  Leak accounting is built in: at quiescence
// `stats().outstanding == 0` iff every acquired slot was released exactly
// once, and a double release trips MIDRR_ASSERT immediately.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/mpsc_ring.hpp"

namespace midrr {

struct PacketPoolOptions {
  /// Payload capacity of one pooled buffer.  Requests larger than this
  /// miss the pool and fall back to the heap.
  std::size_t buffer_bytes = 2048;
  /// Reserved header region per slot (shared_ptr control block + frame
  /// object; 192 bytes is several times what either mainstream standard
  /// library needs, validated at FramePool construction).
  std::size_t header_bytes = 192;
  /// Slots carved per slab allocation (rounded up to a power of two so
  /// slot -> slab addressing is shift/mask, not division -- the hot path
  /// resolves a slot's slab ~5 times per frame lifecycle).
  std::size_t slab_slots = 512;
  /// Hard cap on slabs; once reached, acquisition misses to the heap.
  std::size_t max_slabs = 64;
  /// Capacity of the lock-free cross-thread return ring.
  std::size_t return_ring_capacity = 8192;
  /// Carve every slab up front (construction time) instead of lazily on
  /// exhaustion.  Costs max_slabs * slab_slots * stride bytes immediately,
  /// but freezes the slab directory: slab_regions() is then complete and
  /// stable for the pool's lifetime, which is what lets an io_uring egress
  /// backend register the slabs as fixed buffers exactly once.
  bool precarve = false;
};

/// One slab's memory range (base is kUtilCacheLine-aligned).
struct SlabRegion {
  std::uint8_t* base = nullptr;
  std::size_t bytes = 0;
};

/// Monotonic counters + occupancy snapshot (approximate while threads run,
/// exact at quiescence).
struct PacketPoolStats {
  std::uint64_t slabs = 0;            ///< slabs allocated so far
  std::uint64_t capacity_slots = 0;   ///< slabs * slab_slots
  std::uint64_t acquired = 0;         ///< successful slot acquisitions
  std::uint64_t released = 0;         ///< slot releases (any thread)
  std::uint64_t outstanding = 0;      ///< acquired - released
  std::uint64_t misses = 0;           ///< heap fallbacks (exhausted/oversize)
  std::uint64_t cross_thread_returns = 0;  ///< releases from non-owner threads
  std::uint64_t overflow_returns = 0;      ///< returns that found the ring full
  std::uint64_t free_local = 0;       ///< owner freelist occupancy (approx)
  std::uint64_t in_return_ring = 0;   ///< return ring occupancy (approx)
};

class PacketPool {
 public:
  explicit PacketPool(PacketPoolOptions options = {});
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Rebinds the owner (freelist) thread to the calling thread.  Call once
  /// from the thread that will acquire, before the first acquisition; the
  /// constructor binds the constructing thread by default.
  void bind_owner();

  /// Detaches the owner thread: every release takes the cross-thread path
  /// and callers of acquire_slot must be externally serialized (used by
  /// the bridge, whose entry points are already behind a mutex, and by
  /// shutdown paths after the owner thread has exited).
  void detach_owner();

  /// Invalid slot index (returned on miss).
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  /// Owner-thread-only (or externally serialized after detach_owner):
  /// pops a slot from the freelist, draining the return ring / overflow
  /// list / carving a new slab as needed.  Returns kNoSlot on exhaustion
  /// (counted as a miss).
  std::uint32_t acquire_slot();

  /// Any thread: returns a slot acquired earlier.  Exactly once per
  /// acquisition; a double release trips MIDRR_ASSERT.
  void release_slot(std::uint32_t slot);

  /// Counts a heap fallback that bypassed acquire_slot (e.g. an oversized
  /// request rejected before touching the freelist).
  void count_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  std::uint8_t* header_of(std::uint32_t slot);
  std::uint8_t* buffer_of(std::uint32_t slot);
  std::size_t buffer_bytes() const { return options_.buffer_bytes; }
  std::size_t header_bytes() const { return options_.header_bytes; }

  PacketPoolStats stats() const;

  /// The memory ranges of every slab carved so far.  With precarve this is
  /// the pool's complete, immutable slab directory, callable from any
  /// thread; without it the directory may still grow, so only the owner
  /// thread may call this (same contract as acquire_slot).
  std::vector<SlabRegion> slab_regions() const;

 private:
  static constexpr std::uint8_t kFree = 0;
  static constexpr std::uint8_t kLive = 1;

  struct Slab {
    std::uint8_t* base = nullptr;  // 64-byte aligned, slab_slots * stride_
    std::unique_ptr<std::atomic<std::uint8_t>[]> state;  // kFree / kLive
  };

  void carve_slab();
  std::atomic<std::uint8_t>& state_of(std::uint32_t slot);

  PacketPoolOptions options_;
  std::size_t stride_ = 0;      // header + buffer, rounded up to 64
  std::uint32_t slab_shift_ = 0;  // log2(slab_slots): slot >> shift = slab
  std::uint32_t slab_mask_ = 0;   // slab_slots - 1: slot & mask = index

  // Owner-thread state: freelist plus the slab directory.  The directory
  // vector is preallocated to max_slabs so release_slot on other threads
  // can index it without racing vector growth (entries are written once by
  // the owner and published to other threads through the same channel that
  // carries the slot index itself).
  std::vector<Slab> slabs_;
  std::vector<std::uint32_t> free_;
  std::atomic<std::thread::id> owner_;

  // Cross-thread return path.
  MpscRing<std::uint32_t> returns_;
  std::mutex overflow_mu_;
  std::vector<std::uint32_t> overflow_;

  // Stats.  Writers: owner (acquired_, slab_count_), any thread (the
  // rest); all relaxed -- they are monotonic counters read by gauges.
  std::atomic<std::uint64_t> slab_count_{0};
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> cross_returns_{0};
  std::atomic<std::uint64_t> overflow_returns_{0};
};

}  // namespace midrr
