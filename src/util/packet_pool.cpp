#include "util/packet_pool.hpp"

#include <cstdlib>
#include <new>

#include "util/assert.hpp"

namespace midrr {

namespace {

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

PacketPool::PacketPool(PacketPoolOptions options)
    : options_(options),
      returns_(options.return_ring_capacity) {
  MIDRR_REQUIRE(options_.buffer_bytes > 0, "pool buffer_bytes must be > 0");
  MIDRR_REQUIRE(options_.slab_slots > 0, "pool slab_slots must be > 0");
  MIDRR_REQUIRE(options_.max_slabs > 0, "pool max_slabs must be > 0");
  options_.header_bytes = round_up(options_.header_bytes, kUtilCacheLine);
  stride_ = round_up(options_.header_bytes + options_.buffer_bytes,
                     kUtilCacheLine);
  // Power-of-two slots per slab: slot -> (slab, index) becomes shift/mask.
  std::size_t slots = 1;
  while (slots < options_.slab_slots) {
    slots <<= 1;
    ++slab_shift_;
  }
  options_.slab_slots = slots;
  slab_mask_ = static_cast<std::uint32_t>(slots - 1);
  slabs_.reserve(options_.max_slabs);
  free_.reserve(options_.slab_slots);
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  if (options_.precarve) {
    free_.reserve(options_.max_slabs * options_.slab_slots);
    while (slabs_.size() < options_.max_slabs) carve_slab();
  }
}

PacketPool::~PacketPool() {
  for (Slab& slab : slabs_) {
    ::operator delete[](slab.base, std::align_val_t{kUtilCacheLine});
  }
}

void PacketPool::bind_owner() {
  owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
}

void PacketPool::detach_owner() {
  // A default-constructed id matches no running thread, so every release
  // takes the cross-thread path from here on.
  owner_.store(std::thread::id{}, std::memory_order_relaxed);
}

void PacketPool::carve_slab() {
  const std::size_t bytes = stride_ * options_.slab_slots;
  Slab slab;
  slab.base = static_cast<std::uint8_t*>(
      ::operator new[](bytes, std::align_val_t{kUtilCacheLine}));
  slab.state =
      std::make_unique<std::atomic<std::uint8_t>[]>(options_.slab_slots);
  for (std::size_t i = 0; i < options_.slab_slots; ++i) {
    slab.state[i].store(kFree, std::memory_order_relaxed);
  }
  const std::uint32_t base_index =
      static_cast<std::uint32_t>(slabs_.size() * options_.slab_slots);
  slabs_.push_back(std::move(slab));
  slab_count_.store(slabs_.size(), std::memory_order_relaxed);
  // Newest slots go to the freelist back so the pool reuses hot slots
  // (LIFO) before touching cold, freshly carved memory.
  for (std::size_t i = options_.slab_slots; i > 0; --i) {
    free_.push_back(base_index + static_cast<std::uint32_t>(i - 1));
  }
}

std::atomic<std::uint8_t>& PacketPool::state_of(std::uint32_t slot) {
  return slabs_[slot >> slab_shift_].state[slot & slab_mask_];
}

std::uint8_t* PacketPool::header_of(std::uint32_t slot) {
  return slabs_[slot >> slab_shift_].base + (slot & slab_mask_) * stride_;
}

std::uint8_t* PacketPool::buffer_of(std::uint32_t slot) {
  return header_of(slot) + options_.header_bytes;
}

std::uint32_t PacketPool::acquire_slot() {
  if (free_.empty()) {
    // Refill from the cross-thread return ring (lock-free), then the
    // overflow list (rare; only populated when the ring filled up), then
    // a fresh slab.
    returns_.pop_batch(free_, options_.slab_slots);
    if (free_.empty()) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      free_.swap(overflow_);
    }
    if (free_.empty() && slabs_.size() < options_.max_slabs) {
      carve_slab();
    }
    if (free_.empty()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return kNoSlot;
    }
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  const std::uint8_t prev =
      state_of(slot).exchange(kLive, std::memory_order_acquire);
  MIDRR_ASSERT(prev == kFree, "packet pool handed out a live slot");
  acquired_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void PacketPool::release_slot(std::uint32_t slot) {
  const std::uint8_t prev =
      state_of(slot).exchange(kFree, std::memory_order_release);
  MIDRR_ASSERT(prev == kLive, "packet pool slot released twice");
  released_.fetch_add(1, std::memory_order_relaxed);
  if (owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
    free_.push_back(slot);
    return;
  }
  cross_returns_.fetch_add(1, std::memory_order_relaxed);
  if (!returns_.push(slot)) {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    overflow_.push_back(slot);
    overflow_returns_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SlabRegion> PacketPool::slab_regions() const {
  std::vector<SlabRegion> regions;
  regions.reserve(slabs_.size());
  const std::size_t bytes = stride_ * options_.slab_slots;
  for (const Slab& slab : slabs_) regions.push_back({slab.base, bytes});
  return regions;
}

PacketPoolStats PacketPool::stats() const {
  PacketPoolStats s;
  s.slabs = slab_count_.load(std::memory_order_relaxed);
  s.capacity_slots = s.slabs * options_.slab_slots;
  s.acquired = acquired_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.outstanding = s.acquired >= s.released ? s.acquired - s.released : 0;
  s.misses = misses_.load(std::memory_order_relaxed);
  s.cross_thread_returns = cross_returns_.load(std::memory_order_relaxed);
  s.overflow_returns = overflow_returns_.load(std::memory_order_relaxed);
  s.in_return_ring = returns_.size_approx();
  // Freelist occupancy inferred from the counters rather than free_.size()
  // (free_ belongs to the owner thread; gauges may run anywhere).
  const std::uint64_t accounted = s.outstanding + s.in_return_ring;
  s.free_local = s.capacity_slots > accounted ? s.capacity_slots - accounted
                                              : 0;
  return s;
}

}  // namespace midrr
