// Simulated-time primitives.
//
// Simulation time is kept as an integral nanosecond count so that event
// ordering is exact and runs are bit-reproducible; rates are double
// bits-per-second.  Conversions between (bytes, rate) and durations live
// here so rounding policy is in one place: transmission durations round up
// to the next nanosecond, so a link can never send faster than its rate.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace midrr {

/// Simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// Simulated duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Converts a duration in (fractional) seconds to nanoseconds, rounding to
/// nearest.
constexpr SimDuration from_seconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond) + 0.5);
}

/// Converts nanoseconds to fractional seconds (for reporting only).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Duration needed to transmit `bytes` at `rate_bps` bits per second,
/// rounded up to a whole nanosecond.  `rate_bps` must be positive.
inline SimDuration transmission_time(std::uint64_t bytes, double rate_bps) {
  MIDRR_REQUIRE(rate_bps > 0.0, "transmission over a zero/negative-rate link");
  const double seconds =
      static_cast<double>(bytes) * 8.0 / rate_bps;
  return static_cast<SimDuration>(
      std::ceil(seconds * static_cast<double>(kSecond)));
}

/// Average rate in bits per second achieved by sending `bytes` over `d`.
inline double rate_bps(std::uint64_t bytes, SimDuration d) {
  MIDRR_REQUIRE(d > 0, "rate over an empty interval");
  return static_cast<double>(bytes) * 8.0 / to_seconds(d);
}

/// Absolute steady-clock nanoseconds (CLOCK_MONOTONIC).  Unlike a
/// Runtime's now_ns() -- which is relative to that runtime's start() --
/// this is comparable across processes on the same host, which is what
/// the wire-level latency attribution (tx stamp in the WireHeader, rx
/// stamp in midrr_rx) needs.
inline std::uint64_t mono_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Convenience literals-ish helpers (Mb/s is the paper's reporting unit).
constexpr double mbps(double v) { return v * 1e6; }
constexpr double kbps(double v) { return v * 1e3; }
constexpr double gbps(double v) { return v * 1e9; }
constexpr double to_mbps(double bps) { return bps / 1e6; }

}  // namespace midrr
