// Measurement substrate: online summary statistics, histograms, empirical
// CDFs, windowed rate meters and time series.
//
// These are the instruments behind every figure the benchmark harness
// regenerates: Fig 6/10 use TimeSeries + RateMeter, Fig 7/9 use
// EmpiricalCdf, Fig 8/11 sample rates through RateMeter.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace midrr {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); values outside the range are
/// clamped into the first/last bucket and counted as such.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Midpoint value of bucket i.
  double bucket_mid(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Stores samples and answers quantile/CDF queries exactly.
/// Used for the scheduling-latency CDF (Fig 9) and the concurrent-flow CDF
/// (Fig 7), where sample counts are modest.
class EmpiricalCdf {
 public:
  void add(double x);
  void add_weighted(double x, double weight);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P(X <= x) over the recorded samples (weighted).
  double cdf(double x) const;
  /// Smallest recorded value v with cdf(v) >= q, q in [0, 1].
  double quantile(double q) const;
  double min() const;
  double max() const;
  double mean() const;

  /// The distinct sample points in increasing order with cumulative
  /// probability -- the series a CDF plot draws.
  std::vector<std::pair<double, double>> curve() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

/// Measures the rate of a byte stream over a sliding window of fixed-size
/// time bins; rate(t) is computed over the most recent `window_bins` bins.
/// This mirrors how the paper plots per-flow rate over time (Fig 6/10).
class RateMeter {
 public:
  /// `bin` is the sampling granularity, `window_bins` the smoothing window.
  explicit RateMeter(SimDuration bin, std::size_t window_bins = 1);

  /// Records `bytes` transferred at simulated time `t`.  Bounded reordering
  /// is accepted: `t` may lag the newest record by up to the retention
  /// window (2x the smoothing window), which covers burst-mode links
  /// replaying one batch of per-packet departures per interface.
  void record(SimTime t, std::uint64_t bytes);

  /// Average rate in bits per second over the window ending at time `t`.
  double rate_bps(SimTime t) const;

  /// Total bytes recorded so far.
  std::uint64_t total_bytes() const { return total_bytes_; }

  SimDuration bin() const { return bin_; }

 private:
  std::int64_t bin_index(SimTime t) const;

  SimDuration bin_;
  std::size_t window_bins_;
  // bin index -> bytes in that bin; only recent bins are retained.
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_bytes_ = 0;
  SimTime last_time_ = 0;
  std::int64_t gc_floor_ = std::numeric_limits<std::int64_t>::min();
};

/// An append-only (time, value) series with named identity; the CSV/plot
/// output unit of the benchmark harness.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(SimTime t, double value) { points_.emplace_back(t, value); }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  /// Mean of values with t in [from, to).
  double mean_over(SimTime from, SimTime to) const;

 private:
  std::string name_;
  std::vector<std::pair<SimTime, double>> points_;
};

/// Jain's fairness index over a set of (possibly weighted) rates:
/// J = (sum x_i)^2 / (n * sum x_i^2), with x_i = r_i / w_i.
/// J = 1 iff all normalized rates are equal.
double jain_index(const std::vector<double>& rates,
                  const std::vector<double>& weights = {});

}  // namespace midrr
