// Bounded lock-free multi-producer / single-consumer ring.
//
// This is the Vyukov bounded-queue idiom specialized to many producers and
// one consumer: each cell carries a sequence number that encodes whether it
// is free for the producer claiming ticket `pos` (seq == pos) or ready for
// the consumer (seq == pos + 1).  Producers claim a ticket with one CAS on
// `tail_`; the consumer runs CAS-free.  A full ring fails the push (the
// caller falls back to a mutex-protected overflow list -- see PacketPool),
// so producers never block and never spin unbounded.
//
// The packet pool uses this as the *return* ring: worker threads that drop
// the last reference to a pooled buffer push its slot index here, and the
// pool's owner thread drains it back into the local freelist.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace midrr {

/// Cache-line size used for padding shared indices (mirrors rt::kCacheLine;
/// duplicated here because util must not depend on the runtime layer).
inline constexpr std::size_t kUtilCacheLine = 64;

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two; must be >= 2.
  explicit MpscRing(std::size_t capacity_hint) {
    std::size_t cap = 2;
    while (cap < capacity_hint) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push.  Returns false when the ring is full (the value
  /// is left untouched so the caller can divert it to a fallback path).
  bool push(T value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry with the new ticket.
      } else if (dif < 0) {
        return false;  // full: the cell is still occupied one lap behind
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop.  Only one thread may call pop at a time (the
  /// pool's owner); concurrent consumers are undefined behavior.
  bool pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return false;  // empty (or a producer still writing the next cell)
    }
    out = std::move(cell.value);
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Drains up to `max` elements into `out` (appended).  Single consumer.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    T value;
    while (n < max && pop(value)) {
      out.push_back(std::move(value));
      ++n;
    }
    return n;
  }

  /// Approximate occupancy; exact only when producers and consumer are
  /// quiescent.  Used for gauges and shutdown accounting.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producers contend on tail_; the consumer owns head_.  Keep them on
  // separate cache lines so producer CAS traffic does not invalidate the
  // consumer's line (layout-audit note: the unpadded version showed head_
  // and tail_ sharing one line).
  alignas(kUtilCacheLine) std::atomic<std::uint64_t> tail_{0};
  alignas(kUtilCacheLine) std::atomic<std::uint64_t> head_{0};
};

}  // namespace midrr
