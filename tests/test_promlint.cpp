// lint_prometheus: the renderer's own output must pass, and each class of
// corruption the linter exists to catch must fail.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/promlint.hpp"
#include "telemetry/prometheus.hpp"

namespace {

using midrr::telemetry::lint_prometheus;
using midrr::telemetry::LintIssue;
using midrr::telemetry::MetricsRegistry;

std::string issues_text(const std::vector<LintIssue>& issues) {
  std::string out;
  for (const auto& issue : issues) {
    out += std::to_string(issue.line) + ": " + issue.message + "\n";
  }
  return out;
}

TEST(PromLint, RendererOutputIsClean) {
  MetricsRegistry registry;
  registry.counter("midrr_lint_events_total", "events",
                   {{"kind", "a\"b\\c\nd"}})
      .inc(3);
  registry.gauge("midrr_lint_depth", "depth").set(-1.5);
  auto& hist = registry.histogram("midrr_lint_wait_ns", "wait");
  hist.observe(1);
  hist.observe(100);
  hist.observe(1'000'000);
  const std::string page = midrr::telemetry::render_prometheus(registry);
  const auto issues = lint_prometheus(page);
  EXPECT_TRUE(issues.empty()) << issues_text(issues) << page;
}

TEST(PromLint, EmptyPageIsClean) {
  EXPECT_TRUE(lint_prometheus("").empty());
}

TEST(PromLint, FlagsSampleWithoutType) {
  EXPECT_FALSE(lint_prometheus("midrr_x_total 1\n").empty());
}

TEST(PromLint, FlagsBadMetricAndLabelNames) {
  EXPECT_FALSE(lint_prometheus("# TYPE 9bad counter\n9bad 1\n").empty());
  EXPECT_FALSE(
      lint_prometheus("# TYPE midrr_x counter\nmidrr_x{9lbl=\"v\"} 1\n")
          .empty());
  EXPECT_FALSE(
      lint_prometheus("# TYPE midrr_x counter\nmidrr_x{__res=\"v\"} 1\n")
          .empty());
}

TEST(PromLint, FlagsUnknownTypeAndDuplicateType) {
  EXPECT_FALSE(lint_prometheus("# TYPE midrr_x enum\nmidrr_x 1\n").empty());
  EXPECT_FALSE(lint_prometheus("# TYPE midrr_x counter\n"
                               "# TYPE midrr_x counter\n"
                               "midrr_x 1\n")
                   .empty());
}

TEST(PromLint, FlagsInterleavedFamilies) {
  const std::string page =
      "# TYPE midrr_a counter\n"
      "midrr_a 1\n"
      "# TYPE midrr_b counter\n"
      "midrr_b 1\n"
      "# TYPE midrr_a counter\n"
      "midrr_a{k=\"v\"} 1\n";
  EXPECT_FALSE(lint_prometheus(page).empty());
}

TEST(PromLint, FlagsDuplicateSeries) {
  const std::string page =
      "# TYPE midrr_a counter\n"
      "midrr_a{k=\"v\"} 1\n"
      "midrr_a{k=\"v\"} 2\n";
  EXPECT_FALSE(lint_prometheus(page).empty());
}

TEST(PromLint, FlagsBadEscapesAndValues) {
  EXPECT_FALSE(
      lint_prometheus("# TYPE midrr_x counter\nmidrr_x{k=\"a\\qb\"} 1\n")
          .empty());
  EXPECT_FALSE(
      lint_prometheus("# TYPE midrr_x counter\nmidrr_x notanumber\n")
          .empty());
  // Inf/NaN are legal exposition values.
  EXPECT_TRUE(
      lint_prometheus("# TYPE midrr_x gauge\nmidrr_x +Inf\n").empty());
}

TEST(PromLint, FlagsHistogramBucketRegressions) {
  // Well-formed histogram passes.
  const std::string good =
      "# TYPE midrr_h histogram\n"
      "midrr_h_bucket{le=\"10\"} 1\n"
      "midrr_h_bucket{le=\"100\"} 3\n"
      "midrr_h_bucket{le=\"+Inf\"} 4\n"
      "midrr_h_sum 42\n"
      "midrr_h_count 4\n";
  EXPECT_TRUE(lint_prometheus(good).empty())
      << issues_text(lint_prometheus(good));
  // Cumulative counts must not regress.
  const std::string regressing =
      "# TYPE midrr_h histogram\n"
      "midrr_h_bucket{le=\"10\"} 5\n"
      "midrr_h_bucket{le=\"100\"} 3\n"
      "midrr_h_bucket{le=\"+Inf\"} 5\n"
      "midrr_h_sum 42\n"
      "midrr_h_count 5\n";
  EXPECT_FALSE(lint_prometheus(regressing).empty());
  // +Inf bucket must exist and equal _count.
  const std::string no_inf =
      "# TYPE midrr_h histogram\n"
      "midrr_h_bucket{le=\"10\"} 1\n"
      "midrr_h_sum 42\n"
      "midrr_h_count 1\n";
  EXPECT_FALSE(lint_prometheus(no_inf).empty());
  const std::string inf_mismatch =
      "# TYPE midrr_h histogram\n"
      "midrr_h_bucket{le=\"+Inf\"} 3\n"
      "midrr_h_sum 42\n"
      "midrr_h_count 4\n";
  EXPECT_FALSE(lint_prometheus(inf_mismatch).empty());
  // le must ascend.
  const std::string le_disorder =
      "# TYPE midrr_h histogram\n"
      "midrr_h_bucket{le=\"100\"} 1\n"
      "midrr_h_bucket{le=\"10\"} 1\n"
      "midrr_h_bucket{le=\"+Inf\"} 1\n"
      "midrr_h_sum 1\n"
      "midrr_h_count 1\n";
  EXPECT_FALSE(lint_prometheus(le_disorder).empty());
}

}  // namespace
