// Theorem 1: with interface preferences, no causal scheduler can compute
// the relative finishing order of head-of-line packets, because the order
// depends on FUTURE arrivals.  We reproduce the paper's Section 2.1
// counterexample on the fluid (ideal bit-by-bit) system.
//
// Setup: flows a (willing if1+if2) and b (willing if2 only), equal weights,
// both interfaces 1 Mb/s.  Head packets at t=0: p_a = L/2 bits, p_b = L.
//   Scenario 1 (no future arrivals): each flow runs at 1 Mb/s;
//     p_b (L bits at 1 Mb/s) finishes BEFORE p_a would if a stayed at its
//     max-min rate... in the paper's fluid argument f_a = L, f_b = L/2 in
//     virtual time: b finishes first.
//   Scenario 2 (three flows arrive on if2 right after t=0): flow a keeps
//     1 Mb/s via if1, but b drops to 1/4 Mb/s; now p_a finishes first.
#include <gtest/gtest.h>

#include "fairness/fluid.hpp"

namespace midrr::fair {
namespace {

constexpr double kLinkBps = 1e6;
constexpr std::uint64_t kL = 125'000;  // 1 Mbit in bytes

TEST(Theorem1, ScenarioOneBFinishesFirst) {
  FluidSystem fluid({kLinkBps, kLinkBps});
  const auto a = fluid.add_flow(1.0, {true, true});
  const auto b = fluid.add_flow(1.0, {false, true});
  fluid.add_arrival(a, 0, kL / 2);
  fluid.add_arrival(b, 0, kL);
  fluid.run_until(100 * kSecond);
  ASSERT_TRUE(fluid.drained_at(a).has_value());
  ASSERT_TRUE(fluid.drained_at(b).has_value());
  // a has L/2 bits: at >= 1 Mb/s it drains in <= 0.5 s; b needs 1 s.
  EXPECT_LT(*fluid.drained_at(a), *fluid.drained_at(b));
  // ...so with only these two packets a actually finishes first in wall
  // time; the paper's PGPS argument is about *virtual* finishing tags.
  // The causality flip below is what matters: b's completion time changes
  // radically with future arrivals while a's does not.
  EXPECT_NEAR(to_seconds(*fluid.drained_at(b)), 1.0, 0.01);
}

TEST(Theorem1, ScenarioTwoFutureArrivalsFlipRelativeService) {
  // Same start, but 3 new flows (if2-only) arrive just after t=0 with
  // large backlogs.
  FluidSystem fluid({kLinkBps, kLinkBps});
  const auto a = fluid.add_flow(1.0, {true, true});
  const auto b = fluid.add_flow(1.0, {false, true});
  fluid.add_arrival(a, 0, kL / 2);
  fluid.add_arrival(b, 0, kL);
  for (int k = 0; k < 3; ++k) {
    const auto f = fluid.add_flow(1.0, {false, true});
    fluid.add_arrival(f, kMillisecond, 10 * kL);
  }
  fluid.run_until(100 * kSecond);
  ASSERT_TRUE(fluid.drained_at(a).has_value());
  ASSERT_TRUE(fluid.drained_at(b).has_value());
  // Flow a is unaffected (~0.5 s); flow b now shares if2 four ways and
  // takes ~4x longer (~4 s).
  EXPECT_NEAR(to_seconds(*fluid.drained_at(a)), 0.5, 0.02);
  EXPECT_GT(to_seconds(*fluid.drained_at(b)), 3.5);
}

TEST(Theorem1, WithoutPreferencesFateSharingPreservesOrder) {
  // Fig 1(b) variant: both flows willing on both interfaces.  New arrivals
  // slow a and b proportionally (fate-sharing), so their relative order is
  // stable regardless of the future.
  for (const bool with_arrivals : {false, true}) {
    FluidSystem fluid({kLinkBps, kLinkBps});
    const auto a = fluid.add_flow(1.0, {true, true});
    const auto b = fluid.add_flow(1.0, {true, true});
    fluid.add_arrival(a, 0, kL / 2);
    fluid.add_arrival(b, 0, kL);
    if (with_arrivals) {
      for (int k = 0; k < 3; ++k) {
        const auto f = fluid.add_flow(1.0, {true, true});
        fluid.add_arrival(f, kMillisecond, 10 * kL);
      }
    }
    fluid.run_until(1000 * kSecond);
    ASSERT_TRUE(fluid.drained_at(a).has_value());
    ASSERT_TRUE(fluid.drained_at(b).has_value());
    EXPECT_LT(*fluid.drained_at(a), *fluid.drained_at(b))
        << "with_arrivals=" << with_arrivals;
  }
}

TEST(FluidSystem, MatchesMaxMinRatesInstantaneously) {
  FluidSystem fluid({3e6, 10e6});
  const auto a = fluid.add_flow(1.0, {true, false});
  const auto b = fluid.add_flow(2.0, {true, true});
  const auto c = fluid.add_flow(1.0, {false, true});
  fluid.add_arrival(a, 0, 100'000'000);
  fluid.add_arrival(b, 0, 100'000'000);
  fluid.add_arrival(c, 0, 100'000'000);
  fluid.run_until(kSecond);
  EXPECT_NEAR(fluid.current_rate_bps(a), 3e6, 1e3);
  EXPECT_NEAR(fluid.current_rate_bps(b), 6.667e6, 1e4);
  EXPECT_NEAR(fluid.current_rate_bps(c), 3.333e6, 1e4);
}

TEST(FluidSystem, ServiceAccumulatesConsistently) {
  FluidSystem fluid({1e6});
  const auto a = fluid.add_flow(1.0, {true});
  fluid.add_arrival(a, 0, 250'000);  // 2 s at 1 Mb/s
  fluid.run_until(kSecond);
  EXPECT_NEAR(fluid.service_bytes(a), 125'000.0, 100.0);
  EXPECT_NEAR(fluid.backlog_bytes(a), 125'000.0, 100.0);
  fluid.run_until(5 * kSecond);
  EXPECT_NEAR(fluid.service_bytes(a), 250'000.0, 100.0);
  ASSERT_TRUE(fluid.drained_at(a).has_value());
  EXPECT_NEAR(to_seconds(*fluid.drained_at(a)), 2.0, 0.01);
}

}  // namespace
}  // namespace midrr::fair
