// Property tests (Theorem 3): for randomized problem instances
// (n, m, Pi, phi, C), miDRR's long-run empirical rates must converge to the
// weighted max-min allocation computed by the reference water-filling
// solver -- while the baselines may not.  Also checks work conservation and
// preference enforcement on every instance.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"
#include "util/rng.hpp"

namespace midrr {
namespace {

struct RandomProblem {
  Scenario scenario;
  fair::MaxMinInput input;
  std::vector<std::string> flow_names;
};

// Sparse family: each flow is pinned to one random interface, plus one
// "aggregator" flow willing on a random subset -- the generalization of the
// paper's own topologies (Fig 1, Fig 6).  Here the Theorem 3 argument is
// exact and miDRR must converge tightly to the reference allocation.
RandomProblem make_sparse_problem(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 5));
  const auto m = static_cast<std::size_t>(rng.uniform_int(2, 4));

  RandomProblem p;
  std::vector<std::string> iface_names;
  for (std::size_t j = 0; j < m; ++j) {
    const double cap = rng.uniform(1.0, 12.0);
    iface_names.push_back("if" + std::to_string(j));
    p.scenario.interface(iface_names.back(), RateProfile(mbps(cap)));
    p.input.capacities_bps.push_back(mbps(cap));
  }
  const double weight_choices[] = {0.5, 1.0, 2.0, 4.0};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> row(m, false);
    std::vector<std::string> willing;
    const auto pinned = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    row[pinned] = true;
    willing.push_back(iface_names[pinned]);
    const double w =
        weight_choices[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    p.input.weights.push_back(w);
    p.input.willing.push_back(row);
    p.flow_names.push_back("f" + std::to_string(i));
    p.scenario.backlogged_flow(p.flow_names.back(), w, willing);
  }
  // The aggregator: willing on every interface (it soaks up the leftover
  // capacity of whichever cluster is fastest).
  std::vector<bool> row(m, true);
  std::vector<std::string> willing(iface_names);
  p.input.weights.push_back(1.0);
  p.input.willing.push_back(row);
  p.flow_names.push_back("agg");
  p.scenario.backlogged_flow("agg", 1.0, willing);
  return p;
}

// Dense family: arbitrary bipartite willingness.  Here the one-bit service
// flag is only an approximation of max-min (see DESIGN.md: the flag
// equalizes *turn frequencies*, which matches rates exactly only when the
// flows an interface skips are compared against single-interface flows), so
// the assertion is correspondingly looser.
RandomProblem make_problem(std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 4));

  RandomProblem p;
  std::vector<std::string> iface_names;
  for (std::size_t j = 0; j < m; ++j) {
    const double cap = rng.uniform(1.0, 15.0);
    iface_names.push_back("if" + std::to_string(j));
    p.scenario.interface(iface_names.back(), RateProfile(mbps(cap)));
    p.input.capacities_bps.push_back(mbps(cap));
  }
  const double weight_choices[] = {0.5, 1.0, 2.0, 4.0};
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<bool> row(m, false);
    std::vector<std::string> willing;
    // Guarantee at least one interface per flow.
    const auto forced = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    for (std::size_t j = 0; j < m; ++j) {
      if (j == forced || rng.coin(0.45)) {
        row[j] = true;
        willing.push_back(iface_names[j]);
      }
    }
    const double w =
        weight_choices[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    p.input.weights.push_back(w);
    p.input.willing.push_back(row);
    const std::string name = "f" + std::to_string(i);
    p.flow_names.push_back(name);
    p.scenario.backlogged_flow(name, w, willing);
  }
  return p;
}

std::vector<double> empirical_rates_bps(const ScenarioResult& result,
                                        SimTime from, SimTime to) {
  std::vector<double> rates;
  for (const auto& f : result.flows) {
    rates.push_back(f.mean_rate_mbps(from, to) * 1e6);
  }
  return rates;
}

class MaxMinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinPropertyTest, SparseTopologyOneSidedBounds) {
  // Reproduction finding (see EXPERIMENTS.md): the one-bit service flag
  // saturates -- it records "served at least once elsewhere", not how many
  // times -- so an interface cannot skip a multi-homed flow on more than
  // roughly every other round.  When the max-min allocation requires deeper
  // suppression than that, the multi-homed flow ends ABOVE its max-min rate
  // and the pinned flows it squeezes end below theirs (but never below
  // their plain per-interface DRR share).  Hence one-sided bounds:
  //   pinned flows:  per-interface-DRR share - tol <= r_i <= maxmin + tol
  //   aggregator:                        maxmin - tol <= r_agg
  RandomProblem p = make_sparse_problem(GetParam());
  const auto reference = fair::solve_max_min(p.input);

  ScenarioRunner runner(p.scenario, Policy::kMiDrr);
  const SimTime duration = 40 * kSecond;
  const auto result = runner.run(duration);
  const auto rates = empirical_rates_bps(result, 15 * kSecond, duration);

  double capacity_scale = 0.0;
  for (double c : p.input.capacities_bps) capacity_scale += c;
  const double tol = 0.02 * capacity_scale;

  const std::size_t n = p.input.weights.size();
  const std::size_t agg = n - 1;  // last flow is the all-interface one
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LE(rates[i], reference.rates_bps[i] + tol)
        << "pinned flow " << i << " above max-min (seed " << GetParam() << ")";
    // Per-interface weighted share floor on the flow's pinned interface.
    std::size_t j = 0;
    while (!p.input.willing[i][j]) ++j;
    double weight_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (p.input.willing[k][j]) weight_sum += p.input.weights[k];
    }
    const double floor =
        p.input.weights[i] / weight_sum * p.input.capacities_bps[j];
    EXPECT_GE(rates[i], floor - tol)
        << "pinned flow " << i << " below its DRR share (seed " << GetParam()
        << ")";
  }
  EXPECT_GE(rates[agg], reference.rates_bps[agg] - tol)
      << "aggregator below max-min (seed " << GetParam() << ")";
}

TEST_P(MaxMinPropertyTest, SparseTopologyCloserToMaxMinThanBaselines) {
  // The headline comparison: miDRR's allocation is closer (L1 over
  // normalized rates) to the reference max-min than naive per-interface
  // DRR's and per-interface WFQ's.
  RandomProblem p = make_sparse_problem(GetParam());
  const auto reference = fair::solve_max_min(p.input);
  const SimTime duration = 40 * kSecond;

  const auto distance = [&](Policy policy) {
    ScenarioRunner runner(p.scenario, policy);
    const auto result = runner.run(duration);
    const auto rates = empirical_rates_bps(result, 15 * kSecond, duration);
    double d = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      d += std::abs(rates[i] - reference.rates_bps[i]) / p.input.weights[i];
    }
    return d;
  };

  double capacity_scale = 0.0;
  for (double c : p.input.capacities_bps) capacity_scale += c;
  const double slack = 0.02 * capacity_scale;

  const double d_mi = distance(Policy::kMiDrr);
  EXPECT_LE(d_mi, distance(Policy::kNaiveDrr) + slack)
      << "seed " << GetParam();
  EXPECT_LE(d_mi, distance(Policy::kPerIfaceWfq) + slack)
      << "seed " << GetParam();
}

TEST_P(MaxMinPropertyTest, DenseTopologyApproximatesReference) {
  // On dense willingness graphs the service flag is an approximation; the
  // reproduction finding (documented in EXPERIMENTS.md) is that deviations
  // stay within ~25% of a flow's reference rate while the baselines can be
  // off by an unbounded factor.
  RandomProblem p = make_problem(GetParam());
  const auto reference = fair::solve_max_min(p.input);

  ScenarioRunner runner(p.scenario, Policy::kMiDrr);
  const SimTime duration = 40 * kSecond;
  const auto result = runner.run(duration);
  const auto rates = empirical_rates_bps(result, 15 * kSecond, duration);

  double capacity_scale = 0.0;
  for (double c : p.input.capacities_bps) capacity_scale += c;

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double want = reference.rates_bps[i];
    const double tol = std::max(0.25 * want, 0.03 * capacity_scale);
    EXPECT_NEAR(rates[i], want, tol)
        << "flow " << i << " (seed " << GetParam() << ")";
  }
}

TEST_P(MaxMinPropertyTest, WorkConservationHolds) {
  RandomProblem p = make_problem(GetParam());
  ScenarioRunner runner(p.scenario, Policy::kMiDrr);
  const SimTime duration = 20 * kSecond;
  const auto result = runner.run(duration);

  // With every flow infinitely backlogged and every interface reachable by
  // at least one flow... interfaces no flow wants may idle; count only
  // wanted interfaces.
  for (std::size_t j = 0; j < result.ifaces.size(); ++j) {
    bool wanted = false;
    for (const auto& row : p.input.willing) wanted = wanted || row[j];
    if (!wanted) continue;
    const double utilization =
        to_seconds(result.ifaces[j].busy_time) / to_seconds(duration);
    EXPECT_GT(utilization, 0.99)
        << "interface " << j << " idled (seed " << GetParam() << ")";
  }
}

TEST_P(MaxMinPropertyTest, InterfacePreferencesNeverViolated) {
  RandomProblem p = make_problem(GetParam());
  ScenarioRunner runner(p.scenario, Policy::kMiDrr);
  const auto result = runner.run(10 * kSecond);
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    for (std::size_t j = 0; j < result.ifaces.size(); ++j) {
      if (!p.input.willing[i][j]) {
        EXPECT_EQ(result.flows[i].bytes_per_iface[j], 0u)
            << "flow " << i << " leaked onto interface " << j;
      }
    }
  }
}

TEST_P(MaxMinPropertyTest, MiDrrAtLeastAsFairAsNaiveDrr) {
  // The max-min allocation lexicographically dominates: miDRR's minimum
  // normalized rate must be >= naive DRR's (up to tolerance).
  RandomProblem p = make_problem(GetParam());
  const SimTime duration = 30 * kSecond;

  ScenarioRunner runner_mi(p.scenario, Policy::kMiDrr);
  const auto res_mi = runner_mi.run(duration);
  ScenarioRunner runner_nd(p.scenario, Policy::kNaiveDrr);
  const auto res_nd = runner_nd.run(duration);

  const auto min_norm = [&](const ScenarioResult& r) {
    double v = std::numeric_limits<double>::infinity();
    const auto rates = empirical_rates_bps(r, 10 * kSecond, duration);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      v = std::min(v, rates[i] / p.input.weights[i]);
    }
    return v;
  };
  double capacity_scale = 0.0;
  for (double c : p.input.capacities_bps) capacity_scale += c;
  EXPECT_GE(min_norm(res_mi), min_norm(res_nd) - 0.02 * capacity_scale)
      << "seed " << GetParam();
}

TEST_P(MaxMinPropertyTest, OracleConvergesTightlyEvenWhereFlagSaturates) {
  // The global-knowledge strawman has no one-bit limitation: it must hit
  // the reference allocation tightly on the SAME sparse instances where
  // miDRR's flag saturation shows (see SparseTopologyOneSidedBounds).
  RandomProblem p = make_sparse_problem(GetParam());
  const auto reference = fair::solve_max_min(p.input);

  ScenarioRunner runner(p.scenario, Policy::kOracle);
  const SimTime duration = 40 * kSecond;
  const auto result = runner.run(duration);
  const auto rates = empirical_rates_bps(result, 15 * kSecond, duration);

  double capacity_scale = 0.0;
  for (double c : p.input.capacities_bps) capacity_scale += c;

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double want = reference.rates_bps[i];
    const double tol = std::max(0.06 * want, 0.02 * capacity_scale);
    EXPECT_NEAR(rates[i], want, tol)
        << "flow " << i << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace midrr
