// Tests for the Figure 4 "ideal implementation": the in-network
// aggregation proxy scheduling inbound packets across last-mile paths, and
// the device-side reorder buffer.
#include <gtest/gtest.h>

#include "inbound/remote_proxy.hpp"

namespace midrr::inbound {
namespace {

SourceFactory backlogged(std::uint32_t packet = 1500,
                         std::uint64_t volume = 0) {
  return [packet, volume] {
    return std::make_unique<BackloggedSource>(SizeDistribution::fixed(packet),
                                              volume);
  };
}

TEST(ReorderBuffer, InOrderPassesThrough) {
  ReorderBuffer rb;
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto d = rb.offer(s, 100);
    EXPECT_EQ(d.delivered_bytes, 100u);
    EXPECT_FALSE(d.was_out_of_order);
  }
  EXPECT_EQ(rb.delivered_bytes(), 500u);
  EXPECT_EQ(rb.buffered_bytes(), 0u);
  EXPECT_EQ(rb.max_buffered_bytes(), 0u);
}

TEST(ReorderBuffer, GapBuffersThenFlushes) {
  ReorderBuffer rb;
  EXPECT_EQ(rb.offer(1, 100).delivered_bytes, 0u);
  EXPECT_EQ(rb.offer(2, 100).delivered_bytes, 0u);
  EXPECT_EQ(rb.buffered_bytes(), 200u);
  EXPECT_EQ(rb.out_of_order_arrivals(), 2u);
  const auto d = rb.offer(0, 100);
  EXPECT_EQ(d.delivered_bytes, 300u) << "gap fill releases the whole run";
  EXPECT_EQ(rb.buffered_bytes(), 0u);
  EXPECT_EQ(rb.next_expected(), 3u);
  EXPECT_EQ(rb.max_buffered_bytes(), 200u);
}

TEST(ReorderBuffer, DuplicatesDropped) {
  ReorderBuffer rb;
  rb.offer(0, 100);
  EXPECT_TRUE(rb.offer(0, 100).duplicate);
  rb.offer(2, 100);
  EXPECT_TRUE(rb.offer(2, 100).duplicate);
  EXPECT_EQ(rb.duplicates(), 2u);
  EXPECT_EQ(rb.buffered_bytes(), 100u);
}

TEST(ReorderBuffer, RejectsZeroBytes) {
  ReorderBuffer rb;
  EXPECT_THROW(rb.offer(0, 0), PreconditionError);
}

TEST(RemoteProxy, SinglePathDelivery) {
  RemoteProxy proxy({{"wifi", RateProfile(mbps(8)), 5 * kMillisecond}},
                    {{"dl", 1.0, {"wifi"}, backlogged()}});
  const auto result = proxy.run(20 * kSecond);
  EXPECT_NEAR(result.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              8.0, 0.4);
  EXPECT_EQ(result.flows[0].out_of_order_arrivals, 0u)
      << "a single path cannot reorder";
}

TEST(RemoteProxy, AggregatesTwoPathsWithEqualLatency) {
  RemoteProxy proxy({{"wifi", RateProfile(mbps(6)), 10 * kMillisecond},
                     {"lte", RateProfile(mbps(3)), 10 * kMillisecond}},
                    {{"dl", 1.0, {"wifi", "lte"}, backlogged()}});
  const auto result = proxy.run(20 * kSecond);
  EXPECT_NEAR(result.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              9.0, 0.5);
  EXPECT_GT(result.flows[0].bytes_per_path[0], 0u);
  EXPECT_GT(result.flows[0].bytes_per_path[1], 0u);
}

TEST(RemoteProxy, LatencySkewCostsReorderBuffer) {
  const auto run_with_skew = [](SimDuration lte_latency) {
    RemoteProxy proxy({{"wifi", RateProfile(mbps(6)), 5 * kMillisecond},
                       {"lte", RateProfile(mbps(6)), lte_latency}},
                      {{"dl", 1.0, {"wifi", "lte"}, backlogged()}});
    return proxy.run(20 * kSecond);
  };
  const auto balanced = run_with_skew(5 * kMillisecond);
  const auto skewed = run_with_skew(80 * kMillisecond);
  // Both aggregate ~12 Mb/s...
  EXPECT_NEAR(balanced.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              12.0, 0.6);
  EXPECT_NEAR(skewed.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              12.0, 0.6);
  // ...but latency skew pays in device memory.
  EXPECT_GT(skewed.flows[0].max_reorder_buffer_bytes,
            4 * balanced.flows[0].max_reorder_buffer_bytes);
}

TEST(RemoteProxy, Fig1cFairnessOnTheDownlink) {
  // The whole point of Fig 4: the inbound direction gets the same max-min
  // guarantees as the outbound bridge.
  RemoteProxy proxy({{"if1", RateProfile(mbps(1)), kMillisecond},
                     {"if2", RateProfile(mbps(1)), kMillisecond}},
                    {{"a", 1.0, {"if1", "if2"}, backlogged()},
                     {"b", 1.0, {"if2"}, backlogged()}});
  const auto result = proxy.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("a").mean_goodput_mbps(10 * kSecond,
                                                       30 * kSecond),
              1.0, 0.07);
  EXPECT_NEAR(result.flow_named("b").mean_goodput_mbps(10 * kSecond,
                                                       30 * kSecond),
              1.0, 0.07);
}

TEST(RemoteProxy, WeightedSharingOnSharedPath) {
  RemoteProxy proxy({{"if1", RateProfile(mbps(3)), kMillisecond}},
                    {{"heavy", 2.0, {"if1"}, backlogged()},
                     {"light", 1.0, {"if1"}, backlogged()}});
  const auto result = proxy.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("heavy").mean_goodput_mbps(10 * kSecond,
                                                           30 * kSecond),
              2.0, 0.15);
  EXPECT_NEAR(result.flow_named("light").mean_goodput_mbps(10 * kSecond,
                                                           30 * kSecond),
              1.0, 0.10);
}

TEST(RemoteProxy, CbrFlowUnharmedByBulkAggregation) {
  RemoteProxy proxy(
      {{"if1", RateProfile(mbps(5)), kMillisecond},
       {"if2", RateProfile(mbps(5)), 20 * kMillisecond}},
      {{"bulk", 1.0, {"if1", "if2"}, backlogged()},
       {"voip",
        1.0,
        {"if1"},
        [] { return std::make_unique<CbrSource>(mbps(0.2), 200); }}});
  const auto result = proxy.run(20 * kSecond);
  EXPECT_NEAR(result.flow_named("voip").mean_goodput_mbps(5 * kSecond,
                                                          20 * kSecond),
              0.2, 0.03);
  EXPECT_NEAR(result.flow_named("bulk").mean_goodput_mbps(5 * kSecond,
                                                          20 * kSecond),
              9.8, 0.5);
}

}  // namespace
}  // namespace midrr::inbound
