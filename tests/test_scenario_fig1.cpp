// Integration: the paper's canonical Figure 1 examples run end-to-end on
// the discrete-event simulator under each policy.
//
// Fig 1(c): flows a (willing: if1, if2) and b (willing: if2 only), equal
// weights, both interfaces 1 Mb/s.
//   * per-interface WFQ / naive DRR: a -> 1.5 Mb/s, b -> 0.5 Mb/s (wrong)
//   * miDRR:                         a -> 1.0 Mb/s, b -> 1.0 Mb/s (max-min)
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace midrr {
namespace {

Scenario fig1c_scenario() {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.interface("if2", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1", "if2"});
  sc.backlogged_flow("b", 1.0, {"if2"});
  return sc;
}

double steady_rate(const ScenarioResult& result, const std::string& flow,
                   SimTime duration) {
  // Average over the second half of the run (past the convergence phase).
  return result.flow_named(flow).mean_rate_mbps(duration / 2, duration);
}

TEST(Fig1c, MiDrrGivesMaxMinFairAllocation) {
  const Scenario sc = fig1c_scenario();
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const SimTime duration = 30 * kSecond;
  const auto result = runner.run(duration);
  EXPECT_NEAR(steady_rate(result, "a", duration), 1.0, 0.05);
  EXPECT_NEAR(steady_rate(result, "b", duration), 1.0, 0.05);
}

TEST(Fig1c, NaiveDrrFailsLikeWfq) {
  const Scenario sc = fig1c_scenario();
  ScenarioRunner runner(sc, Policy::kNaiveDrr);
  const SimTime duration = 30 * kSecond;
  const auto result = runner.run(duration);
  EXPECT_NEAR(steady_rate(result, "a", duration), 1.5, 0.05);
  EXPECT_NEAR(steady_rate(result, "b", duration), 0.5, 0.05);
}

TEST(Fig1c, PerInterfaceWfqFails) {
  const Scenario sc = fig1c_scenario();
  ScenarioRunner runner(sc, Policy::kPerIfaceWfq);
  const SimTime duration = 30 * kSecond;
  const auto result = runner.run(duration);
  EXPECT_NEAR(steady_rate(result, "a", duration), 1.5, 0.05);
  EXPECT_NEAR(steady_rate(result, "b", duration), 0.5, 0.05);
}

TEST(Fig1c, MiDrrSteersFlowsToDedicatedInterfaces) {
  // In the max-min solution, interface 1 carries (essentially) only flow a
  // and interface 2 only flow b.
  const Scenario sc = fig1c_scenario();
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(30 * kSecond);
  const auto& a = result.flow_named("a");
  const auto& b = result.flow_named("b");
  // b can only ever use if2.
  EXPECT_EQ(b.bytes_per_iface[0], 0u);
  // a gets the overwhelming majority of its service from if1.
  EXPECT_GT(a.bytes_per_iface[0], 9 * a.bytes_per_iface[1]);
}

TEST(Fig1b, NoPreferencesAllPoliciesFair) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.interface("if2", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1", "if2"});
  sc.backlogged_flow("b", 1.0, {"if1", "if2"});
  const SimTime duration = 30 * kSecond;
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq}) {
    ScenarioRunner runner(sc, policy);
    const auto result = runner.run(duration);
    EXPECT_NEAR(steady_rate(result, "a", duration), 1.0, 0.06)
        << to_string(policy);
    EXPECT_NEAR(steady_rate(result, "b", duration), 1.0, 0.06)
        << to_string(policy);
  }
}

TEST(Fig1a, SingleInterfaceEqualSplitAllPolicies) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(2)));
  sc.backlogged_flow("a", 1.0, {"if1"});
  sc.backlogged_flow("b", 1.0, {"if1"});
  const SimTime duration = 20 * kSecond;
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq}) {
    ScenarioRunner runner(sc, policy);
    const auto result = runner.run(duration);
    EXPECT_NEAR(steady_rate(result, "a", duration), 1.0, 0.06)
        << to_string(policy);
    EXPECT_NEAR(steady_rate(result, "b", duration), 1.0, 0.06)
        << to_string(policy);
  }
}

TEST(Fig1c, InfeasibleRatePreferenceNeverWastesCapacity) {
  // Section 1's follow-up: phi_b = 2 phi_a but b is confined to if2.
  // miDRR must give b its 1 Mb/s cap and hand ALL leftover to a (1 Mb/s),
  // not throttle a to 0.5 to honor the 2:1 ratio.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.interface("if2", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1", "if2"});
  sc.backlogged_flow("b", 2.0, {"if2"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const SimTime duration = 30 * kSecond;
  const auto result = runner.run(duration);
  EXPECT_NEAR(steady_rate(result, "a", duration), 1.0, 0.05);
  EXPECT_NEAR(steady_rate(result, "b", duration), 1.0, 0.05);
}

TEST(WorkConservation, TotalThroughputMatchesCapacityWhenSaturated) {
  const Scenario sc = fig1c_scenario();
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq,
        Policy::kRoundRobin}) {
    ScenarioRunner runner(sc, policy);
    const SimTime duration = 20 * kSecond;
    const auto result = runner.run(duration);
    std::uint64_t total_bytes = 0;
    for (const auto& iface : result.ifaces) total_bytes += iface.bytes_sent;
    const double total_mbps =
        static_cast<double>(total_bytes) * 8.0 / to_seconds(duration) / 1e6;
    EXPECT_NEAR(total_mbps, 2.0, 0.02) << to_string(policy);
  }
}

}  // namespace
}  // namespace midrr
