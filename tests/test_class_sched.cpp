// Flow-class aggregation tests: ClassTable interning, the hierarchical
// (two-level) miDRR scheduler, and the property that pins its correctness --
// with every class a singleton, HierMiDrrScheduler is packet-for-packet
// identical to the flat MiDrrScheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "flow/class_table.hpp"
#include "sched/hier_midrr.hpp"
#include "sched/midrr.hpp"

namespace midrr {
namespace {

Packet pkt(FlowId flow, std::uint32_t size, std::uint64_t seq = 0) {
  return Packet(flow, size, seq);
}

/// Deterministic 64-bit LCG (tests must not depend on platform randomness).
struct Lcg {
  std::uint64_t state;
  std::uint32_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  }
  std::uint32_t below(std::uint32_t bound) { return next() % bound; }
};

// --- ClassTable -----------------------------------------------------------

TEST(ClassTable, InternDeduplicatesIdenticalKeys) {
  ClassTable t;
  ClassKey a{.weight = 2.0, .willing = {0, 1}, .queue_capacity_bytes = 4096};
  ClassKey b = a;
  EXPECT_EQ(t.intern(a), t.intern(b));
  EXPECT_EQ(t.slots(), 1u);
}

TEST(ClassTable, DistinctKeysGetDistinctIds) {
  ClassTable t;
  const ClassId base =
      t.intern({.weight = 1.0, .willing = {0}, .queue_capacity_bytes = 0});
  EXPECT_NE(base, t.intern({.weight = 2.0, .willing = {0}}));
  EXPECT_NE(base, t.intern({.weight = 1.0, .willing = {0, 1}}));
  EXPECT_NE(base, t.intern({.weight = 1.0,
                            .willing = {0},
                            .queue_capacity_bytes = 1024}));
  EXPECT_EQ(t.slots(), 4u);
}

TEST(ClassTable, NormalizeKeySortsAndDedups) {
  ClassKey key{.weight = 1.0, .willing = {3, 1, 3, 0, 1}};
  normalize_key(key);
  EXPECT_EQ(key.willing, (std::vector<IfaceId>{0, 1, 3}));
}

TEST(ClassTable, FindWithoutCreating) {
  ClassTable t;
  ClassKey key{.weight = 1.0, .willing = {0}};
  EXPECT_EQ(t.find(key), kInvalidClass);
  const ClassId cls = t.intern(key);
  EXPECT_EQ(t.find(key), cls);
  EXPECT_EQ(t.slots(), 1u);
}

TEST(ClassTable, MembershipDrivesLiveCount) {
  ClassTable t;
  const ClassId a = t.intern({.weight = 1.0, .willing = {0}});
  const ClassId b = t.intern({.weight = 2.0, .willing = {0}});
  EXPECT_EQ(t.live_count(), 0u);
  t.add_member(a);
  t.add_member(a);
  t.add_member(b);
  EXPECT_EQ(t.live_count(), 2u);
  EXPECT_EQ(t.member_count(a), 2u);
  t.remove_member(a);
  t.remove_member(a);
  EXPECT_EQ(t.live_count(), 1u);
  EXPECT_EQ(t.live(), (std::vector<ClassId>{b}));
}

TEST(ClassTable, EmptiedClassRevivesUnderSameId) {
  ClassTable t;
  ClassKey key{.weight = 3.0, .willing = {1, 2}};
  const ClassId cls = t.intern(key);
  t.add_member(cls);
  t.remove_member(cls);
  EXPECT_EQ(t.member_count(cls), 0u);
  // Same key interns to the SAME id: per-class arenas stay valid.
  EXPECT_EQ(t.intern(key), cls);
  EXPECT_EQ(t.slots(), 1u);
}

TEST(ClassTable, BulkAddMember) {
  ClassTable t;
  const ClassId cls = t.intern({.weight = 1.0, .willing = {0}});
  t.add_member(cls, 1000);
  EXPECT_EQ(t.member_count(cls), 1000u);
  EXPECT_EQ(t.live_count(), 1u);
}

// --- Scheduler-level interning --------------------------------------------

TEST(HierMiDrr, FlowsSharingKeyShareOneClass) {
  HierMiDrrScheduler s;
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  std::vector<FlowId> flows;
  for (int i = 0; i < 100; ++i) {
    flows.push_back(s.add_flow({.weight = 2.0, .willing = {j0, j1}}));
  }
  EXPECT_EQ(s.class_count(), 1u);
  EXPECT_EQ(s.class_members(s.class_of(flows[0])), 100u);
  for (const FlowId f : flows) {
    EXPECT_EQ(s.class_of(f), s.class_of(flows[0]));
  }
  // A different weight opens a second class.
  const FlowId odd = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  EXPECT_EQ(s.class_count(), 2u);
  EXPECT_NE(s.class_of(odd), s.class_of(flows[0]));
}

TEST(HierMiDrr, SchedulerClassRevivesAcrossChurn) {
  HierMiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowSpec spec{.weight = 4.0, .willing = {j}};
  const FlowId a = s.add_flow(spec);
  const ClassId cls = s.class_of(a);
  s.remove_flow(a);
  EXPECT_EQ(s.class_count(), 0u);
  const FlowId b = s.add_flow(spec);
  EXPECT_EQ(s.class_of(b), cls);
  EXPECT_EQ(s.class_slots(), 1u);
}

TEST(HierMiDrr, ReweightMovesFlowBetweenClasses) {
  HierMiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  ASSERT_EQ(s.class_of(a), s.class_of(b));
  s.enqueue(pkt(b, 900), 0);

  s.set_weight(b, 5.0);
  EXPECT_NE(s.class_of(a), s.class_of(b));
  EXPECT_EQ(s.class_count(), 2u);
  // The queue survived the move: the packet still drains.
  const auto p = s.dequeue(j, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, b);

  // Moving back rejoins the original class.
  s.set_weight(b, 1.0);
  EXPECT_EQ(s.class_of(a), s.class_of(b));
}

TEST(HierMiDrr, WillingChangeMovesFlowBetweenClasses) {
  HierMiDrrScheduler s;
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  ASSERT_EQ(s.class_of(a), s.class_of(b));
  s.enqueue(pkt(b, 500), 0);
  s.set_willing(b, j1, false);
  EXPECT_NE(s.class_of(a), s.class_of(b));
  // b now drains only through j0.
  EXPECT_FALSE(s.dequeue(j1, 0).has_value());
  const auto p = s.dequeue(j0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, b);
}

// --- Intra-class fairness -------------------------------------------------

TEST(HierMiDrr, MembersOfOneClassShareEqually) {
  HierMiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId f0 = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId f1 = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId f2 = s.add_flow({.weight = 1.0, .willing = {j}});
  for (std::uint64_t i = 0; i < 30; ++i) {
    s.enqueue(pkt(f0, 1000, i), 0);
    s.enqueue(pkt(f1, 1000, i), 0);
    s.enqueue(pkt(f2, 1000, i), 0);
  }
  for (int i = 0; i < 30; ++i) s.dequeue(j, 0);
  // 30 packets across 3 equal members of one class: 10 each, up to DRR's
  // one-quantum slack.
  for (const FlowId f : {f0, f1, f2}) {
    EXPECT_NEAR(static_cast<double>(s.sent_bytes(f)), 10000.0, 2000.0);
  }
  EXPECT_EQ(s.sent_bytes(f0) + s.sent_bytes(f1) + s.sent_bytes(f2), 30000u);
  EXPECT_EQ(s.class_count(), 1u);
}

TEST(HierMiDrr, ClassQuantumScalesWithMembersAndWeight) {
  // Class A: weight 2, two members.  Class B: weight 1, one member.  A's
  // class quantum is 2 * 2 = 4x B's, so bytes split 4:1 between the
  // classes and each A member gets 2x the B member (the per-member phi).
  HierMiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a0 = s.add_flow({.weight = 2.0, .willing = {j}});
  const FlowId a1 = s.add_flow({.weight = 2.0, .willing = {j}});
  const FlowId b0 = s.add_flow({.weight = 1.0, .willing = {j}});
  for (std::uint64_t i = 0; i < 400; ++i) {
    s.enqueue(pkt(a0, 1500, i), 0);
    s.enqueue(pkt(a1, 1500, i), 0);
    s.enqueue(pkt(b0, 1500, i), 0);
  }
  std::uint64_t drained = 0;
  while (drained < 500 * 1500) {
    const auto p = s.dequeue(j, 0);
    ASSERT_TRUE(p.has_value());
    drained += p->size_bytes;
  }
  const double a_bytes =
      static_cast<double>(s.sent_bytes(a0) + s.sent_bytes(a1));
  const double b_bytes = static_cast<double>(s.sent_bytes(b0));
  EXPECT_NEAR(a_bytes / b_bytes, 4.0, 0.25);
  EXPECT_NEAR(static_cast<double>(s.sent_bytes(a0)) /
                  static_cast<double>(s.sent_bytes(a1)),
              1.0, 0.1);
}

TEST(HierMiDrr, ServiceFlagsSuppressCrossInterfaceDoubleService) {
  // Two interfaces, two classes.  Serving a class on one interface sets its
  // flag at the other, where the Algorithm 3.2 walk then skips it once.
  HierMiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 2.0, .willing = {j0, j1}});
  for (std::uint64_t i = 0; i < 10; ++i) {
    s.enqueue(pkt(a, 1000, i), 0);
    s.enqueue(pkt(b, 1000, i), 0);
  }
  ASSERT_TRUE(s.dequeue(j0, 0).has_value());
  const ClassId served = s.class_of(s.dequeue(j0, 0)->flow);
  (void)served;
  // At least one class now carries a service flag on j1.
  bool any_flag = false;
  for (ClassId c = 0; c < s.class_slots(); ++c) {
    any_flag = any_flag || s.class_service_flag(c, j1);
  }
  EXPECT_TRUE(any_flag);
  const std::uint64_t skipped_before = s.flags_skipped();
  for (int i = 0; i < 4; ++i) s.dequeue(j1, 0);
  EXPECT_GT(s.flags_skipped(), skipped_before);
}

// --- Mid-drain member churn ----------------------------------------------

TEST(HierMiDrr, MemberChurnMidDrainConservesPackets) {
  HierMiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  std::vector<FlowId> flows;
  for (int i = 0; i < 3; ++i) {
    flows.push_back(s.add_flow({.weight = 1.0, .willing = {j}}));
  }
  std::uint64_t offered = 0;
  for (const FlowId f : flows) {
    for (std::uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(s.enqueue(pkt(f, 500, i), 0).accepted);
      ++offered;
    }
  }
  std::uint64_t dequeued = 0;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(s.dequeue(j, 0).has_value());
    ++dequeued;
  }
  // Remove one member mid-drain; its remaining backlog leaves with it.
  const FlowId victim = flows[1];
  const std::uint64_t discarded = s.backlog_packets(victim);
  s.remove_flow(victim);
  EXPECT_EQ(s.class_members(s.class_of(flows[0])), 2u);
  while (const auto p = s.dequeue(j, 0)) ++dequeued;
  // Conservation: every offered packet was either delivered or discarded
  // with the removed member.
  EXPECT_EQ(offered, dequeued + discarded);
  EXPECT_FALSE(s.has_eligible(j));
  // Last member out retires the class.
  s.remove_flow(flows[0]);
  s.remove_flow(flows[2]);
  EXPECT_EQ(s.class_count(), 0u);
}

// --- The equivalence property --------------------------------------------

/// Drives a flat MiDrrScheduler and a HierMiDrrScheduler through one
/// identical randomized schedule of arrivals, dequeues, and flow churn.
/// Every flow gets a UNIQUE queue bound, which makes every class a
/// singleton without changing scheduling -- the hierarchical schedule must
/// then be packet-for-packet identical to the flat one.
void run_equivalence_trace(std::uint64_t seed, int iterations) {
  Lcg rng{seed};
  MiDrrScheduler flat(1500);
  HierMiDrrScheduler hier(1500);
  const int kIfaces = 3;
  for (int j = 0; j < kIfaces; ++j) {
    flat.add_interface();
    hier.add_interface();
  }
  std::vector<FlowId> live;
  std::uint64_t next_uid = 0;
  std::uint64_t seq = 0;

  const auto add_one = [&] {
    FlowSpec spec;
    const double weights[] = {0.5, 1.0, 2.0, 4.0};
    spec.weight = weights[rng.below(4)];
    const std::uint32_t mask = 1 + rng.below((1u << kIfaces) - 1);
    for (IfaceId j = 0; j < kIfaces; ++j) {
      if ((mask >> j) & 1u) spec.willing.push_back(j);
    }
    spec.queue_capacity_bytes = (1u << 20) + next_uid++;  // unique => singleton
    const FlowId ff = flat.add_flow(spec);
    const FlowId hf = hier.add_flow(spec);
    ASSERT_EQ(ff, hf);
    live.push_back(ff);
  };

  for (int i = 0; i < 6; ++i) add_one();

  for (int i = 0; i < iterations; ++i) {
    const std::uint32_t dice = rng.below(100);
    if (dice < 60 && !live.empty()) {
      const FlowId f = live[rng.below(static_cast<std::uint32_t>(live.size()))];
      const std::uint32_t size = 64 + rng.below(2900);
      Packet a = pkt(f, size, seq);
      Packet b = pkt(f, size, seq);
      ++seq;
      const auto ra = flat.enqueue(std::move(a), i);
      const auto rb = hier.enqueue(std::move(b), i);
      ASSERT_EQ(ra.accepted, rb.accepted);
      ASSERT_EQ(ra.became_backlogged, rb.became_backlogged);
    } else if (dice < 90) {
      const IfaceId j = rng.below(kIfaces);
      const auto pa = flat.dequeue(j, i);
      const auto pb = hier.dequeue(j, i);
      ASSERT_EQ(pa.has_value(), pb.has_value()) << "iface " << j << " it " << i;
      if (pa) {
        ASSERT_EQ(pa->flow, pb->flow) << "iface " << j << " it " << i;
        ASSERT_EQ(pa->seq, pb->seq);
        ASSERT_EQ(pa->size_bytes, pb->size_bytes);
      }
    } else if (dice < 95) {
      add_one();
    } else if (!live.empty()) {
      const std::uint32_t k = rng.below(static_cast<std::uint32_t>(live.size()));
      const FlowId f = live[k];
      live.erase(live.begin() + k);
      flat.remove_flow(f);
      hier.remove_flow(f);
    }
  }

  // Every class is a singleton throughout.
  for (const FlowId f : live) {
    ASSERT_EQ(hier.class_members(hier.class_of(f)), 1u);
  }

  // Drain both to empty, still in lockstep.
  bool progressed = true;
  SimTime now = iterations;
  while (progressed) {
    progressed = false;
    for (IfaceId j = 0; j < kIfaces; ++j) {
      const auto pa = flat.dequeue(j, now);
      const auto pb = hier.dequeue(j, now);
      ASSERT_EQ(pa.has_value(), pb.has_value());
      if (pa) {
        ASSERT_EQ(pa->flow, pb->flow);
        ASSERT_EQ(pa->seq, pb->seq);
        progressed = true;
      }
    }
    ++now;
  }

  // The accounting agrees too: allocation matrix, turns, flag skips.
  for (const FlowId f : live) {
    const ClassId c = hier.class_of(f);
    for (IfaceId j = 0; j < kIfaces; ++j) {
      ASSERT_EQ(flat.sent_bytes(f, j), hier.sent_bytes(f, j));
      ASSERT_EQ(flat.turns(f, j), hier.class_turns(c, j));
    }
  }
  ASSERT_EQ(flat.flags_skipped(), hier.flags_skipped());
}

TEST(HierMiDrrEquivalence, SingletonClassesMatchFlatMiDrr) {
  run_equivalence_trace(1, 4000);
}

TEST(HierMiDrrEquivalence, MoreSeeds) {
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    run_equivalence_trace(seed, 1500);
  }
}

TEST(HierMiDrrEquivalence, BurstDequeuesMatch) {
  // dequeue_burst shares select(); spot-check the batched path agrees.
  Lcg rng{42};
  MiDrrScheduler flat(1500);
  HierMiDrrScheduler hier(1500);
  const IfaceId j0 = 0;
  flat.add_interface();
  hier.add_interface();
  for (std::uint64_t i = 0; i < 4; ++i) {
    FlowSpec spec{.weight = 1.0 + static_cast<double>(i),
                  .willing = {j0},
                  .queue_capacity_bytes = (1u << 20) + i};
    flat.add_flow(spec);
    hier.add_flow(spec);
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FlowId f = rng.below(4);
    const std::uint32_t size = 100 + rng.below(1400);
    flat.enqueue(pkt(f, size, i), 0);
    hier.enqueue(pkt(f, size, i), 0);
  }
  std::vector<Packet> a;
  std::vector<Packet> b;
  while (flat.dequeue_burst(j0, 9000, 1, a) > 0) {
    hier.dequeue_burst(j0, 9000, 1, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k].flow, b[k].flow);
      ASSERT_EQ(a[k].seq, b[k].seq);
    }
  }
}

}  // namespace
}  // namespace midrr
