// Remaining coverage: queue-capacity drops end to end, the logging
// facility, and scheduler corner cases not exercised elsewhere.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"
#include "sched/midrr.hpp"
#include "sched/wfq.hpp"
#include "util/logging.hpp"

namespace midrr {
namespace {

TEST(QueueCapacity, OverdrivenSourceTailDrops) {
  // A 4 Mb/s CBR source into a 1 Mb/s link with a small queue: ~75% of the
  // traffic must tail-drop, and accounting must add up.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  ScenarioFlowSpec cbr;
  cbr.name = "push";
  cbr.ifaces = {"if1"};
  cbr.make_source = [] { return std::make_unique<CbrSource>(mbps(4), 1000); };
  sc.flow(std::move(cbr));
  RunnerOptions opt;
  opt.queue_capacity_bytes = 8000;  // eight packets
  ScenarioRunner runner(sc, Policy::kMiDrr, opt);
  const auto result = runner.run(20 * kSecond);
  const auto& flow = result.flows[0];
  EXPECT_NEAR(flow.mean_rate_mbps(5 * kSecond, 20 * kSecond), 1.0, 0.06)
      << "egress is capped by the link";
  EXPECT_GT(flow.dropped_packets, 5000u) << "~7500 drops expected over 20 s";
  EXPECT_EQ(flow.dropped_bytes, flow.dropped_packets * 1000u);
}

TEST(QueueCapacity, UnboundedByDefault) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  ScenarioFlowSpec cbr;
  cbr.name = "push";
  cbr.ifaces = {"if1"};
  cbr.make_source = [] { return std::make_unique<CbrSource>(mbps(2), 1000); };
  sc.flow(std::move(cbr));
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(5 * kSecond);
  EXPECT_EQ(result.flows[0].dropped_packets, 0u);
}

TEST(QueueCapacity, BoundedDelayFollowsFromBoundedQueue) {
  // Little's law sanity: with an 8-packet queue on a 1 Mb/s link, delay is
  // bounded by ~ queue_bytes * 8 / rate = 64 ms (plus one transmission).
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  ScenarioFlowSpec cbr;
  cbr.name = "push";
  cbr.ifaces = {"if1"};
  cbr.make_source = [] { return std::make_unique<CbrSource>(mbps(4), 1000); };
  sc.flow(std::move(cbr));
  RunnerOptions opt;
  opt.queue_capacity_bytes = 8000;
  ScenarioRunner runner(sc, Policy::kMiDrr, opt);
  const auto result = runner.run(10 * kSecond);
  EXPECT_LT(result.flows[0].delay_ns.max(),
            static_cast<double>(90 * kMillisecond));
}

TEST(Logging, LevelsFilterAndFormat) {
  std::ostringstream sink;
  auto& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  logger.set_sink(&sink);
  logger.set_level(LogLevel::kInfo);

  MIDRR_LOG_DEBUG() << "hidden " << 1;
  MIDRR_LOG_INFO() << "visible " << 42;
  MIDRR_LOG_ERROR() << "bad " << 3.5;

  logger.set_level(old_level);
  logger.set_sink(nullptr);

  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[INFO] visible 42"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] bad 3.5"), std::string::npos);
}

TEST(Logging, ToStringCoversLevels) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(WfqEdge, DrainAndRefillKeepsVirtualTimeMonotone) {
  PerIfaceWfqScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int round = 0; round < 5; ++round) {
    const double v_before = s.virtual_time(j);
    s.enqueue(Packet(a, 1000), 0);
    s.enqueue(Packet(a, 1000), 0);
    while (s.dequeue(j, 0)) {
    }
    EXPECT_GE(s.virtual_time(j), v_before);
  }
}

TEST(MiDrrEdge, SixteenInterfacesOneFlowAggregatesAll) {
  MiDrrScheduler s(1500);
  std::vector<IfaceId> ifaces;
  for (int j = 0; j < 16; ++j) ifaces.push_back(s.add_interface());
  const FlowId f = s.add_flow({.weight = 1.0, .willing = ifaces});
  for (int i = 0; i < 200; ++i) s.enqueue(Packet(f, 1500), 0);
  int served = 0;
  for (int round = 0; round < 10; ++round) {
    for (const IfaceId j : ifaces) {
      if (s.dequeue(j, 0)) ++served;
    }
  }
  EXPECT_EQ(served, 160) << "every interface must serve the sole flow";
}

TEST(MiDrrEdge, JumboAndTinyPacketsCoexist) {
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId jumbo = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId tiny = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 20; ++i) {
    s.enqueue(Packet(jumbo, 9000), 0);
    for (int k = 0; k < 225; ++k) s.enqueue(Packet(tiny, 40), 0);
  }
  std::uint64_t served = 0;
  while (s.dequeue(j, 0)) ++served;
  // Equal weights, equal byte totals -> roughly equal service in bytes.
  const double ratio = static_cast<double>(s.sent_bytes(jumbo)) /
                       static_cast<double>(s.sent_bytes(tiny));
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(MiDrrEdge, SharedDeficitModeStillCorrectOnPaperScenarios) {
  // The Table-1-literal variant must agree with the default on Fig 1(c).
  MiDrrScheduler s(1500, /*shared_deficit=*/true);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j1}});
  for (int i = 0; i < 2000; ++i) {
    s.enqueue(Packet(a, 1500), 0);
    s.enqueue(Packet(b, 1500), 0);
  }
  // Alternate the interfaces like equal-rate links would.
  for (int i = 0; i < 1000; ++i) {
    s.dequeue(j0, 0);
    s.dequeue(j1, 0);
  }
  const double ratio = static_cast<double>(s.sent_bytes(a)) /
                       static_cast<double>(s.sent_bytes(b));
  EXPECT_NEAR(ratio, 1.0, 0.05);
  EXPECT_EQ(s.sent_bytes(b, j0), 0u);
}

}  // namespace
}  // namespace midrr
