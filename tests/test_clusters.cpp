// Unit tests for cluster detection (Definition 2) and the Theorem 2
// max-min conditions checker -- both directions: solver outputs satisfy the
// conditions, and hand-crafted violations are caught.
#include <gtest/gtest.h>

#include "fairness/clusters.hpp"
#include "fairness/maxmin.hpp"

namespace midrr::fair {
namespace {

constexpr double kMbps = 1e6;

MaxMinInput fig6_input() {
  MaxMinInput in;
  in.weights = {1.0, 2.0, 1.0};
  in.capacities_bps = {3 * kMbps, 10 * kMbps};
  in.willing = {{true, false}, {false, true}, {false, true}};
  return in;
}

TEST(Clusters, Fig6PhaseOneTwoClusters) {
  const auto in = fig6_input();
  const auto solved = solve_max_min(in);
  const auto analysis = analyze_clusters(in, solved.alloc_bps);
  ASSERT_EQ(analysis.clusters.size(), 2u);
  // {a | if1} at 3 Mb/s normalized; {b, c | if2} at 3.33 Mb/s normalized.
  EXPECT_NE(analysis.flow_cluster[0], analysis.flow_cluster[1]);
  EXPECT_EQ(analysis.flow_cluster[1], analysis.flow_cluster[2]);
  EXPECT_EQ(analysis.iface_cluster[0], analysis.flow_cluster[0]);
  EXPECT_EQ(analysis.iface_cluster[1], analysis.flow_cluster[1]);
  const double r_a =
      analysis.clusters[analysis.flow_cluster[0]].normalized_rate;
  const double r_bc =
      analysis.clusters[analysis.flow_cluster[1]].normalized_rate;
  EXPECT_NEAR(r_a, 3 * kMbps, 1e4);
  EXPECT_NEAR(r_bc, 10.0 / 3.0 * kMbps, 1e4);
}

TEST(Clusters, AggregatedFlowMergesClusters) {
  // After flow a ends (Fig 6 middle phase): b uses both interfaces, so b, c,
  // if1 and if2 form a single cluster.
  MaxMinInput in;
  in.weights = {2.0, 1.0};
  in.capacities_bps = {3 * kMbps, 10 * kMbps};
  in.willing = {{true, true}, {false, true}};
  const auto solved = solve_max_min(in);
  const auto analysis = analyze_clusters(in, solved.alloc_bps);
  ASSERT_EQ(analysis.clusters.size(), 1u);
  EXPECT_EQ(analysis.clusters[0].flows.size(), 2u);
  EXPECT_EQ(analysis.clusters[0].ifaces.size(), 2u);
  EXPECT_NEAR(analysis.clusters[0].normalized_rate, 13.0 / 3.0 * kMbps, 1e4);
}

TEST(Clusters, IdleFlowHasNoCluster) {
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {5 * kMbps};
  in.willing = {{true}, {false}};
  const auto solved = solve_max_min(in);
  const auto analysis = analyze_clusters(in, solved.alloc_bps);
  ASSERT_EQ(analysis.clusters.size(), 1u);
  EXPECT_EQ(analysis.flow_cluster[1], std::numeric_limits<std::size_t>::max());
}

TEST(Theorem2, SolverOutputSatisfiesConditions) {
  const auto in = fig6_input();
  const auto solved = solve_max_min(in);
  EXPECT_EQ(check_max_min_conditions(in, solved.alloc_bps), std::nullopt);
}

TEST(Theorem2, DetectsUnequalSharingViolation) {
  // Two flows share one 2 Mb/s interface but at 1.5/0.5 -- condition 1.
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {2 * kMbps};
  in.willing = {{true}, {true}};
  const std::vector<std::vector<double>> bad = {{1.5 * kMbps}, {0.5 * kMbps}};
  const auto violation = check_max_min_conditions(in, bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("condition 1"), std::string::npos);
}

TEST(Theorem2, DetectsStarvedWillingFlowViolation) {
  // The WFQ failure of Fig 1(c): a=1.5 (0.5 of it on if2), b=0.5.
  // Flow b is willing on if2 where a is active at a higher level ->
  // condition 2... actually a and b share if2 at different levels, which is
  // condition 1; also craft a pure condition-2 case: b idle on if2 entirely.
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {1 * kMbps, 1 * kMbps};
  in.willing = {{true, true}, {false, true}};
  // a hogs both interfaces; b gets nothing despite being willing on if2.
  const std::vector<std::vector<double>> bad = {{1 * kMbps, 1 * kMbps},
                                                {0.0, 0.0}};
  const auto violation = check_max_min_conditions(in, bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("condition 2"), std::string::npos);
}

TEST(Theorem2, DetectsPreferenceViolation) {
  MaxMinInput in;
  in.weights = {1.0};
  in.capacities_bps = {1 * kMbps, 1 * kMbps};
  in.willing = {{false, true}};
  const std::vector<std::vector<double>> bad = {{0.5 * kMbps, 0.5 * kMbps}};
  const auto violation = check_max_min_conditions(in, bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("unwilling"), std::string::npos);
}

TEST(Theorem2, WeightedSharingIsNotAViolation) {
  // 2:1 sharing with 2:1 weights is exactly condition 1 in weighted form.
  MaxMinInput in;
  in.weights = {2.0, 1.0};
  in.capacities_bps = {3 * kMbps};
  in.willing = {{true}, {true}};
  const std::vector<std::vector<double>> good = {{2 * kMbps}, {1 * kMbps}};
  EXPECT_EQ(check_max_min_conditions(in, good), std::nullopt);
}

TEST(Theorem2, EmptyAllocationIsConsistent) {
  MaxMinInput in;
  in.weights = {1.0};
  in.capacities_bps = {1 * kMbps};
  in.willing = {{true}};
  const std::vector<std::vector<double>> zero = {{0.0}};
  EXPECT_EQ(check_max_min_conditions(in, zero), std::nullopt);
}

TEST(Clusters, FormatRendersNamesAndRates) {
  const auto in = fig6_input();
  const auto solved = solve_max_min(in);
  const auto analysis = analyze_clusters(in, solved.alloc_bps);
  const auto text =
      format_clusters(analysis, {"a", "b", "c"}, {"if1", "if2"});
  EXPECT_NE(text.find("{a | if1}"), std::string::npos);
  EXPECT_NE(text.find("{b,c | if2}"), std::string::npos);
}

}  // namespace
}  // namespace midrr::fair
