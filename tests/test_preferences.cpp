// Unit tests for the (Pi, phi) preference registry.
#include <gtest/gtest.h>

#include "flow/preferences.hpp"
#include "util/assert.hpp"

namespace midrr {
namespace {

TEST(Preferences, DenseIdsInOrder) {
  Preferences p;
  EXPECT_EQ(p.add_interface("wifi"), 0u);
  EXPECT_EQ(p.add_interface("lte"), 1u);
  EXPECT_EQ(p.add_flow(1.0, {0}, "netflix"), 0u);
  EXPECT_EQ(p.add_flow(1.0, {0, 1}, "dropbox"), 1u);
  EXPECT_EQ(p.flow_count(), 2u);
  EXPECT_EQ(p.iface_count(), 2u);
}

TEST(Preferences, WillingnessMatrix) {
  Preferences p;
  const auto wifi = p.add_interface("wifi");
  const auto lte = p.add_interface("lte");
  const auto f = p.add_flow(2.0, {lte}, "voip");
  EXPECT_FALSE(p.willing(f, wifi));
  EXPECT_TRUE(p.willing(f, lte));
  p.set_willing(f, wifi, true);
  EXPECT_TRUE(p.willing(f, wifi));
  EXPECT_EQ(p.ifaces_of(f), (std::vector<IfaceId>{wifi, lte}));
  EXPECT_EQ(p.flows_willing(wifi), (std::vector<FlowId>{f}));
}

TEST(Preferences, IdsNeverReused) {
  Preferences p;
  p.add_interface();
  const auto f0 = p.add_flow(1.0, {0});
  p.remove_flow(f0);
  const auto f1 = p.add_flow(1.0, {0});
  EXPECT_NE(f0, f1);
  EXPECT_FALSE(p.flow_exists(f0));
  EXPECT_TRUE(p.flow_exists(f1));
  EXPECT_EQ(p.flow_slots(), 2u);
  EXPECT_EQ(p.flow_count(), 1u);
}

TEST(Preferences, InterfaceAddedAfterFlows) {
  Preferences p;
  const auto j0 = p.add_interface();
  const auto f = p.add_flow(1.0, {j0});
  const auto j1 = p.add_interface();
  EXPECT_FALSE(p.willing(f, j1));  // willingness defaults to false
  p.set_willing(f, j1, true);
  EXPECT_TRUE(p.willing(f, j1));
}

TEST(Preferences, RemovedInterfaceIsInvisible) {
  Preferences p;
  const auto j0 = p.add_interface("a");
  const auto j1 = p.add_interface("b");
  const auto f = p.add_flow(1.0, {j0, j1});
  p.remove_interface(j0);
  EXPECT_FALSE(p.iface_exists(j0));
  EXPECT_FALSE(p.willing(f, j0));
  EXPECT_EQ(p.ifaces_of(f), (std::vector<IfaceId>{j1}));
  EXPECT_EQ(p.ifaces(), (std::vector<IfaceId>{j1}));
}

TEST(Preferences, WeightsValidated) {
  Preferences p;
  p.add_interface();
  const auto f = p.add_flow(1.5, {0});
  EXPECT_DOUBLE_EQ(p.weight(f), 1.5);
  p.set_weight(f, 3.0);
  EXPECT_DOUBLE_EQ(p.weight(f), 3.0);
  EXPECT_THROW(p.set_weight(f, 0.0), PreconditionError);
  EXPECT_THROW(p.add_flow(-2.0, {0}), PreconditionError);
}

TEST(Preferences, UnknownIdsThrow) {
  Preferences p;
  EXPECT_THROW(p.weight(3), PreconditionError);
  EXPECT_THROW(p.remove_flow(0), PreconditionError);
  EXPECT_THROW(p.remove_interface(0), PreconditionError);
  EXPECT_THROW(p.iface_name(9), PreconditionError);
  p.add_interface();
  EXPECT_THROW(p.add_flow(1.0, {5}), PreconditionError);
}

TEST(Preferences, VersionBumpsOnMutation) {
  Preferences p;
  const auto v0 = p.version();
  p.add_interface();
  EXPECT_GT(p.version(), v0);
  const auto v1 = p.version();
  const auto f = p.add_flow(1.0, {0});
  EXPECT_GT(p.version(), v1);
  const auto v2 = p.version();
  p.set_willing(f, 0, false);
  EXPECT_GT(p.version(), v2);
}

TEST(Preferences, DefaultNamesGenerated) {
  Preferences p;
  p.add_interface();
  p.add_flow(1.0, {0});
  EXPECT_EQ(p.iface_name(0), "iface0");
  EXPECT_EQ(p.flow_name(0), "flow0");
}

TEST(Preferences, EmptyWillingRowAllowed) {
  // A flow unwilling to use any interface is legal; it just never gets
  // scheduled (the paper's model does not forbid it).
  Preferences p;
  p.add_interface();
  const auto f = p.add_flow(1.0, {});
  EXPECT_TRUE(p.ifaces_of(f).empty());
}

}  // namespace
}  // namespace midrr
