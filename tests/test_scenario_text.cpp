// Tests for the scenario text format (src/core/scenario_text.hpp) and its
// unit parsers.
#include <gtest/gtest.h>

#include "core/scenario_text.hpp"

namespace midrr {
namespace {

TEST(UnitParsing, Rates) {
  EXPECT_DOUBLE_EQ(parse_rate_bps("10mbps"), 10e6);
  EXPECT_DOUBLE_EQ(parse_rate_bps("500kbps"), 500e3);
  EXPECT_DOUBLE_EQ(parse_rate_bps("2gbps"), 2e9);
  EXPECT_DOUBLE_EQ(parse_rate_bps("1234"), 1234.0);
  EXPECT_DOUBLE_EQ(parse_rate_bps(" 3.5Mbps "), 3.5e6);
  EXPECT_DOUBLE_EQ(parse_rate_bps("100bps"), 100.0);
  EXPECT_THROW(parse_rate_bps("fast"), ScenarioParseError);
  EXPECT_THROW(parse_rate_bps("10 mbps"), ScenarioParseError);
}

TEST(UnitParsing, Durations) {
  EXPECT_EQ(parse_duration_ns("90s"), 90 * kSecond);
  EXPECT_EQ(parse_duration_ns("250ms"), 250 * kMillisecond);
  EXPECT_EQ(parse_duration_ns("2m"), 120 * kSecond);
  EXPECT_EQ(parse_duration_ns("1h"), 3600 * kSecond);
  EXPECT_EQ(parse_duration_ns("42us"), 42 * kMicrosecond);
  EXPECT_EQ(parse_duration_ns("7ns"), 7);
  EXPECT_EQ(parse_duration_ns("1000"), 1000);
  EXPECT_THROW(parse_duration_ns("soon"), ScenarioParseError);
}

TEST(UnitParsing, Bytes) {
  EXPECT_EQ(parse_bytes("1500"), 1500u);
  EXPECT_EQ(parse_bytes("64KB"), 64000u);
  EXPECT_EQ(parse_bytes("100MB"), 100'000'000u);
  EXPECT_EQ(parse_bytes("2GB"), 2'000'000'000u);
  EXPECT_EQ(parse_bytes("40b"), 40u);
  EXPECT_THROW(parse_bytes("big"), ScenarioParseError);
}

TEST(UnitParsing, Policies) {
  EXPECT_EQ(parse_policy("midrr"), Policy::kMiDrr);
  EXPECT_EQ(parse_policy("naive-drr"), Policy::kNaiveDrr);
  EXPECT_EQ(parse_policy("WFQ"), Policy::kPerIfaceWfq);
  EXPECT_EQ(parse_policy("rr"), Policy::kRoundRobin);
  EXPECT_EQ(parse_policy("fifo"), Policy::kFifo);
  EXPECT_EQ(parse_policy("priority"), Policy::kStrictPriority);
  EXPECT_EQ(parse_policy("oracle"), Policy::kOracle);
  EXPECT_THROW(parse_policy("best"), ScenarioParseError);
}

constexpr const char* kFullScenario = R"(
# comment
[interface wifi]
rate = 0:10mbps, 20s:0, 45s:20mbps
[interface lte]
rate = 5mbps
down = 30s..40s

[flow video]
weight = 2
ifaces = wifi, lte
source = backlogged:100MB
packet = 1500
start = 5s

[flow voip]
ifaces = lte
source = cbr:96kbps
packet = 200

[flow web]
ifaces = wifi
source = poisson:1mbps
packet = bimodal:80-1500:0.3

[run]
policy = wfq
duration = 90s
quantum = 3000
clusters = 5s
seed = 7
)";

TEST(ScenarioText, ParsesFullScenario) {
  const auto parsed = parse_scenario_text(kFullScenario);
  ASSERT_EQ(parsed.scenario.interfaces().size(), 2u);
  EXPECT_EQ(parsed.scenario.interfaces()[0].name, "wifi");
  EXPECT_DOUBLE_EQ(
      parsed.scenario.interfaces()[0].profile.rate_at(10 * kSecond), 10e6);
  EXPECT_DOUBLE_EQ(
      parsed.scenario.interfaces()[0].profile.rate_at(30 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(
      parsed.scenario.interfaces()[0].profile.rate_at(50 * kSecond), 20e6);
  EXPECT_EQ(parsed.scenario.interfaces()[1].down_from, 30 * kSecond);
  EXPECT_EQ(parsed.scenario.interfaces()[1].down_until, 40 * kSecond);

  ASSERT_EQ(parsed.scenario.flows().size(), 3u);
  const auto& video = parsed.scenario.flows()[0];
  EXPECT_EQ(video.name, "video");
  EXPECT_DOUBLE_EQ(video.weight, 2.0);
  EXPECT_EQ(video.ifaces, (std::vector<std::string>{"wifi", "lte"}));
  EXPECT_EQ(video.start, 5 * kSecond);
  ASSERT_NE(video.make_source, nullptr);

  EXPECT_EQ(parsed.run.policy, Policy::kPerIfaceWfq);
  EXPECT_EQ(parsed.run.duration, 90 * kSecond);
  EXPECT_EQ(parsed.run.options.quantum_base, 3000u);
  EXPECT_EQ(parsed.run.options.cluster_interval, 5 * kSecond);
  EXPECT_EQ(parsed.run.options.seed, 7u);
}

TEST(ScenarioText, ParsedScenarioActuallyRuns) {
  auto parsed = parse_scenario_text(R"(
[interface if1]
rate = 2mbps
[flow x]
ifaces = if1
[flow y]
ifaces = if1
[run]
duration = 10s
)");
  ScenarioRunner runner(parsed.scenario, parsed.run.policy,
                        parsed.run.options);
  const auto result = runner.run(parsed.run.duration);
  EXPECT_NEAR(result.flow_named("x").mean_rate_mbps(5 * kSecond,
                                                    10 * kSecond),
              1.0, 0.1);
}

TEST(ScenarioText, DefaultsApplied) {
  const auto parsed = parse_scenario_text(
      "[interface i]\nrate = 1mbps\n[flow f]\nifaces = i\n");
  EXPECT_EQ(parsed.run.policy, Policy::kMiDrr);
  EXPECT_EQ(parsed.run.duration, 60 * kSecond);
  EXPECT_DOUBLE_EQ(parsed.scenario.flows()[0].weight, 1.0);
}

TEST(ScenarioText, ErrorsCarryLineNumbers) {
  try {
    parse_scenario_text("[interface i]\nrate = 1mbps\nbogus line\n");
    FAIL() << "expected ScenarioParseError";
  } catch (const ScenarioParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ScenarioText, RejectsBadInput) {
  EXPECT_THROW(parse_scenario_text(""), ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[flow f]\nifaces = x\n"),
               ScenarioParseError);  // no interfaces
  EXPECT_THROW(parse_scenario_text("[interface i]\n"),  // missing rate
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "[flow f]\n"),  // missing ifaces
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "color = red\n"),  // unknown key
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[widget w]\n"), ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "rate = 2mbps\n"),  // duplicate key
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("key = value\n"),  // entry before section
               ScenarioParseError);
  EXPECT_THROW(parse_scenario_text("[interface]\n"),  // unnamed
               ScenarioParseError);
}

TEST(ScenarioText, SourceKinds) {
  for (const char* source :
       {"backlogged", "backlogged:5MB", "cbr:1mbps", "cbr:1mbps:10MB",
        "poisson:2mbps", "onoff:4mbps:100ms:500ms"}) {
    const std::string text = std::string("[interface i]\nrate = 1mbps\n") +
                             "[flow f]\nifaces = i\nsource = " + source +
                             "\n";
    const auto parsed = parse_scenario_text(text);
    EXPECT_NE(parsed.scenario.flows()[0].make_source, nullptr) << source;
    EXPECT_NE(parsed.scenario.flows()[0].make_source(), nullptr) << source;
  }
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "[flow f]\nifaces = i\n"
                                   "source = warp\n"),
               ScenarioParseError);
}

TEST(ScenarioText, PacketSpecs) {
  for (const char* packet : {"1500", "uniform:100-1500", "bimodal:40-1500:0.5"}) {
    const std::string text = std::string("[interface i]\nrate = 1mbps\n") +
                             "[flow f]\nifaces = i\npacket = " + packet +
                             "\n";
    EXPECT_NO_THROW(parse_scenario_text(text)) << packet;
  }
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "[flow f]\nifaces = i\n"
                                   "packet = uniform:100\n"),
               ScenarioParseError);
}

}  // namespace
}  // namespace midrr
