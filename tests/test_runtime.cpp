// Real-time runtime: pacer and latency-histogram units, lifecycle edges,
// and the end-to-end fairness smoke -- a static 4-flow x 2-interface
// scenario drained by real worker threads must land each flow's rate
// within 10% of the weighted max-min reference from fairness/maxmin.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairness/maxmin.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/pacer.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"
#include "util/latency_histogram.hpp"

namespace midrr::rt {
namespace {

// --- TokenBucketPacer -----------------------------------------------------

TEST(Pacer, UnlimitedAlwaysGrantsDepth) {
  TokenBucketPacer pacer(4096);
  EXPECT_TRUE(pacer.unlimited());
  EXPECT_EQ(pacer.budget_bytes(0), 4096u);
  pacer.consume(1 << 20);  // overshoot is forgiven instantly
  EXPECT_EQ(pacer.budget_bytes(1), 4096u);
}

TEST(Pacer, RefillsByIntegratingTheProfile) {
  // 8 Mb/s = 1 byte per microsecond; depth 2000 bytes.
  TokenBucketPacer pacer(RateProfile(8e6), 2000);
  EXPECT_EQ(pacer.budget_bytes(0), 0u);
  EXPECT_EQ(pacer.budget_bytes(1000 * kMicrosecond), 1000u);
  pacer.consume(1000);
  EXPECT_EQ(pacer.budget_bytes(1000 * kMicrosecond), 0u);
  // Idle accrual caps at the depth.
  EXPECT_EQ(pacer.budget_bytes(kSecond), 2000u);
}

TEST(Pacer, OvershootIsPaidBackBeforeNewBudget) {
  TokenBucketPacer pacer(RateProfile(8e6), 10000);
  EXPECT_EQ(pacer.budget_bytes(1000 * kMicrosecond), 1000u);
  pacer.consume(1500);  // 500-byte overshoot (last packet didn't fit)
  EXPECT_EQ(pacer.budget_bytes(1000 * kMicrosecond), 0u);
  EXPECT_EQ(pacer.budget_bytes(1400 * kMicrosecond), 0u) << "still in debt";
  EXPECT_EQ(pacer.budget_bytes(1600 * kMicrosecond), 100u);
}

TEST(Pacer, DownLinkGrantsNothingUntilTheProfileRecovers) {
  TokenBucketPacer pacer(
      RateProfile::steps({{0, 0.0}, {kSecond, 8e6}}), 10000);
  EXPECT_EQ(pacer.budget_bytes(kSecond / 2), 0u);
  EXPECT_GT(pacer.ns_until_bytes(1, kSecond / 2), 0);
  EXPECT_EQ(pacer.budget_bytes(kSecond + 1000 * kMicrosecond), 1000u);
}

// --- Pacer clock anomalies ------------------------------------------------
// The runtime clock is steady, but restarted workers and suspended VMs can
// hand the pacer timestamps that jump either way.  The contract: a backward
// step re-anchors without minting credit, and a forward jump is clamped so
// at most one second of catch-up budget materializes.

TEST(Pacer, BackwardClockReanchorsWithoutCredit) {
  TokenBucketPacer pacer(RateProfile(8e6), 2000);  // 1 byte per microsecond
  EXPECT_EQ(pacer.budget_bytes(1000 * kMicrosecond), 1000u);
  pacer.consume(1000);
  // Time "rewinds" 500us: no budget appears, and no debt is invented.
  EXPECT_EQ(pacer.budget_bytes(500 * kMicrosecond), 0u);
  // The rewound instant is the new anchor: elapsed time is priced from
  // there, so the 500us that already paid out does not pay out again.
  EXPECT_EQ(pacer.budget_bytes(1500 * kMicrosecond), 1000u);
}

TEST(Pacer, HugeForwardJumpIsClampedToOneSecondOfCatchup) {
  // Depth deliberately larger than an hour of accrual would be, so the
  // clamp (not the bucket cap) is what bounds the grant.
  TokenBucketPacer pacer(RateProfile(8e6), 10'000'000);
  const SimTime hour = 3600 * kSecond;
  EXPECT_EQ(pacer.budget_bytes(hour), 1'000'000u)
      << "exactly one second of 8 Mb/s, not an hour of it";
}

TEST(Pacer, RateScalePricesElapsedTimeAtTheOldScale) {
  TokenBucketPacer pacer(RateProfile(8e6), 10000);
  // [0, 1000us) accrues at full rate even though the scale change is only
  // applied at t = 1000us; [1000us, 2000us) accrues at half rate.
  pacer.set_rate_scale(0.5, 1000 * kMicrosecond);
  EXPECT_EQ(pacer.budget_bytes(2000 * kMicrosecond), 1500u);
  EXPECT_DOUBLE_EQ(pacer.rate_scale(), 0.5);
  EXPECT_THROW(pacer.set_rate_scale(1.5, 0), PreconditionError);
  EXPECT_THROW(pacer.set_rate_scale(-0.1, 0), PreconditionError);
}

// --- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogram, QuantilesWithinLogBucketError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.mean_ns(), 5000.5, 1.0);
  // Bucket width is <= 12.5% of the value (64 octaves x 8 sub-buckets).
  EXPECT_NEAR(h.quantile(0.5), 5000, 5000 * 0.125 + 1);
  EXPECT_NEAR(h.quantile(0.99), 9900, 9900 * 0.125 + 1);
  EXPECT_NEAR(h.quantile(0.0), 1, 1);
  EXPECT_NEAR(h.quantile(1.0), 10000, 10000 * 0.125 + 1);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  h.record(0);
  h.record(3);
  h.record(7);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 3.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
}

TEST(LatencyHistogram, MergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(100);
  for (int i = 0; i < 100; ++i) b.record(10000);
  LatencyHistogram merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_LT(merged.quantile(0.25), 120);
  EXPECT_GT(merged.quantile(0.75), 9000);
}

// --- Runtime lifecycle edges ---------------------------------------------

TEST(Runtime, RejectsBadConfigurations) {
  RuntimeOptions bad;
  bad.workers = 0;
  EXPECT_THROW(Runtime{bad}, PreconditionError);
  bad = {};
  bad.policy = Policy::kOracle;
  EXPECT_THROW(Runtime{bad}, PreconditionError);
  RuntimeOptions ok;
  Runtime runtime(ok);
  EXPECT_THROW(runtime.start(), PreconditionError) << "no interfaces";
  EXPECT_THROW(runtime.port(0), PreconditionError) << "not started";
}

TEST(Runtime, TopologyFreezesAtControlPlaneCreation) {
  Runtime runtime(RuntimeOptions{});
  runtime.add_interface("if0");
  runtime.control();
  EXPECT_THROW(runtime.add_interface("late"), PreconditionError);
}

TEST(Runtime, StartStopIsCleanAndIdempotent) {
  RuntimeOptions options;
  options.workers = 2;
  options.shards = 2;
  Runtime runtime(options);
  runtime.add_interface("if0");
  runtime.add_interface("if1");
  runtime.start();
  EXPECT_TRUE(runtime.running());
  runtime.stop();
  EXPECT_FALSE(runtime.running());
  runtime.stop();  // second stop is a no-op
  EXPECT_THROW(runtime.start(), PreconditionError) << "no restart support";
}

TEST(Runtime, PacketsFlowEndToEnd) {
  RuntimeOptions options;
  options.workers = 2;
  Runtime runtime(options);
  runtime.add_interface("if0");
  runtime.add_interface("if1");
  RtFlowSpec spec;
  spec.willing = {0, 1};
  spec.queue_capacity_bytes = 0;  // unbounded: the offers burst in faster
                                  // than one time-sliced core can drain
  const FlowId f = runtime.control().add_flow(spec);
  runtime.start();
  IngressPort port = runtime.port(0);
  std::uint64_t accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (port.offer(f, 1000)) ++accepted;
  }
  // Unpaced interfaces: everything offered must drain promptly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (runtime.stats().dequeued < accepted &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.dequeued, accepted);
  EXPECT_EQ(stats.dequeued_bytes, accepted * 1000u);
  EXPECT_EQ(runtime.sent_bytes(f), accepted * 1000u);
  EXPECT_EQ(stats.latency_count, accepted);
  EXPECT_GT(stats.latency_p50_ns, 0.0);
  EXPECT_LE(stats.latency_p50_ns, stats.latency_p99_ns);
  EXPECT_EQ(stats.fanin_drops, 0u);
  EXPECT_EQ(stats.tail_drops, 0u);
}

TEST(Runtime, OfferToUnknownFlowIsRejectedNotFatal) {
  Runtime runtime(RuntimeOptions{});
  runtime.add_interface("if0");
  runtime.start();
  IngressPort port = runtime.port(0);
  EXPECT_FALSE(port.offer(7, 1000));
  EXPECT_EQ(port.rejected(), 1u);
  runtime.stop();
}

TEST(Runtime, RemoveFlowDropsStragglersAtFanIn) {
  // Packets sitting in an ingress ring when their flow is removed must be
  // dropped by the fan-in stage (counted), never enqueued or crashed on.
  Runtime runtime(RuntimeOptions{});
  runtime.add_interface("if0", RateProfile(8e6));  // slow: packets pile up
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId f = runtime.control().add_flow(spec);
  runtime.start();
  {
    // Scoped: ~IngressPort flushes the port's batched offered/reject
    // counters into the runtime totals before we read stats() below.
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 200; ++i) port.offer(f, 1000);
  }
  runtime.control().remove_flow(f);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.enqueued + stats.fanin_drops, stats.offered);
}

// --- End-to-end fairness against the max-min reference -------------------

TEST(RuntimeFairness, StaticScenarioWithinTenPercentOfMaxMin) {
  // 4 flows x 2 paced interfaces; the classic two-cluster instance:
  //   a: {if0}, b: {if0}, c: {if0, if1}, d: {if1}
  //   caps: if0 = 30 Mb/s, if1 = 3 Mb/s
  // Weighted max-min (all weights 1): c shifts entirely onto if0, so
  // a = b = c = 10 Mb/s and d = 3 Mb/s -- a naive per-interface split
  // would starve d or under-serve c, so this discriminates the policy.
  const double cap0 = mbps(30);
  const double cap1 = mbps(3);

  fair::MaxMinInput input;
  input.capacities_bps = {cap0, cap1};
  input.weights = {1.0, 1.0, 1.0, 1.0};
  input.willing = {{true, false}, {true, false}, {true, true}, {false, true}};
  const auto reference = fair::solve_max_min(input);

  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;  // exact paper semantics (coupled interfaces)
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(cap0));
  runtime.add_interface("if1", RateProfile(cap1));
  std::vector<FlowId> flows;
  flows.push_back(runtime.control().add_flow({.willing = {0}, .name = "a"}));
  flows.push_back(runtime.control().add_flow({.willing = {0}, .name = "b"}));
  flows.push_back(
      runtime.control().add_flow({.willing = {0, 1}, .name = "c"}));
  flows.push_back(runtime.control().add_flow({.willing = {1}, .name = "d"}));

  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();

  // Warm up until queues are backlogged and the DRR rotation is steady,
  // then measure over a fixed window.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::vector<std::uint64_t> before;
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  const SimTime t0 = runtime.now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  const SimTime t1 = runtime.now_ns();
  std::vector<double> measured_bps;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const std::uint64_t delta = runtime.sent_bytes(flows[i]) - before[i];
    measured_bps.push_back(rate_bps(delta, t1 - t0));
  }
  generator.stop();
  runtime.stop();

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double want = reference.rates_bps[i];
    EXPECT_NEAR(measured_bps[i], want, want * 0.10)
        << "flow " << i << " measured " << to_mbps(measured_bps[i])
        << " Mb/s, reference " << to_mbps(want) << " Mb/s";
  }
}

// --- Concurrency smoke (the TSan target) ----------------------------------

TEST(RuntimeStress, ChurnUnderLoadStaysConsistent) {
  // Multi-worker, multi-shard, multi-producer run with continuous
  // control-plane churn.  The assertions are bookkeeping identities; under
  // TSan this test is the race detector's main course.
  RuntimeOptions options;
  options.workers = 4;
  options.shards = 2;
  options.producers = 2;
  options.max_flows = 256;
  Runtime runtime(options);
  for (int j = 0; j < 4; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }
  std::vector<FlowId> base;
  for (int i = 0; i < 8; ++i) {
    RtFlowSpec spec;
    spec.willing = {static_cast<IfaceId>(i % 4),
                    static_cast<IfaceId>((i + 1) % 4)};
    base.push_back(runtime.control().add_flow(spec));
  }
  runtime.start();

  LoadGeneratorOptions load;
  load.producers = 2;
  load.packet_bytes = 500;
  LoadGenerator generator(runtime, load);
  generator.start();

  auto& control = runtime.control();
  std::vector<FlowId> churned;
  for (int i = 0; i < 60; ++i) {
    RtFlowSpec spec;
    spec.willing = {static_cast<IfaceId>(i % 4)};
    const FlowId f = control.add_flow(spec);
    control.set_weight(f, 1.0 + (i % 3));
    control.set_willing(f, static_cast<IfaceId>((i + 2) % 4), true);
    control.set_willing(f, static_cast<IfaceId>(i % 4), false);
    churned.push_back(f);
    if (churned.size() > 6) {
      control.remove_flow(churned.front());
      churned.erase(churned.begin());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  generator.stop();
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_GT(stats.dequeued, 0u);
  EXPECT_LE(stats.dequeued, stats.enqueued);
  EXPECT_EQ(stats.offered, generator.offered());
  EXPECT_LE(stats.enqueued + stats.fanin_drops + stats.tail_drops,
            stats.offered);
  EXPECT_EQ(stats.latency_count, stats.dequeued);
  std::uint64_t iface_total = 0;
  for (IfaceId j = 0; j < runtime.iface_count(); ++j) {
    iface_total += runtime.iface_sent_packets(j);
  }
  EXPECT_EQ(iface_total, stats.dequeued);
}

TEST(RuntimeStress, PooledPayloadChurnRecyclesEveryBuffer) {
  // The zero-allocation data path under churn: producers draw frames from
  // per-producer pools, workers drop the last reference on their own
  // threads (cross-thread recycling through the MPSC return ring), and
  // flows come and go so frames are also dropped at fan-in and on
  // shutdown.  After teardown the pools must balance to the buffer:
  // acquired == released, nothing outstanding.  Under TSan this covers
  // the pool's full concurrent surface.
  RuntimeOptions options;
  options.workers = 2;
  options.shards = 2;
  options.producers = 2;
  options.max_flows = 128;
  Runtime runtime(options);
  for (int j = 0; j < 4; ++j) {
    runtime.add_interface("if" + std::to_string(j));
  }
  std::vector<FlowId> base;
  for (int i = 0; i < 8; ++i) {
    RtFlowSpec spec;
    spec.willing = {static_cast<IfaceId>(i % 4),
                    static_cast<IfaceId>((i + 1) % 4)};
    base.push_back(runtime.control().add_flow(spec));
  }
  runtime.start();

  LoadGeneratorOptions load;
  load.producers = 2;
  load.packet_bytes = 500;
  load.payload = LoadGeneratorOptions::PayloadMode::kPooled;
  load.pool.buffer_bytes = 512;
  load.pool.slab_slots = 256;
  LoadGenerator generator(runtime, load);
  generator.start();

  auto& control = runtime.control();
  std::vector<FlowId> churned;
  for (int i = 0; i < 40; ++i) {
    RtFlowSpec spec;
    spec.willing = {static_cast<IfaceId>(i % 4)};
    churned.push_back(control.add_flow(spec));
    if (churned.size() > 4) {
      control.remove_flow(churned.front());
      churned.erase(churned.begin());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  generator.stop();
  // Unpaced interfaces: wait for the backlog to drain so every queued
  // frame has dropped its slot before we audit the books (frames still
  // queued at stop() would otherwise hold slots until ~Runtime, after the
  // generator -- and its stats -- are gone).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const RuntimeStats s = runtime.stats();
    // Dequeue is not terminal any more: the egress split (dequeued ==
    // sent + io_drops, i.e. no packets parked in a requeue stash) is part
    // of quiescence.  Under the default sim backend sent == dequeued.
    if (s.offered == s.enqueued + s.fanin_drops &&
        s.enqueued == s.dequeued + s.tail_drops &&
        s.dequeued == s.sent + s.io_drops &&
        generator.pool_stats().outstanding == 0) {
      break;
    }
    std::this_thread::yield();
  }
  runtime.stop();
  const PacketPoolStats pool = generator.pool_stats();
  EXPECT_GT(pool.acquired, 0u);
  EXPECT_EQ(pool.acquired, pool.released);
  EXPECT_EQ(pool.outstanding, 0u);
  const RuntimeStats stats = runtime.stats();
  EXPECT_GT(stats.dequeued, 0u);
  EXPECT_EQ(stats.offered, generator.offered());
}

}  // namespace
}  // namespace midrr::rt
