// Unit tests for the round-robin flow ring.
#include <gtest/gtest.h>

#include "sched/ring.hpp"
#include "util/assert.hpp"

namespace midrr {
namespace {

TEST(FlowRing, InsertIntoEmpty) {
  FlowRing r;
  EXPECT_TRUE(r.empty());
  r.insert(7);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.current(), 7u);
  EXPECT_FALSE(r.turn_open()) << "new entrant has no quantum yet";
}

TEST(FlowRing, AdvanceWraps) {
  FlowRing r;
  r.insert(1);
  r.insert(2);
  r.insert(3);
  const FlowId first = r.current();
  std::vector<FlowId> seen{first};
  for (int i = 0; i < 5; ++i) seen.push_back(r.advance());
  // Full cycle of 3 then repeat.
  EXPECT_EQ(seen[0], seen[3]);
  EXPECT_EQ(seen[1], seen[4]);
  EXPECT_EQ(seen[2], seen[5]);
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_NE(seen[1], seen[2]);
}

TEST(FlowRing, NewFlowVisitedAtEndOfRound) {
  FlowRing r;
  r.insert(1);    // current = 1
  r.advance();    // still 1 (ring of one)
  r.insert(2);    // must come after 1 in the rotation
  EXPECT_EQ(r.current(), 1u);
  EXPECT_EQ(r.advance(), 2u);
  EXPECT_EQ(r.advance(), 1u);
}

TEST(FlowRing, RemoveNonCurrentKeepsPosition) {
  FlowRing r;
  r.insert(1);
  r.insert(2);
  r.insert(3);
  const FlowId cur = r.current();
  r.open_turn();
  // Remove some non-current flow.
  const FlowId victim = (cur == 2) ? 3 : 2;
  r.remove(victim);
  EXPECT_EQ(r.current(), cur);
  EXPECT_TRUE(r.turn_open());
  EXPECT_EQ(r.size(), 2u);
}

TEST(FlowRing, RemoveCurrentClosesTurnAndMovesOn) {
  FlowRing r;
  r.insert(1);
  r.insert(2);
  r.open_turn();
  const FlowId cur = r.current();
  r.remove(cur);
  EXPECT_FALSE(r.turn_open());
  EXPECT_NE(r.current(), cur);
  EXPECT_EQ(r.size(), 1u);
}

TEST(FlowRing, RemoveLastEmptiesRing) {
  FlowRing r;
  r.insert(5);
  r.remove(5);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.turn_open());
  // Reuse after emptying works.
  r.insert(6);
  EXPECT_EQ(r.current(), 6u);
}

TEST(FlowRing, ContainsAndDuplicates) {
  FlowRing r;
  r.insert(1);
  EXPECT_TRUE(r.contains(1));
  EXPECT_FALSE(r.contains(2));
  EXPECT_THROW(r.insert(1), PreconditionError);
  EXPECT_THROW(r.remove(2), PreconditionError);
}

TEST(FlowRing, CurrentOnEmptyThrows) {
  FlowRing r;
  EXPECT_THROW(r.current(), PreconditionError);
  EXPECT_THROW(r.advance(), PreconditionError);
}

TEST(FlowRing, RemoveCurrentAtTailWrapsToHead) {
  FlowRing r;
  r.insert(1);
  r.insert(2);
  r.insert(3);
  // Walk current to the list tail, then remove it.
  FlowId cur = r.current();
  FlowId next = r.advance();
  FlowId last = r.advance();
  r.remove(last);
  // Current must be a still-present flow.
  EXPECT_TRUE(r.current() == cur || r.current() == next);
  EXPECT_EQ(r.size(), 2u);
}

}  // namespace
}  // namespace midrr
