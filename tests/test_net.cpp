// Unit tests for the wire-format layer: buffers, addresses, checksums,
// headers, frame build/parse/rewrite round trips.
#include <gtest/gtest.h>

#include "net/addr.hpp"
#include "net/bytes.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace midrr::net {
namespace {

TEST(Bytes, BigEndianRoundTrip) {
  ByteBuffer buf(15, 0);
  BufWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  BufReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, OverrunThrows) {
  ByteBuffer buf(3, 0);
  BufReader r(buf);
  r.u16();
  EXPECT_THROW(r.u16(), BufferOverrun);
  BufWriter w(buf);
  w.u16(1);
  EXPECT_THROW(w.u32(1), BufferOverrun);
  EXPECT_THROW(r.seek(4), BufferOverrun);
}

TEST(Bytes, HexDump) {
  ByteBuffer buf{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(hex_dump(buf), "de ad be ef");
  EXPECT_EQ(hex_dump(buf, 2), "de ad ... (+2 bytes)");
}

TEST(Addr, MacParseFormat) {
  const auto mac = MacAddress::parse("02:1d:72:00:00:2a");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:1d:72:00:00:2a");
  EXPECT_FALSE(mac->is_broadcast());
  EXPECT_FALSE(mac->is_multicast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::parse("02:1d:72:00:00").has_value());
  EXPECT_FALSE(MacAddress::parse("zz:1d:72:00:00:2a").has_value());
  EXPECT_EQ(MacAddress::local(42).to_string(), "02:1d:72:00:00:2a");
}

TEST(Addr, Ipv4ParseFormat) {
  const auto ip = Ipv4Address::parse("192.168.1.42");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.1.42");
  EXPECT_EQ(ip->value(), 0xC0A8012Au);
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(Checksum, Rfc1071Example) {
  // Classic example: words 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0x2ddf0
  // -> folded 0xddf2 -> checksum ~0xddf2 = 0x220d.
  const ByteBuffer data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthAndSplitRanges) {
  const ByteBuffer data{0x01, 0x02, 0x03};
  const auto whole = internet_checksum(data);
  ChecksumAccumulator acc;
  acc.add(std::span<const Byte>(data.data(), 1));
  acc.add(std::span<const Byte>(data.data() + 1, 2));
  EXPECT_EQ(acc.finish(), whole);
}

TEST(Checksum, ChecksummedDataFoldsToZero) {
  ByteBuffer data{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                  0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                  0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<Byte>(csum >> 8);
  data[11] = static_cast<Byte>(csum & 0xFF);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, IncrementalUpdateMatchesRecompute) {
  ByteBuffer data{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                  0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                  0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t old_csum = internet_checksum(data);
  // Change the source address 10.0.0.1 -> 172.16.5.9 and verify RFC 1624.
  const std::uint32_t old_ip = 0x0a000001;
  const std::uint32_t new_ip = 0xac100509;
  data[12] = 0xac; data[13] = 0x10; data[14] = 0x05; data[15] = 0x09;
  const std::uint16_t fresh = internet_checksum(data);
  EXPECT_EQ(checksum_update32(old_csum, old_ip, new_ip), fresh);
}

Frame make_tcp_frame(std::size_t payload = 100) {
  return FrameBuilder()
      .eth_src(MacAddress::local(1))
      .eth_dst(MacAddress::local(2))
      .ip_src(Ipv4Address(10, 0, 0, 1))
      .ip_dst(Ipv4Address(93, 184, 216, 34))
      .tcp(49152, 443, 1000)
      .payload_size(payload)
      .build();
}

TEST(Frame, BuildParsesBack) {
  const Frame frame = make_tcp_frame(64);
  const auto view = frame.parse();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip.src.to_string(), "10.0.0.1");
  EXPECT_EQ(view->ip.dst.to_string(), "93.184.216.34");
  ASSERT_TRUE(view->tcp.has_value());
  EXPECT_EQ(view->tcp->src_port, 49152);
  EXPECT_EQ(view->tcp->dst_port, 443);
  EXPECT_EQ(view->payload_length, 64u);
  EXPECT_EQ(frame.size(), EthernetHeader::kSize + 20 + 20 + 64);
}

TEST(Frame, BuildProducesValidChecksums) {
  EXPECT_TRUE(make_tcp_frame().checksums_valid());
  const Frame udp = FrameBuilder()
                        .eth_src(MacAddress::local(1))
                        .eth_dst(MacAddress::local(2))
                        .ip_src(Ipv4Address(10, 0, 0, 1))
                        .ip_dst(Ipv4Address(8, 8, 8, 8))
                        .udp(5353, 53)
                        .payload_size(33)
                        .build();
  EXPECT_TRUE(udp.checksums_valid());
}

TEST(Frame, SourceRewritePreservesChecksums) {
  Frame frame = make_tcp_frame();
  frame.rewrite_source(MacAddress::local(77), Ipv4Address(192, 168, 7, 7));
  EXPECT_TRUE(frame.checksums_valid()) << "incremental fix-up broke checksum";
  const auto view = frame.parse();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip.src.to_string(), "192.168.7.7");
  EXPECT_EQ(view->eth.src, MacAddress::local(77));
  // Destination untouched.
  EXPECT_EQ(view->ip.dst.to_string(), "93.184.216.34");
  EXPECT_EQ(view->tcp->src_port, 49152);
}

TEST(Frame, DestinationRewritePreservesChecksums) {
  Frame frame = make_tcp_frame();
  frame.rewrite_destination(MacAddress::local(5), Ipv4Address(10, 9, 9, 9));
  EXPECT_TRUE(frame.checksums_valid());
  const auto view = frame.parse();
  EXPECT_EQ(view->ip.dst.to_string(), "10.9.9.9");
  EXPECT_EQ(view->eth.dst, MacAddress::local(5));
}

TEST(Frame, UdpRewriteHandlesChecksum) {
  Frame frame = FrameBuilder()
                    .eth_src(MacAddress::local(1))
                    .eth_dst(MacAddress::local(2))
                    .ip_src(Ipv4Address(10, 0, 0, 1))
                    .ip_dst(Ipv4Address(8, 8, 4, 4))
                    .udp(1234, 53)
                    .payload_size(40)
                    .build();
  frame.rewrite_source(MacAddress::local(9), Ipv4Address(172, 16, 0, 9));
  EXPECT_TRUE(frame.checksums_valid());
}

TEST(Frame, CorruptionDetected) {
  Frame frame = make_tcp_frame();
  ByteBuffer bytes(frame.bytes().begin(), frame.bytes().end());
  bytes[EthernetHeader::kSize + 20 + 20 + 10] ^= 0xFF;  // flip payload byte
  const Frame corrupted{ByteBuffer(bytes)};
  EXPECT_FALSE(corrupted.checksums_valid());
}

TEST(Frame, TruncatedFrameThrows) {
  const Frame frame = make_tcp_frame();
  ByteBuffer bytes(frame.bytes().begin(), frame.bytes().end() - 30);
  const Frame truncated{ByteBuffer(bytes)};
  EXPECT_THROW(truncated.parse(), BufferOverrun);
}

TEST(Frame, NonIpv4ReturnsNullopt) {
  ByteBuffer bytes(EthernetHeader::kSize, 0);
  BufWriter w(bytes);
  EthernetHeader eth;
  eth.ether_type = EtherType::kArp;
  eth.write(w);
  const Frame frame{std::move(bytes)};
  EXPECT_FALSE(frame.parse().has_value());
}

TEST(Headers, Ipv4HeaderChecksumSelfTest) {
  Ipv4Header h;
  h.total_length = 40;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  h.header_checksum = h.compute_checksum();
  EXPECT_TRUE(h.checksum_valid());
  h.ttl = 63;  // mutate -> stale checksum
  EXPECT_FALSE(h.checksum_valid());
}

}  // namespace
}  // namespace midrr::net
