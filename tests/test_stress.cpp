// Randomized stress tests: throw arbitrary (but valid) operation sequences
// at every policy and check the invariants that must survive any workload:
//   * a dequeued packet's flow is always willing on that interface,
//   * per-flow FIFO order is preserved,
//   * bytes are conserved (enqueued == dequeued + backlog + dropped),
//   * has_eligible() is consistent with what dequeue() returns,
//   * churn (flow/interface add/remove, willingness flips) never corrupts
//     the scheduler.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace midrr {
namespace {

struct StressParam {
  Policy policy;
  std::uint64_t seed;
};

class SchedulerStressTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SchedulerStressTest, RandomOperationSequenceKeepsInvariants) {
  const Policy policy = static_cast<Policy>(std::get<0>(GetParam()));
  const std::uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);

  auto sched = make_scheduler(policy);

  std::vector<IfaceId> live_ifaces;
  std::vector<FlowId> live_flows;
  std::map<FlowId, std::uint64_t> next_seq;     // per-flow FIFO check
  std::map<FlowId, std::uint64_t> expect_seq;

  // Start with a couple of interfaces so flows can exist.
  for (int j = 0; j < 2; ++j) live_ifaces.push_back(sched->add_interface());

  const auto add_flow = [&] {
    std::vector<IfaceId> willing;
    for (const IfaceId j : live_ifaces) {
      if (rng.coin(0.6)) willing.push_back(j);
    }
    const FlowId f =
        sched->add_flow({.weight = rng.uniform(0.25, 4.0), .willing = willing});
    live_flows.push_back(f);
    next_seq[f] = 0;
    expect_seq[f] = 0;
  };
  for (int i = 0; i < 4; ++i) add_flow();

  std::uint64_t ops = 0;
  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.uniform_int(0, 99);
    ++ops;
    if (op < 40) {  // enqueue
      if (live_flows.empty()) continue;
      const FlowId f = live_flows[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_flows.size()) - 1))];
      const auto size =
          static_cast<std::uint32_t>(rng.uniform_int(40, 1500));
      Packet p(f, size, next_seq[f]++);
      sched->enqueue(std::move(p), step);
    } else if (op < 80) {  // dequeue
      if (live_ifaces.empty()) continue;
      const IfaceId j = live_ifaces[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ifaces.size()) - 1))];
      const bool eligible = sched->has_eligible(j);
      const auto packet = sched->dequeue(j, step);
      EXPECT_EQ(packet.has_value(), eligible)
          << "has_eligible disagreed with dequeue";
      if (packet) {
        EXPECT_TRUE(sched->preferences().willing(packet->flow, j))
            << "preference violation on " << to_string(policy);
        EXPECT_EQ(packet->seq, expect_seq[packet->flow]++)
            << "FIFO violation within flow";
      }
    } else if (op < 86) {  // add flow
      if (live_flows.size() < 24) add_flow();
    } else if (op < 90) {  // remove flow
      if (live_flows.size() <= 1) continue;
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_flows.size()) - 1));
      sched->remove_flow(live_flows[idx]);
      next_seq.erase(live_flows[idx]);
      expect_seq.erase(live_flows[idx]);
      live_flows.erase(live_flows.begin() +
                       static_cast<std::ptrdiff_t>(idx));
    } else if (op < 93) {  // add interface
      if (live_ifaces.size() < 8) {
        live_ifaces.push_back(sched->add_interface());
      }
    } else if (op < 95) {  // remove interface
      if (live_ifaces.size() <= 1) continue;
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ifaces.size()) - 1));
      sched->remove_interface(live_ifaces[idx]);
      live_ifaces.erase(live_ifaces.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    } else if (op < 98) {  // flip willingness
      if (live_flows.empty() || live_ifaces.empty()) continue;
      const FlowId f = live_flows[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_flows.size()) - 1))];
      const IfaceId j = live_ifaces[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ifaces.size()) - 1))];
      sched->set_willing(f, j, rng.coin(0.5));
    } else {  // reweight
      if (live_flows.empty()) continue;
      const FlowId f = live_flows[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_flows.size()) - 1))];
      sched->set_weight(f, rng.uniform(0.25, 4.0));
    }
  }
  EXPECT_GT(ops, 0u);

  // Byte conservation per surviving flow.
  for (const FlowId f : live_flows) {
    const auto& stats = sched->queue_stats(f);
    EXPECT_EQ(stats.enqueued_bytes,
              stats.dequeued_bytes + sched->backlog_bytes(f) +
                  stats.dropped_bytes)
        << "byte conservation broken for flow " << f;
  }

  // Drain everything still eligible; every drain must terminate.
  for (const IfaceId j : live_ifaces) {
    int guard = 0;
    while (sched->dequeue(j, 1 << 20)) {
      ASSERT_LT(++guard, 200'000) << "drain did not terminate";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedulerStressTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(Policy::kMiDrr),
                          static_cast<int>(Policy::kNaiveDrr),
                          static_cast<int>(Policy::kPerIfaceWfq),
                          static_cast<int>(Policy::kRoundRobin),
                          static_cast<int>(Policy::kFifo),
                          static_cast<int>(Policy::kStrictPriority)),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      std::string name =
          to_string(static_cast<Policy>(std::get<0>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace midrr
