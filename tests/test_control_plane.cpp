// ControlPlane + Rcu: registry/diff logic against a mock ShardApplier
// (apply-vs-publish ordering, shard coverage growth and shrink), and the
// snapshot-swap guarantee -- concurrent readers see a whole old or whole
// new configuration, never a torn mix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/control_plane.hpp"
#include "runtime/rcu.hpp"
#include "util/assert.hpp"

namespace midrr::rt {
namespace {

/// Records every mutation, interleaved with the publish version at which it
/// arrived (so ordering relative to publication is checkable).
class RecordingApplier : public ShardApplier {
 public:
  struct Op {
    std::string kind;
    std::uint32_t shard;
    FlowId flow;
    std::vector<IfaceId> willing_subset;
  };

  void shard_add_flow(std::uint32_t shard, FlowId flow, const RtFlowSpec&,
                      const std::vector<IfaceId>& willing_subset) override {
    ops.push_back({"add", shard, flow, willing_subset});
  }
  void shard_remove_flow(std::uint32_t shard, FlowId flow) override {
    ops.push_back({"remove", shard, flow, {}});
  }
  void shard_set_weight(std::uint32_t shard, FlowId flow, double) override {
    ops.push_back({"weight", shard, flow, {}});
  }
  void shard_set_willing(std::uint32_t shard, FlowId flow, IfaceId iface,
                         bool value) override {
    ops.push_back({value ? "willing+" : "willing-", shard, flow, {iface}});
  }

  std::vector<Op> ops;
};

// Topology for most tests: 4 interfaces on 2 shards (0,1,0,1).
std::vector<std::uint32_t> two_shards() { return {0, 1, 0, 1}; }

TEST(ControlPlane, AddFlowReachesEveryHostingShardWithLocalSubset) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 1, 2};  // shard 0 hosts {0, 2}, shard 1 hosts {1}
  const FlowId f = cp.add_flow(spec);
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].willing_subset, (std::vector<IfaceId>{0, 2}));
  EXPECT_EQ(applier.ops[1].shard, 1u);
  EXPECT_EQ(applier.ops[1].willing_subset, (std::vector<IfaceId>{1}));

  auto reader = cp.reader();
  const auto guard = reader.lock();
  const SnapshotFlow* entry = guard->flow(f);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->shards, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(guard->live, std::vector<FlowId>{f});
}

TEST(ControlPlane, AddAppliesBeforePublishRemovePublishesBefore) {
  // The ordering invariant, observed through the applier: at the moment
  // shard_add_flow runs the snapshot must NOT yet route to the flow; at the
  // moment shard_remove_flow runs the snapshot must ALREADY have dropped it.
  class OrderChecker : public ShardApplier {
   public:
    void shard_add_flow(std::uint32_t, FlowId flow, const RtFlowSpec&,
                        const std::vector<IfaceId>&) override {
      auto reader = cp->reader();
      EXPECT_EQ(reader.lock()->flow(flow), nullptr)
          << "flow routable before the shard knew it";
    }
    void shard_remove_flow(std::uint32_t, FlowId flow) override {
      auto reader = cp->reader();
      EXPECT_EQ(reader.lock()->flow(flow), nullptr)
          << "flow still routable after the shard forgot it";
    }
    void shard_set_weight(std::uint32_t, FlowId, double) override {}
    void shard_set_willing(std::uint32_t, FlowId, IfaceId, bool) override {}
    ControlPlane* cp = nullptr;
  };

  OrderChecker applier;
  ControlPlane cp(applier, two_shards(), 16);
  applier.cp = &cp;
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId f = cp.add_flow(spec);
  cp.remove_flow(f);
}

TEST(ControlPlane, SetWillingGrowsAndShrinksShardCoverage) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};  // shard 0 only
  const FlowId f = cp.add_flow(spec);
  applier.ops.clear();

  cp.set_willing(f, 1, true);  // first iface on shard 1: coverage grows
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 1u);
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{1});

  cp.set_willing(f, 3, true);  // second iface on shard 1: plain flip
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[1].kind, "willing+");

  cp.set_willing(f, 1, false);  // shard 1 still hosts iface 3: plain flip
  ASSERT_EQ(applier.ops.size(), 3u);
  EXPECT_EQ(applier.ops[2].kind, "willing-");

  cp.set_willing(f, 3, false);  // last iface on shard 1: coverage shrinks
  ASSERT_EQ(applier.ops.size(), 4u);
  EXPECT_EQ(applier.ops[3].kind, "remove");
  EXPECT_EQ(applier.ops[3].shard, 1u);

  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->flow(f)->shards, std::vector<std::uint32_t>{0});
  EXPECT_EQ(guard->flow(f)->willing, std::vector<IfaceId>{0});
}

TEST(ControlPlane, RedundantWillingFlipIsANoOp) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);
  const std::uint64_t v = cp.version();
  applier.ops.clear();
  cp.set_willing(f, 0, true);   // already willing
  cp.set_willing(f, 1, false);  // already not
  EXPECT_TRUE(applier.ops.empty());
  EXPECT_EQ(cp.version(), v);
}

TEST(ControlPlane, RejectsBadInputs) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 2);
  EXPECT_THROW(cp.add_flow({.weight = 0.0}), PreconditionError);
  EXPECT_THROW(cp.remove_flow(0), PreconditionError);
  RtFlowSpec bad;
  bad.willing = {9};  // unknown interface
  EXPECT_THROW(cp.add_flow(bad), PreconditionError);
  RtFlowSpec ok;
  ok.willing = {0};
  const FlowId f = cp.add_flow(ok);
  cp.add_flow(ok);
  EXPECT_THROW(cp.add_flow(ok), PreconditionError) << "arena bound";
  EXPECT_THROW(cp.set_weight(f, -1.0), PreconditionError);
  cp.remove_flow(f);
  EXPECT_THROW(cp.set_weight(f, 1.0), PreconditionError) << "dead flow";
}

TEST(ControlPlane, FlowIdsAreDenseAndNeverReused) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 8);
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId a = cp.add_flow(spec);
  const FlowId b = cp.add_flow(spec);
  cp.remove_flow(a);
  const FlowId c = cp.add_flow(spec);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1) << "removing a flow must not recycle its id";
}

TEST(ControlPlane, IfaceDownReSteersAndQuarantinesInOnePublish) {
  // Kill interface 0 under two flows: x{0, 1} survives on interface 1 (so
  // it must LEAVE shard 0), y{0} has nowhere to go (so it is quarantined:
  // still live, still holding its preferences, but routing nowhere).
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec x_spec;
  x_spec.willing = {0, 1};
  const FlowId x = cp.add_flow(x_spec);
  RtFlowSpec y_spec;
  y_spec.willing = {0};
  const FlowId y = cp.add_flow(y_spec);
  applier.ops.clear();

  cp.set_iface_down(0, true);
  EXPECT_TRUE(cp.iface_down(0));
  EXPECT_EQ(cp.quarantined_count(), 1u);
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "remove");  // x leaves shard 0
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].flow, x);
  EXPECT_EQ(applier.ops[1].kind, "remove");  // y leaves its only shard
  EXPECT_EQ(applier.ops[1].flow, y);
  {
    auto reader = cp.reader();
    const auto guard = reader.lock();
    EXPECT_EQ(guard->flow(x)->shards, std::vector<std::uint32_t>{1});
    EXPECT_FALSE(guard->flow(x)->quarantined);
    EXPECT_EQ(guard->flow(x)->willing, (std::vector<IfaceId>{0, 1}))
        << "preferences are reality-masked, not edited";
    EXPECT_TRUE(guard->flow(y)->shards.empty());
    EXPECT_TRUE(guard->flow(y)->quarantined);
    EXPECT_EQ(guard->live, (std::vector<FlowId>{x, y}))
        << "quarantined flows stay live (their offers are counted rejects)";
    ASSERT_EQ(guard->iface_down.size(), 4u);
    EXPECT_TRUE(guard->iface_down[0]);
  }

  applier.ops.clear();
  cp.set_iface_down(0, false);
  EXPECT_FALSE(cp.iface_down(0));
  EXPECT_EQ(cp.quarantined_count(), 0u);
  // Both flows are re-registered on shard 0 (with the interface-0 subset)
  // BEFORE the publish that re-opens routing to it.
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].flow, x);
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{0});
  EXPECT_EQ(applier.ops[1].kind, "add");
  EXPECT_EQ(applier.ops[1].flow, y);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->flow(x)->shards, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(guard->flow(y)->quarantined);
}

TEST(ControlPlane, IfaceDownIsIdempotentAndValidated) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};
  cp.add_flow(spec);
  EXPECT_THROW(cp.set_iface_down(9, true), PreconditionError);
  cp.set_iface_down(0, true);
  const std::uint64_t v = cp.version();
  applier.ops.clear();
  cp.set_iface_down(0, true);  // already down: no publish, no ops
  EXPECT_TRUE(applier.ops.empty());
  EXPECT_EQ(cp.version(), v);
}

TEST(ControlPlane, FlowsAddedWhileIfaceIsDownRouteAroundIt) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  cp.set_iface_down(0, true);
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId f = cp.add_flow(spec);
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 1u) << "dead interface's shard is skipped";
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->flow(f)->shards, std::vector<std::uint32_t>{1});
}

TEST(ControlPlaneSwap, ReadersNeverSeeATornConfiguration) {
  // The writer cycles (1, {0}) -> (2, {0}) -> (2, {0, 1}) -> (2, {0}) ->
  // (1, {0}), one control-plane call per step.  Every PUBLISHED state has
  // the invariant "willing {0, 1} implies weight 2"; the state (1, {0, 1})
  // never exists.  Reader threads continuously validate that whichever
  // snapshot they hold is one of the three published states -- seeing the
  // never-published mix (or a live list disagreeing with the flow slot)
  // means a torn read.  Under TSan this doubles as the data-race check on
  // the RCU cell.
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 4);
  RtFlowSpec spec;
  spec.weight = 1.0;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto reader = cp.reader();
      while (!stop.load(std::memory_order_acquire)) {
        const auto guard = reader.lock();
        const SnapshotFlow* entry = guard->flow(f);
        if (entry == nullptr) {
          ++torn;  // the flow is never removed in this test
          continue;
        }
        const bool narrow =  // willing {0}: weight may be mid-cycle 1 or 2
            entry->willing == std::vector<IfaceId>{0} &&
            (entry->weight == 1.0 || entry->weight == 2.0);
        const bool wide =    // willing {0, 1} only ever published with 2
            entry->weight == 2.0 &&
            entry->willing == std::vector<IfaceId>{0, 1};
        if (!(narrow || wide)) ++torn;
        if (guard->live != std::vector<FlowId>{f}) ++torn;
      }
    });
  }

  for (int i = 0; i < 100; ++i) {
    cp.set_weight(f, 2.0);
    cp.set_willing(f, 1, true);   // now (2.0, {0, 1})
    cp.set_willing(f, 1, false);
    cp.set_weight(f, 1.0);        // back to (1.0, {0})
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(ControlPlaneSwap, TornWindowExistsMidUpdate) {
  // Sanity check OF THE TEST ABOVE: between set_weight and set_willing the
  // intermediate (2.0, {0}) configuration IS visible -- the atomicity unit
  // is one control-plane call, not a transaction.  This pins the published
  // intermediate state so the previous test is known to be discriminating.
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 4);
  RtFlowSpec spec;
  spec.weight = 1.0;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);
  cp.set_weight(f, 2.0);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->flow(f)->weight, 2.0);
  EXPECT_EQ(guard->flow(f)->willing, std::vector<IfaceId>{0});
}

TEST(Rcu, PublishWaitsForInCriticalSectionReader) {
  // A reader inside a critical section pins the old snapshot: publish()
  // from another thread must not return (and must not delete the old
  // value) until the guard drops.
  Rcu<int> cell(std::make_unique<int>(1));
  auto reader = Rcu<int>::Reader(cell);
  std::atomic<bool> published{false};

  auto guard = std::make_unique<Rcu<int>::Reader::Guard>(reader.lock());
  EXPECT_EQ(**guard, 1);
  std::thread writer([&] {
    cell.publish(std::make_unique<int>(2));
    published.store(true, std::memory_order_release);
  });
  // The writer must be stuck in the grace period while we hold the guard.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(published.load(std::memory_order_acquire));
  EXPECT_EQ(**guard, 1) << "old snapshot must stay valid while pinned";
  guard.reset();  // leave the critical section
  writer.join();
  EXPECT_TRUE(published.load());
  EXPECT_EQ(*reader.lock(), 2);
}

TEST(Rcu, SlotsAreReclaimedWhenReadersRetire) {
  Rcu<int> cell(std::make_unique<int>(0));
  for (std::size_t round = 0; round < 3; ++round) {
    std::vector<Rcu<int>::Reader> readers;
    for (std::size_t i = 0; i < Rcu<int>::kMaxReaders; ++i) {
      readers.emplace_back(cell);  // would throw if slots leaked
    }
    EXPECT_THROW(Rcu<int>::Reader extra(cell), PreconditionError);
  }
}

}  // namespace
}  // namespace midrr::rt
