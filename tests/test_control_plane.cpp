// ControlPlane + Rcu: class-delta registry logic against a mock
// ShardApplier (apply-vs-publish ordering, Pi-row interning and dedup,
// shard coverage growth and shrink, batch registration with one publish),
// and the snapshot-swap guarantee -- concurrent readers see a whole old or
// whole new configuration, never a torn mix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/control_plane.hpp"
#include "runtime/rcu.hpp"
#include "util/assert.hpp"

namespace midrr::rt {
namespace {

/// Records every mutation, interleaved with the publish version at which it
/// arrived (so ordering relative to publication is checkable).
class RecordingApplier : public ShardApplier {
 public:
  struct Op {
    std::string kind;
    std::uint32_t shard;
    FlowId flow;
    std::vector<IfaceId> willing_subset;
  };

  void shard_add_flow(std::uint32_t shard, FlowId flow, const RtFlowSpec&,
                      const std::vector<IfaceId>& willing_subset) override {
    ops.push_back({"add", shard, flow, willing_subset});
  }
  void shard_remove_flow(std::uint32_t shard, FlowId flow) override {
    ops.push_back({"remove", shard, flow, {}});
  }
  void shard_set_weight(std::uint32_t shard, FlowId flow, double) override {
    ops.push_back({"weight", shard, flow, {}});
  }
  void shard_set_willing(std::uint32_t shard, FlowId flow, IfaceId iface,
                         bool value) override {
    ops.push_back({value ? "willing+" : "willing-", shard, flow, {iface}});
  }

  std::vector<Op> ops;
};

// Topology for most tests: 4 interfaces on 2 shards (0,1,0,1).
std::vector<std::uint32_t> two_shards() { return {0, 1, 0, 1}; }

TEST(ControlPlane, AddFlowReachesEveryHostingShardWithLocalSubset) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 1, 2};  // shard 0 hosts {0, 2}, shard 1 hosts {1}
  const FlowId f = cp.add_flow(spec);
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].willing_subset, (std::vector<IfaceId>{0, 2}));
  EXPECT_EQ(applier.ops[1].shard, 1u);
  EXPECT_EQ(applier.ops[1].willing_subset, (std::vector<IfaceId>{1}));

  const ClassId cls = cp.class_of(f);
  ASSERT_NE(cls, kInvalidClass);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  const SnapshotClass* entry = guard->cls(cls);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->shards, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(entry->members, 1u);
  EXPECT_EQ(guard->live, std::vector<ClassId>{cls});
}

TEST(ControlPlane, AddAppliesBeforeDirectoryRemoveClearsDirectoryBefore) {
  // The ordering invariant, observed through the applier: at the moment
  // shard_add_flow runs, producers must not yet resolve the flow (its
  // directory word is stored only after the publish); at the moment
  // shard_remove_flow runs the directory must ALREADY have dropped it.
  class OrderChecker : public ShardApplier {
   public:
    void shard_add_flow(std::uint32_t, FlowId flow, const RtFlowSpec&,
                        const std::vector<IfaceId>&) override {
      EXPECT_EQ(cp->class_of(flow), kInvalidClass)
          << "flow resolvable before the shard knew it";
    }
    void shard_remove_flow(std::uint32_t, FlowId flow) override {
      EXPECT_EQ(cp->class_of(flow), kInvalidClass)
          << "flow still resolvable after the shard forgot it";
    }
    void shard_set_weight(std::uint32_t, FlowId, double) override {}
    void shard_set_willing(std::uint32_t, FlowId, IfaceId, bool) override {}
    ControlPlane* cp = nullptr;
  };

  OrderChecker applier;
  ControlPlane cp(applier, two_shards(), 16);
  applier.cp = &cp;
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId f = cp.add_flow(spec);
  EXPECT_NE(cp.class_of(f), kInvalidClass);
  cp.remove_flow(f);
  EXPECT_EQ(cp.class_of(f), kInvalidClass);
}

TEST(ControlPlane, EqualSpecsInternIntoOneClass) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId a = cp.add_flow(spec);
  const FlowId b = cp.add_flow(spec);
  EXPECT_EQ(cp.class_of(a), cp.class_of(b));
  EXPECT_EQ(cp.class_count(), 1u);
  EXPECT_EQ(cp.flow_count(), 2u);

  RtFlowSpec heavier = spec;
  heavier.weight = 2.0;
  const FlowId c = cp.add_flow(heavier);
  EXPECT_NE(cp.class_of(c), cp.class_of(a)) << "weight is class identity";
  RtFlowSpec bounded = spec;
  bounded.queue_capacity_bytes = 1024;
  const FlowId d = cp.add_flow(bounded);
  EXPECT_NE(cp.class_of(d), cp.class_of(a)) << "queue bound is class identity";
  EXPECT_EQ(cp.class_count(), 3u);
  EXPECT_EQ(cp.members_of(cp.class_of(a)), (std::vector<FlowId>{a, b}));
}

TEST(ControlPlane, AddMembersRegistersABatchUnderOnePublish) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 64);
  const std::uint64_t v0 = cp.version();
  ClassSpec spec;
  spec.willing = {0, 1};
  const FlowId first = cp.add_members(spec, 40);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(cp.version(), v0 + 1) << "one publish for the whole batch";
  EXPECT_EQ(applier.ops.size(), 80u) << "40 members x 2 hosting shards";
  EXPECT_EQ(cp.flow_count(), 40u);
  const ClassId cls = cp.class_of(first);
  for (FlowId f = first; f < first + 40; ++f) {
    EXPECT_EQ(cp.class_of(f), cls) << "batch members land in one class";
  }
  auto reader = cp.reader();
  const auto guard = reader.lock();
  ASSERT_NE(guard->cls(cls), nullptr);
  EXPECT_EQ(guard->cls(cls)->members, 40u);
  EXPECT_EQ(guard->live.size(), 1u) << "snapshot size is O(classes)";
}

TEST(ControlPlane, ApplyDrivesEveryDeltaKind) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  ControlDelta add;
  add.kind = ControlDelta::Kind::kAddMembers;
  add.spec.willing = {0};
  add.count = 3;
  const FlowId first = cp.apply(add);
  EXPECT_EQ(cp.flow_count(), 3u);

  ControlDelta move;
  move.kind = ControlDelta::Kind::kMoveMember;
  move.flow = first;
  move.spec.willing = {1};
  EXPECT_EQ(cp.apply(move), kInvalidFlow);
  EXPECT_NE(cp.class_of(first), cp.class_of(first + 1));

  ControlDelta reweight;
  reweight.kind = ControlDelta::Kind::kReweightClass;
  reweight.cls = cp.class_of(first + 1);
  reweight.weight = 2.0;
  cp.apply(reweight);
  {
    auto reader = cp.reader();
    const auto guard = reader.lock();
    EXPECT_EQ(guard->cls(cp.class_of(first + 1))->weight, 2.0);
  }

  ControlDelta remove;
  remove.kind = ControlDelta::Kind::kRemoveMember;
  remove.flow = first + 2;
  cp.apply(remove);
  EXPECT_EQ(cp.flow_count(), 2u);
}

TEST(ControlPlane, ClassRetiresAndRevivesUnderTheSameId) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId a = cp.add_flow(spec);
  const ClassId cls = cp.class_of(a);
  cp.remove_flow(a);
  EXPECT_EQ(cp.class_count(), 0u);
  {
    auto reader = cp.reader();
    EXPECT_EQ(reader.lock()->cls(cls), nullptr) << "emptied class retired";
  }
  const FlowId b = cp.add_flow(spec);
  EXPECT_EQ(cp.class_of(b), cls) << "matching key revives the same class id";
  EXPECT_EQ(b, a + 1) << "flow ids are never recycled";
}

TEST(ControlPlane, ReweightClassMovesEveryMemberInOnePublish) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  ClassSpec spec;
  spec.willing = {0, 1};
  const FlowId first = cp.add_members(spec, 3);
  const ClassId before = cp.class_of(first);
  applier.ops.clear();
  const std::uint64_t v = cp.version();

  const ClassId after = cp.reweight_class(before, 2.0);
  EXPECT_NE(after, before);
  EXPECT_EQ(cp.version(), v + 1) << "one publish for the whole class";
  EXPECT_EQ(applier.ops.size(), 6u) << "3 members x 2 hosting shards";
  for (const auto& op : applier.ops) EXPECT_EQ(op.kind, "weight");
  for (FlowId f = first; f < first + 3; ++f) {
    EXPECT_EQ(cp.class_of(f), after);
  }
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->cls(before), nullptr) << "source class retired";
  ASSERT_NE(guard->cls(after), nullptr);
  EXPECT_EQ(guard->cls(after)->members, 3u);
  EXPECT_EQ(guard->cls(after)->weight, 2.0);
}

TEST(ControlPlane, ReweightMergesIntoAnExistingClass) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  ClassSpec spec;
  spec.willing = {0};
  const FlowId light = cp.add_members(spec, 2);
  ClassSpec heavy = spec;
  heavy.weight = 2.0;
  const FlowId anchor = cp.add_flow(heavy);
  const ClassId target = cp.class_of(anchor);

  EXPECT_EQ(cp.reweight_class(cp.class_of(light), 2.0), target);
  EXPECT_EQ(cp.class_of(light), target);
  EXPECT_EQ(cp.class_count(), 1u);
  auto reader = cp.reader();
  EXPECT_EQ(reader.lock()->cls(target)->members, 3u);
}

TEST(ControlPlane, SetWillingGrowsAndShrinksShardCoverage) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};  // shard 0 only
  const FlowId f = cp.add_flow(spec);
  applier.ops.clear();

  cp.set_willing(f, 1, true);  // first iface on shard 1: coverage grows
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 1u);
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{1});

  cp.set_willing(f, 3, true);  // second iface on shard 1: plain flip
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[1].kind, "willing+");

  cp.set_willing(f, 1, false);  // shard 1 still hosts iface 3: plain flip
  ASSERT_EQ(applier.ops.size(), 3u);
  EXPECT_EQ(applier.ops[2].kind, "willing-");

  cp.set_willing(f, 3, false);  // last iface on shard 1: coverage shrinks
  ASSERT_EQ(applier.ops.size(), 4u);
  EXPECT_EQ(applier.ops[3].kind, "remove");
  EXPECT_EQ(applier.ops[3].shard, 1u);

  auto reader = cp.reader();
  const auto guard = reader.lock();
  const SnapshotClass* entry = guard->cls(cp.class_of(f));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->shards, std::vector<std::uint32_t>{0});
  EXPECT_EQ(entry->willing, std::vector<IfaceId>{0});
}

TEST(ControlPlane, MoveBetweenClassesPreservesTheFlowId) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId f = cp.add_flow(spec);
  cp.add_flow(spec);  // keeps the source class alive after the move
  const ClassId before = cp.class_of(f);

  cp.set_weight(f, 3.0);
  const ClassId after = cp.class_of(f);
  EXPECT_NE(after, before);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->cls(before)->members, 1u);
  EXPECT_EQ(guard->cls(after)->members, 1u);
  EXPECT_EQ(guard->cls(after)->weight, 3.0);
}

TEST(ControlPlane, RedundantUpdatesAreNoOps) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);
  const std::uint64_t v = cp.version();
  applier.ops.clear();
  cp.set_willing(f, 0, true);   // already willing
  cp.set_willing(f, 1, false);  // already not
  cp.set_weight(f, 1.0);        // same weight: same class identity
  cp.reweight_class(cp.class_of(f), 1.0);
  EXPECT_TRUE(applier.ops.empty());
  EXPECT_EQ(cp.version(), v);
}

TEST(ControlPlane, RejectsBadInputs) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 2);
  EXPECT_THROW(cp.add_flow({.weight = 0.0}), PreconditionError);
  EXPECT_THROW(cp.remove_flow(0), PreconditionError);
  RtFlowSpec bad;
  bad.willing = {9};  // unknown interface
  EXPECT_THROW(cp.add_flow(bad), PreconditionError);
  RtFlowSpec ok;
  ok.willing = {0};
  const FlowId f = cp.add_flow(ok);
  cp.add_flow(ok);
  EXPECT_THROW(cp.add_flow(ok), PreconditionError) << "arena bound";
  EXPECT_THROW(cp.set_weight(f, -1.0), PreconditionError);
  EXPECT_THROW(cp.reweight_class(kInvalidClass, 2.0), PreconditionError);
  EXPECT_THROW(cp.add_members(ok, 0), PreconditionError);
  cp.remove_flow(f);
  EXPECT_THROW(cp.set_weight(f, 1.0), PreconditionError) << "dead flow";
}

TEST(ControlPlane, FlowIdsAreDenseAndNeverReused) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 8);
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId a = cp.add_flow(spec);
  const FlowId b = cp.add_flow(spec);
  cp.remove_flow(a);
  const FlowId c = cp.add_flow(spec);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1) << "removing a flow must not recycle its id";
}

TEST(ControlPlane, IfaceDownReSteersAndQuarantinesInOnePublish) {
  // Kill interface 0 under two classes: x{0, 1} survives on interface 1
  // (so its member must LEAVE shard 0), y{0} has nowhere to go (so the
  // class is quarantined: still live, still holding its preferences, but
  // routing nowhere).
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec x_spec;
  x_spec.willing = {0, 1};
  const FlowId x = cp.add_flow(x_spec);
  RtFlowSpec y_spec;
  y_spec.willing = {0};
  const FlowId y = cp.add_flow(y_spec);
  applier.ops.clear();
  const std::uint64_t v = cp.version();

  cp.set_iface_down(0, true);
  EXPECT_TRUE(cp.iface_down(0));
  EXPECT_EQ(cp.version(), v + 1) << "one publish for the whole transition";
  EXPECT_EQ(cp.quarantined_count(), 1u);
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "remove");  // x leaves shard 0
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].flow, x);
  EXPECT_EQ(applier.ops[1].kind, "remove");  // y leaves its only shard
  EXPECT_EQ(applier.ops[1].flow, y);
  {
    auto reader = cp.reader();
    const auto guard = reader.lock();
    const SnapshotClass* xc = guard->cls(cp.class_of(x));
    const SnapshotClass* yc = guard->cls(cp.class_of(y));
    ASSERT_NE(xc, nullptr);
    ASSERT_NE(yc, nullptr);
    EXPECT_EQ(xc->shards, std::vector<std::uint32_t>{1});
    EXPECT_FALSE(xc->quarantined);
    EXPECT_EQ(xc->willing, (std::vector<IfaceId>{0, 1}))
        << "preferences are reality-masked, not edited";
    EXPECT_TRUE(yc->shards.empty());
    EXPECT_TRUE(yc->quarantined);
    EXPECT_EQ(guard->live.size(), 2u)
        << "quarantined classes stay live (their offers are counted rejects)";
    ASSERT_EQ(guard->iface_down.size(), 4u);
    EXPECT_TRUE(guard->iface_down[0]);
  }

  applier.ops.clear();
  cp.set_iface_down(0, false);
  EXPECT_FALSE(cp.iface_down(0));
  EXPECT_EQ(cp.quarantined_count(), 0u);
  // Both members are re-registered on shard 0 (with the interface-0 subset)
  // BEFORE the publish that re-opens routing to it.
  ASSERT_EQ(applier.ops.size(), 2u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].flow, x);
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{0});
  EXPECT_EQ(applier.ops[1].kind, "add");
  EXPECT_EQ(applier.ops[1].flow, y);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->cls(cp.class_of(x))->shards,
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_FALSE(guard->cls(cp.class_of(y))->quarantined);
}

TEST(ControlPlane, IfaceDownFlipsWillingOnAStillHostingShard) {
  // Class {0, 2}: both interfaces live on shard 0.  Killing interface 0
  // must not drop the shard (interface 2 still hosts the class there) but
  // MUST clear the dead interface's willing bit in the shard scheduler --
  // otherwise miDRR keeps granting turns to a dead link.
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0, 2};
  const FlowId f = cp.add_flow(spec);
  applier.ops.clear();

  cp.set_iface_down(0, true);
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "willing-");
  EXPECT_EQ(applier.ops[0].shard, 0u);
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{0});
  {
    auto reader = cp.reader();
    const auto guard = reader.lock();
    EXPECT_EQ(guard->cls(cp.class_of(f))->shards,
              std::vector<std::uint32_t>{0});
  }

  applier.ops.clear();
  cp.set_iface_down(0, false);
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "willing+");
  EXPECT_EQ(applier.ops[0].willing_subset, std::vector<IfaceId>{0});
}

TEST(ControlPlane, IfaceDownIsIdempotentAndValidated) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};
  cp.add_flow(spec);
  EXPECT_THROW(cp.set_iface_down(9, true), PreconditionError);
  cp.set_iface_down(0, true);
  const std::uint64_t v = cp.version();
  applier.ops.clear();
  cp.set_iface_down(0, true);  // already down: no publish, no ops
  EXPECT_TRUE(applier.ops.empty());
  EXPECT_EQ(cp.version(), v);
}

TEST(ControlPlane, FlowsAddedWhileIfaceIsDownRouteAroundIt) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  cp.set_iface_down(0, true);
  RtFlowSpec spec;
  spec.willing = {0, 1};
  const FlowId f = cp.add_flow(spec);
  ASSERT_EQ(applier.ops.size(), 1u);
  EXPECT_EQ(applier.ops[0].kind, "add");
  EXPECT_EQ(applier.ops[0].shard, 1u) << "dead interface's shard is skipped";
  auto reader = cp.reader();
  const auto guard = reader.lock();
  EXPECT_EQ(guard->cls(cp.class_of(f))->shards, std::vector<std::uint32_t>{1});
}

TEST(ControlPlane, LiveFlowsScansTheDirectory) {
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 16);
  RtFlowSpec spec;
  spec.willing = {0};
  const FlowId a = cp.add_flow(spec);
  const FlowId b = cp.add_flow(spec);
  const FlowId c = cp.add_flow(spec);
  cp.remove_flow(b);
  EXPECT_EQ(cp.live_flows(), (std::vector<FlowId>{a, c}));
  EXPECT_EQ(cp.flow_count(), 2u);
}

TEST(ControlPlaneSwap, ReadersNeverSeeATornConfiguration) {
  // The writer cycles one flow (1, {0}) -> (2, {0}) -> (2, {0, 1}) ->
  // (2, {0}) -> (1, {0}), one control-plane call per step; each step moves
  // the flow between interned classes.  Every PUBLISHED snapshot therefore
  // contains exactly one populated class, and its (weight, willing) pair is
  // one of the three published states -- the state (1, {0, 1}) never
  // exists.  Reader threads continuously validate whichever snapshot they
  // hold; seeing the never-published mix, a live class without members, or
  // more than one populated class means a torn read.  Under TSan this
  // doubles as the data-race check on the RCU cell.
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 4);
  RtFlowSpec spec;
  spec.weight = 1.0;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto reader = cp.reader();
      while (!stop.load(std::memory_order_acquire)) {
        const auto guard = reader.lock();
        if (guard->live.size() != 1) {
          ++torn;  // exactly one class holds the flow in every published state
          continue;
        }
        const SnapshotClass& entry = guard->classes[guard->live[0]];
        if (!entry.live || entry.members != 1) {
          ++torn;
          continue;
        }
        const bool narrow =  // willing {0}: weight may be mid-cycle 1 or 2
            entry.willing == std::vector<IfaceId>{0} &&
            (entry.weight == 1.0 || entry.weight == 2.0);
        const bool wide =    // willing {0, 1} only ever published with 2
            entry.weight == 2.0 &&
            entry.willing == (std::vector<IfaceId>{0, 1});
        if (!(narrow || wide)) ++torn;
      }
    });
  }

  for (int i = 0; i < 100; ++i) {
    cp.set_weight(f, 2.0);
    cp.set_willing(f, 1, true);   // now (2.0, {0, 1})
    cp.set_willing(f, 1, false);
    cp.set_weight(f, 1.0);        // back to (1.0, {0})
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(ControlPlaneSwap, TornWindowExistsMidUpdate) {
  // Sanity check OF THE TEST ABOVE: between set_weight and set_willing the
  // intermediate (2.0, {0}) configuration IS visible -- the atomicity unit
  // is one control-plane call, not a transaction.  This pins the published
  // intermediate state so the previous test is known to be discriminating.
  RecordingApplier applier;
  ControlPlane cp(applier, two_shards(), 4);
  RtFlowSpec spec;
  spec.weight = 1.0;
  spec.willing = {0};
  const FlowId f = cp.add_flow(spec);
  cp.set_weight(f, 2.0);
  auto reader = cp.reader();
  const auto guard = reader.lock();
  const SnapshotClass* entry = guard->cls(cp.class_of(f));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->weight, 2.0);
  EXPECT_EQ(entry->willing, std::vector<IfaceId>{0});
}

TEST(Rcu, PublishWaitsForInCriticalSectionReader) {
  // A reader inside a critical section pins the old snapshot: publish()
  // from another thread must not return (and must not delete the old
  // value) until the guard drops.
  Rcu<int> cell(std::make_unique<int>(1));
  auto reader = Rcu<int>::Reader(cell);
  std::atomic<bool> published{false};

  auto guard = std::make_unique<Rcu<int>::Reader::Guard>(reader.lock());
  EXPECT_EQ(**guard, 1);
  std::thread writer([&] {
    cell.publish(std::make_unique<int>(2));
    published.store(true, std::memory_order_release);
  });
  // The writer must be stuck in the grace period while we hold the guard.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(published.load(std::memory_order_acquire));
  EXPECT_EQ(**guard, 1) << "old snapshot must stay valid while pinned";
  guard.reset();  // leave the critical section
  writer.join();
  EXPECT_TRUE(published.load());
  EXPECT_EQ(*reader.lock(), 2);
}

TEST(Rcu, SlotsAreReclaimedWhenReadersRetire) {
  Rcu<int> cell(std::make_unique<int>(0));
  for (std::size_t round = 0; round < 3; ++round) {
    std::vector<Rcu<int>::Reader> readers;
    for (std::size_t i = 0; i < Rcu<int>::kMaxReaders; ++i) {
      readers.emplace_back(cell);  // would throw if slots leaked
    }
    EXPECT_THROW(Rcu<int>::Reader extra(cell), PreconditionError);
  }
}

}  // namespace
}  // namespace midrr::rt
