// Unit tests for the weighted max-min reference solver on the paper's
// worked examples (Section 1, Figure 1; Section 6.2, Figure 6).
#include <gtest/gtest.h>

#include "fairness/maxmin.hpp"

namespace midrr::fair {
namespace {

constexpr double kMbps = 1e6;

MaxMinInput fig1c() {
  // Two 1 Mb/s interfaces; flow a willing to use both, flow b only iface 2.
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {1 * kMbps, 1 * kMbps};
  in.willing = {{true, true}, {false, true}};
  return in;
}

TEST(MaxMin, SingleInterfaceEqualSplit) {
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {2 * kMbps};
  in.willing = {{true}, {true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1e3);
}

TEST(MaxMin, SingleInterfaceWeightedSplit) {
  MaxMinInput in;
  in.weights = {2.0, 1.0};
  in.capacities_bps = {3 * kMbps};
  in.willing = {{true}, {true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 2 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1e3);
}

TEST(MaxMin, Fig1bNoPreferencesEqualSplit) {
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {1 * kMbps, 1 * kMbps};
  in.willing = {{true, true}, {true, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1e3);
}

TEST(MaxMin, Fig1cInterfacePreferenceGivesOneEach) {
  // The paper: WFQ would give a=1.5, b=0.5; max-min fair is 1 and 1.
  const auto r = solve_max_min(fig1c());
  EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1e3);
  // Split: flow a's megabit comes (essentially) entirely from interface 1.
  EXPECT_NEAR(r.alloc_bps[0][0], 1 * kMbps, 1e4);
  EXPECT_NEAR(r.alloc_bps[1][1], 1 * kMbps, 1e4);
}

TEST(MaxMin, Fig1cInfeasibleRatePreferenceSpillsCapacity) {
  // Section 1: phi_b = 2 phi_a, but b can only use interface 2 (1 Mb/s).
  // b is capped at 1 Mb/s; a gets all remaining capacity (1 Mb/s), NOT the
  // 0.5 Mb/s a strict 2:1 split would give.
  MaxMinInput in = fig1c();
  in.weights = {1.0, 2.0};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1e3);
}

TEST(MaxMin, Fig6InitialPhase) {
  // if1 = 3 Mb/s (flow a only); if2 = 10 Mb/s shared by b (w=2) and c (w=1).
  MaxMinInput in;
  in.weights = {1.0, 2.0, 1.0};
  in.capacities_bps = {3 * kMbps, 10 * kMbps};
  in.willing = {{true, false}, {false, true}, {false, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 3 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 6.6667 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[2], 3.3333 * kMbps, 1e3);
}

TEST(MaxMin, Fig6MiddlePhaseAggregation) {
  // After flow a ends: b (w=2) uses both ifaces, c (w=1) only if2.
  // Cluster {b, c | if1, if2}: level = 13/3, so b=8.67, c=4.33.
  MaxMinInput in;
  in.weights = {2.0, 1.0};
  in.capacities_bps = {3 * kMbps, 10 * kMbps};
  in.willing = {{true, true}, {false, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 8.6667 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 4.3333 * kMbps, 1e3);
}

TEST(MaxMin, PaperIntroExampleFig6FinalPhase) {
  MaxMinInput in;
  in.weights = {1.0};
  in.capacities_bps = {3 * kMbps, 10 * kMbps};
  in.willing = {{false, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 10 * kMbps, 1e3);
}

TEST(MaxMin, DisconnectedFlowGetsZero) {
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {5 * kMbps};
  in.willing = {{true}, {false}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 5 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 0.0, 1.0);
}

TEST(MaxMin, ZeroCapacityInterface) {
  MaxMinInput in;
  in.weights = {1.0, 1.0};
  in.capacities_bps = {0.0, 4 * kMbps};
  in.willing = {{true, false}, {true, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 0.0, 1.0);
  EXPECT_NEAR(r.rates_bps[1], 4 * kMbps, 1e3);
}

TEST(MaxMin, NoFlows) {
  MaxMinInput in;
  in.capacities_bps = {1 * kMbps};
  const auto r = solve_max_min(in);
  EXPECT_TRUE(r.rates_bps.empty());
}

TEST(MaxMin, TotalRateIsWorkConserving) {
  // Fully connected: total equals total capacity.
  MaxMinInput in;
  in.weights = {1.0, 3.0, 2.0};
  in.capacities_bps = {2 * kMbps, 5 * kMbps, 1 * kMbps};
  in.willing = {{true, true, true}, {true, true, true}, {true, true, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.total_rate_bps(), 8 * kMbps, 1e4);
}

TEST(MaxMin, ChainTopologyThreeClusters) {
  // f0 -- if0 (1M); f1 -- if0, if1; f2 -- if1 (10M).
  // Max-min: f0 and f1 could share if0, but f1 does better on if1.
  MaxMinInput in;
  in.weights = {1.0, 1.0, 1.0};
  in.capacities_bps = {1 * kMbps, 10 * kMbps};
  in.willing = {{true, false}, {true, true}, {false, true}};
  const auto r = solve_max_min(in);
  EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1e3);
  EXPECT_NEAR(r.rates_bps[1], 5 * kMbps, 1e4);
  EXPECT_NEAR(r.rates_bps[2], 5 * kMbps, 1e4);
}

TEST(MaxMin, DemandsFeasibleOracle) {
  const auto in = fig1c();
  EXPECT_TRUE(demands_feasible(in, {0.5 * kMbps, 0.5 * kMbps}));
  EXPECT_TRUE(demands_feasible(in, {1 * kMbps, 1 * kMbps}));
  EXPECT_FALSE(demands_feasible(in, {1 * kMbps, 1.1 * kMbps}));
  // a can take 1.5 only if b accepts 0.5.
  EXPECT_TRUE(demands_feasible(in, {1.5 * kMbps, 0.5 * kMbps}));
  EXPECT_FALSE(demands_feasible(in, {1.6 * kMbps, 0.5 * kMbps}));
}

TEST(MaxMin, LevelsAreMonotoneAcrossClusters) {
  MaxMinInput in;
  in.weights = {1.0, 1.0, 1.0};
  in.capacities_bps = {1 * kMbps, 10 * kMbps};
  in.willing = {{true, false}, {true, true}, {false, true}};
  const auto r = solve_max_min(in);
  // f0 froze at a lower level than f1/f2.
  EXPECT_LT(r.levels[0], r.levels[1]);
  EXPECT_NEAR(r.levels[1], r.levels[2], 1.0);
}

}  // namespace
}  // namespace midrr::fair
