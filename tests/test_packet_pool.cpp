// Tests for the slab packet pool, its MPSC return ring, and the pooled
// frame factory: single-thread protocol, wraparound and full-ring
// behavior, heap-fallback semantics, leak accounting, and a cross-thread
// recycle soak (run under TSan in CI).
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame_pool.hpp"
#include "util/mpsc_ring.hpp"
#include "util/packet_pool.hpp"

namespace midrr {
namespace {

// --- MpscRing ------------------------------------------------------------

TEST(MpscRing, RoundsCapacityUpToPowerOfTwo) {
  MpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);
  MpscRing<int> exact(8);
  EXPECT_EQ(exact.capacity(), 8u);
}

TEST(MpscRing, FifoAcrossManyLaps) {
  // Capacity 4; push/pop 1000 elements so head and tail wrap the ring 250
  // times -- exercises the sequence-number lap arithmetic, not just the
  // first pass over freshly initialized cells.
  MpscRing<std::uint32_t> ring(4);
  std::uint32_t next_in = 0;
  std::uint32_t next_out = 0;
  for (int lap = 0; lap < 250; ++lap) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.push(next_in++));
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.pop(value));
      EXPECT_EQ(value, next_out++);
    }
  }
  std::uint32_t value = 0;
  EXPECT_FALSE(ring.pop(value));  // drained
}

TEST(MpscRing, PushFailsWhenFullAndRecoversAfterPop) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full: caller must take the fallback path
  int value = -1;
  ASSERT_TRUE(ring.pop(value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ring.push(99));  // one slot freed, one push fits
  EXPECT_FALSE(ring.push(100));
}

TEST(MpscRing, PopBatchAppendsUpToMax) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.push(i));
  std::vector<int> out = {-1};  // pop_batch appends, never clears
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(ring.pop_batch(out, 100), 2u);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], -1);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i + 1], static_cast<int>(i));
  }
}

TEST(MpscRing, ConcurrentProducersDeliverEveryElementOnce) {
  // 4 producers x 10k elements through a deliberately small ring; failed
  // pushes are retried so the consumer must see every element exactly
  // once.  TSan-clean in CI.
  constexpr int kProducers = 4;
  constexpr std::uint32_t kPerProducer = 10000;
  MpscRing<std::uint32_t> ring(256);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint32_t value = static_cast<std::uint32_t>(p) << 24 | i;
        while (!ring.push(value)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint32_t> seen(kProducers, 0);
  std::uint64_t total = 0;
  while (total < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    std::uint32_t value = 0;
    if (!ring.pop(value)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint32_t producer = value >> 24;
    const std::uint32_t seq = value & 0xffffff;
    ASSERT_LT(producer, static_cast<std::uint32_t>(kProducers));
    // Per-producer order is preserved (each producer's pushes are
    // sequentially consistent with its own program order).
    EXPECT_EQ(seq, seen[producer]);
    seen[producer] = seq + 1;
    ++total;
  }
  for (auto& t : producers) t.join();
  std::uint32_t value = 0;
  EXPECT_FALSE(ring.pop(value));
}

// --- PacketPool ----------------------------------------------------------

PacketPoolOptions small_pool(std::size_t slots, std::size_t slabs = 1) {
  PacketPoolOptions options;
  options.buffer_bytes = 256;
  options.slab_slots = slots;
  options.max_slabs = slabs;
  return options;
}

TEST(PacketPool, AcquireReleaseRoundTripIsAccounted) {
  PacketPool pool(small_pool(8));
  const std::uint32_t slot = pool.acquire_slot();
  ASSERT_NE(slot, PacketPool::kNoSlot);
  EXPECT_NE(pool.buffer_of(slot), nullptr);
  EXPECT_NE(pool.header_of(slot), nullptr);
  std::memset(pool.buffer_of(slot), 0xAB, pool.buffer_bytes());
  pool.release_slot(slot);
  const PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.slabs, 1u);
}

TEST(PacketPool, GrowsSlabsUpToCapThenMisses) {
  PacketPool pool(small_pool(4, /*slabs=*/2));
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t slot = pool.acquire_slot();
    ASSERT_NE(slot, PacketPool::kNoSlot) << "slot " << i;
    held.push_back(slot);
  }
  EXPECT_EQ(pool.stats().slabs, 2u);
  EXPECT_EQ(pool.stats().capacity_slots, 8u);
  // Exhausted: the next acquire is a miss, not a crash or a block.
  EXPECT_EQ(pool.acquire_slot(), PacketPool::kNoSlot);
  EXPECT_EQ(pool.stats().misses, 1u);
  for (const std::uint32_t slot : held) pool.release_slot(slot);
  // Recovered: capacity is reusable after release.
  EXPECT_NE(pool.acquire_slot(), PacketPool::kNoSlot);
}

TEST(PacketPool, SlotsDoNotAliasAcrossSlabs) {
  PacketPool pool(small_pool(2, /*slabs=*/3));
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 6; ++i) held.push_back(pool.acquire_slot());
  // Tag every buffer, then verify no write leaked into a neighbor.
  for (std::size_t i = 0; i < held.size(); ++i) {
    std::memset(pool.buffer_of(held[i]), static_cast<int>(i + 1),
                pool.buffer_bytes());
  }
  for (std::size_t i = 0; i < held.size(); ++i) {
    const std::uint8_t* buf = pool.buffer_of(held[i]);
    for (std::size_t b = 0; b < pool.buffer_bytes(); ++b) {
      ASSERT_EQ(buf[b], static_cast<std::uint8_t>(i + 1));
    }
  }
  for (const std::uint32_t slot : held) pool.release_slot(slot);
}

TEST(PacketPool, CrossThreadReleaseTakesReturnRing) {
  PacketPool pool(small_pool(8));
  const std::uint32_t slot = pool.acquire_slot();
  ASSERT_NE(slot, PacketPool::kNoSlot);
  std::thread releaser([&pool, slot] { pool.release_slot(slot); });
  releaser.join();
  const PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.cross_thread_returns, 1u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.in_return_ring, 1u);  // not yet drained by the owner
  // The owner reclaims ring inventory once its freelist runs dry.
  std::vector<std::uint32_t> drained;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t s = pool.acquire_slot();
    ASSERT_NE(s, PacketPool::kNoSlot);
    drained.push_back(s);
  }
  EXPECT_EQ(pool.stats().in_return_ring, 0u);
  for (const std::uint32_t s : drained) pool.release_slot(s);
}

TEST(PacketPool, FullReturnRingFallsBackToOverflowList) {
  // Ring capacity rounds up to 2, so the third cross-thread return in a
  // row (with the owner never draining) must take the overflow list --
  // counted, never lost.
  PacketPoolOptions options = small_pool(8);
  options.return_ring_capacity = 2;
  PacketPool pool(options);
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 4; ++i) held.push_back(pool.acquire_slot());
  std::thread releaser([&pool, &held] {
    for (const std::uint32_t slot : held) pool.release_slot(slot);
  });
  releaser.join();
  PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.cross_thread_returns, 4u);
  EXPECT_EQ(stats.overflow_returns, 2u);
  EXPECT_EQ(stats.outstanding, 0u);
  // Every slot -- ring and overflow alike -- is reacquirable.
  std::vector<std::uint32_t> again;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t slot = pool.acquire_slot();
    ASSERT_NE(slot, PacketPool::kNoSlot);
    again.push_back(slot);
  }
  EXPECT_EQ(pool.stats().misses, 0u);
  for (const std::uint32_t slot : again) pool.release_slot(slot);
}

TEST(PacketPool, DetachOwnerRoutesEveryReleaseCrossThread) {
  PacketPool pool(small_pool(8));
  const std::uint32_t slot = pool.acquire_slot();
  pool.detach_owner();
  pool.release_slot(slot);  // same thread, but no owner -> ring path
  EXPECT_EQ(pool.stats().cross_thread_returns, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PacketPool, BindOwnerMovesTheFreelistFastPath) {
  PacketPool pool(small_pool(8));
  std::thread owner([&pool] {
    pool.bind_owner();
    const std::uint32_t slot = pool.acquire_slot();
    ASSERT_NE(slot, PacketPool::kNoSlot);
    pool.release_slot(slot);  // owner thread: freelist, not the ring
  });
  owner.join();
  const PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.cross_thread_returns, 0u);
  EXPECT_EQ(stats.outstanding, 0u);
}

TEST(PacketPool, RecycleUnderChurnSoak) {
  // The runtime's ownership pattern, compressed: one owner thread
  // acquires, several consumer threads release, capacity is a fraction of
  // the in-flight demand so the owner continuously drains the return
  // ring.  Asserts exact leak accounting at quiescence.  TSan-clean in
  // CI.
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPackets = 40000;
  PacketPoolOptions options = small_pool(64, /*slabs=*/2);
  options.return_ring_capacity = 64;  // force occasional overflow returns
  PacketPool pool(options);
  MpscRing<std::uint32_t> in_flight(1024);
  std::atomic<bool> done{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint32_t slot = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Multi-consumer pop is UB on MpscRing, so consumers contend on a
        // shared ticket instead: only one pops at a time.
        static std::atomic_flag popping = ATOMIC_FLAG_INIT;
        if (popping.test_and_set(std::memory_order_acquire)) {
          std::this_thread::yield();
          continue;
        }
        const bool got = in_flight.pop(slot);
        popping.clear(std::memory_order_release);
        if (got) {
          pool.release_slot(slot);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::uint64_t produced = 0;
  std::uint64_t missed = 0;
  while (produced + missed < kPackets) {
    const std::uint32_t slot = pool.acquire_slot();
    if (slot == PacketPool::kNoSlot) {
      ++missed;  // transient exhaustion while consumers catch up
      std::this_thread::yield();
      continue;
    }
    while (!in_flight.push(slot)) std::this_thread::yield();
    ++produced;
  }
  // Drain the hand-off ring, then stop the consumers.
  while (in_flight.size_approx() > 0) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();
  std::uint32_t leftover = 0;
  while (in_flight.pop(leftover)) pool.release_slot(leftover);

  const PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquired, produced);
  EXPECT_EQ(stats.released, produced);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.misses, missed);
  EXPECT_GT(stats.cross_thread_returns, 0u);
}

// --- FramePool (pooled shared frames) ------------------------------------

TEST(FramePool, PooledFrameUsesSlotStorageAndRecycles) {
  PacketPoolOptions options;
  options.buffer_bytes = 512;
  options.slab_slots = 8;
  net::FramePool frames(options);
  const std::uint64_t base_acquired = frames.pool().stats().acquired;
  {
    auto frame = frames.make_filled(100, net::Byte{0x5A});
    ASSERT_NE(frame, nullptr);
    EXPECT_TRUE(frame->pooled_storage());
    EXPECT_EQ(frame->size(), 100u);
    EXPECT_EQ(frame->bytes()[0], net::Byte{0x5A});
    EXPECT_EQ(frames.pool().stats().acquired, base_acquired + 1);
  }
  const PacketPoolStats stats = frames.pool().stats();
  EXPECT_EQ(stats.released, stats.acquired);  // slot home after last ref
  EXPECT_EQ(stats.outstanding, 0u);
}

TEST(FramePool, OversizedPayloadFallsBackToHeap) {
  PacketPoolOptions options;
  options.buffer_bytes = 64;
  net::FramePool frames(options);
  const std::uint64_t base_misses = frames.pool().stats().misses;
  const std::vector<net::Byte> payload(1000, net::Byte{7});
  auto frame = frames.make_frame(payload);
  ASSERT_NE(frame, nullptr);
  EXPECT_FALSE(frame->pooled_storage());
  EXPECT_EQ(frame->size(), 1000u);
  EXPECT_EQ(frame->bytes()[999], net::Byte{7});
  EXPECT_EQ(frames.pool().stats().misses, base_misses + 1);
}

TEST(FramePool, ExhaustionFallsBackToHeapNotFailure) {
  PacketPoolOptions options;
  options.buffer_bytes = 256;
  options.slab_slots = 2;
  options.max_slabs = 1;
  net::FramePool frames(options);
  std::vector<std::shared_ptr<const net::Frame>> held;
  for (int i = 0; i < 2; ++i) {
    held.push_back(frames.make_filled(10, net::Byte{1}));
    ASSERT_TRUE(held.back()->pooled_storage());
  }
  auto overflow = frames.make_filled(10, net::Byte{2});
  ASSERT_NE(overflow, nullptr);
  EXPECT_FALSE(overflow->pooled_storage());  // heap fallback, counted
  EXPECT_GE(frames.pool().stats().misses, 1u);
}

TEST(FramePool, FrameOutlivesItsFramePool) {
  // A frame still queued when the producer tears down its FramePool must
  // keep the slab alive: the slot allocator inside the control block
  // co-owns the PacketPool.
  std::shared_ptr<const net::Frame> survivor;
  {
    PacketPoolOptions options;
    options.buffer_bytes = 256;
    options.slab_slots = 4;
    net::FramePool frames(options);
    survivor = frames.make_filled(128, net::Byte{0xC3});
    frames.pool().detach_owner();  // shutdown path: owner thread is gone
  }
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(survivor->pooled_storage());
  for (std::size_t i = 0; i < survivor->size(); ++i) {
    ASSERT_EQ(survivor->bytes()[i], net::Byte{0xC3});
  }
  survivor.reset();  // releases the slot, then tears down the pool
}

TEST(FramePool, CrossThreadFrameDropRecyclesViaReturnRing) {
  PacketPoolOptions options;
  options.buffer_bytes = 256;
  options.slab_slots = 8;
  net::FramePool frames(options);
  auto frame = frames.make_filled(64, net::Byte{9});
  ASSERT_TRUE(frame->pooled_storage());
  std::thread dropper([frame = std::move(frame)]() mutable { frame.reset(); });
  dropper.join();
  const PacketPoolStats stats = frames.pool().stats();
  EXPECT_EQ(stats.cross_thread_returns, 1u);
  EXPECT_EQ(stats.outstanding, 0u);
}

}  // namespace
}  // namespace midrr
