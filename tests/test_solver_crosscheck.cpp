// Cross-validation of the two independent max-min solvers: the
// water-filling solver (binary search over a Dinic max-flow feasibility
// oracle) and the bottleneck-set iteration (Megiddo-style subset
// enumeration).  Agreement over thousands of random instances gives high
// confidence in both; every known worked example is checked against each.
#include <gtest/gtest.h>

#include "fairness/bottleneck.hpp"
#include "fairness/maxmin.hpp"
#include "util/rng.hpp"

namespace midrr::fair {
namespace {

constexpr double kMbps = 1e6;

MaxMinInput random_instance(Rng& rng) {
  MaxMinInput in;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 5));
  for (std::size_t j = 0; j < m; ++j) {
    // Include zero-capacity interfaces occasionally.
    in.capacities_bps.push_back(rng.coin(0.1) ? 0.0
                                              : rng.uniform(0.5, 20.0) * kMbps);
  }
  for (std::size_t i = 0; i < n; ++i) {
    in.weights.push_back(rng.coin(0.3) ? 1.0 : rng.uniform(0.25, 4.0));
    std::vector<bool> row(m, false);
    for (std::size_t j = 0; j < m; ++j) row[j] = rng.coin(0.5);
    // ~10% of flows may legitimately end up with empty rows.
    in.willing.push_back(std::move(row));
  }
  return in;
}

TEST(SolverCrossCheck, ThousandsOfRandomInstancesAgree) {
  Rng rng(20130429);
  for (int trial = 0; trial < 3000; ++trial) {
    const MaxMinInput in = random_instance(rng);
    const auto a = solve_max_min(in);
    const auto b = solve_max_min_bottleneck(in);
    double scale = 1.0;
    for (double c : in.capacities_bps) scale += c;
    for (std::size_t i = 0; i < in.flow_count(); ++i) {
      ASSERT_NEAR(a.rates_bps[i], b.rates_bps[i], 1e-6 * scale)
          << "trial " << trial << " flow " << i;
    }
  }
}

TEST(SolverCrossCheck, BottleneckSolverOnWorkedExamples) {
  {  // Fig 1(c)
    MaxMinInput in;
    in.weights = {1.0, 1.0};
    in.capacities_bps = {1 * kMbps, 1 * kMbps};
    in.willing = {{true, true}, {false, true}};
    const auto r = solve_max_min_bottleneck(in);
    EXPECT_NEAR(r.rates_bps[0], 1 * kMbps, 1.0);
    EXPECT_NEAR(r.rates_bps[1], 1 * kMbps, 1.0);
  }
  {  // Fig 6 phase 1
    MaxMinInput in;
    in.weights = {1.0, 2.0, 1.0};
    in.capacities_bps = {3 * kMbps, 10 * kMbps};
    in.willing = {{true, false}, {true, true}, {false, true}};
    const auto r = solve_max_min_bottleneck(in);
    EXPECT_NEAR(r.rates_bps[0], 3 * kMbps, 1.0);
    EXPECT_NEAR(r.rates_bps[1], 6.666667 * kMbps, 10.0);
    EXPECT_NEAR(r.rates_bps[2], 3.333333 * kMbps, 10.0);
  }
  {  // Fig 6 phase 2
    MaxMinInput in;
    in.weights = {2.0, 1.0};
    in.capacities_bps = {3 * kMbps, 10 * kMbps};
    in.willing = {{true, true}, {false, true}};
    const auto r = solve_max_min_bottleneck(in);
    EXPECT_NEAR(r.rates_bps[0], 8.666667 * kMbps, 10.0);
    EXPECT_NEAR(r.rates_bps[1], 4.333333 * kMbps, 10.0);
  }
}

TEST(SolverCrossCheck, EdgeCases) {
  {  // no flows
    MaxMinInput in;
    in.capacities_bps = {kMbps};
    EXPECT_TRUE(solve_max_min_bottleneck(in).rates_bps.empty());
  }
  {  // disconnected flow
    MaxMinInput in;
    in.weights = {1.0, 1.0};
    in.capacities_bps = {5 * kMbps};
    in.willing = {{true}, {false}};
    const auto r = solve_max_min_bottleneck(in);
    EXPECT_NEAR(r.rates_bps[0], 5 * kMbps, 1.0);
    EXPECT_DOUBLE_EQ(r.rates_bps[1], 0.0);
  }
  {  // zero-capacity-only flow
    MaxMinInput in;
    in.weights = {1.0};
    in.capacities_bps = {0.0};
    in.willing = {{true}};
    const auto r = solve_max_min_bottleneck(in);
    EXPECT_DOUBLE_EQ(r.rates_bps[0], 0.0);
  }
  {  // interface count guard
    MaxMinInput in;
    in.capacities_bps.assign(21, kMbps);
    in.weights = {1.0};
    in.willing = {std::vector<bool>(21, true)};
    EXPECT_THROW(solve_max_min_bottleneck(in), PreconditionError);
  }
}

TEST(SolverCrossCheck, LevelsAgreeToo) {
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    const MaxMinInput in = random_instance(rng);
    const auto a = solve_max_min(in);
    const auto b = solve_max_min_bottleneck(in);
    double scale = 1.0;
    for (double c : in.capacities_bps) scale += c;
    for (std::size_t i = 0; i < in.flow_count(); ++i) {
      ASSERT_NEAR(a.levels[i], b.levels[i],
                  1e-6 * scale / std::max(1e-9, in.weights[i]))
          << "trial " << trial << " flow " << i;
    }
  }
}

}  // namespace
}  // namespace midrr::fair
