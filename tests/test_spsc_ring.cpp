// SpscRing: single-thread semantics (capacity rounding, FIFO order, wrap,
// full/empty edges, batch pop) and a two-thread stress run checking that
// every pushed value arrives exactly once, in order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.hpp"
#include "util/assert.hpp"

namespace midrr::rt {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderAndFullEmptyEdges) {
  SpscRing<int> ring(4);
  int v = -1;
  EXPECT_FALSE(ring.pop(v));  // empty
  EXPECT_TRUE(ring.empty_approx());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(int(i)));
  EXPECT_FALSE(ring.push(99));  // full
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.pop(v));
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_out = 0;
  std::uint64_t next_in = 0;
  // Push/pop in a ragged pattern so head/tail wrap the 8-slot buffer
  // thousands of times and the free-running indices climb far past it.
  for (int round = 0; round < 5000; ++round) {
    const int burst = 1 + (round % 7);
    for (int i = 0; i < burst; ++i) {
      if (ring.push(std::uint64_t{next_in})) ++next_in;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < burst - 1; ++i) {
      if (ring.pop(v)) {
        ASSERT_EQ(v, next_out);
        ++next_out;
      }
    }
  }
  std::uint64_t v = 0;
  while (ring.pop(v)) {
    ASSERT_EQ(v, next_out);
    ++next_out;
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(SpscRing, PopBatchDrainsUpToLimit) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.push(int(i)));
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(ring.pop_batch(out, 100), 6u);
  EXPECT_EQ(ring.pop_batch(out, 100), 0u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRingStress, TwoThreadsEveryValueOnceInOrder) {
  // One producer, one consumer, a small ring (so full/empty races are
  // constant), ~200k values.  The consumer asserts strict order; the final
  // count asserts no loss and no duplication.  Run under TSan in CI, this
  // is also the memory-ordering contract check.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::atomic<bool> failed{false};

  std::thread consumer([&] {
    std::uint64_t expect = 0;
    std::vector<std::uint64_t> batch;
    while (expect < kCount) {
      batch.clear();
      if (ring.pop_batch(batch, 32) == 0) {
        std::this_thread::yield();
        continue;
      }
      for (const std::uint64_t v : batch) {
        if (v != expect) {
          failed.store(true);
          return;
        }
        ++expect;
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount;) {
    if (ring.push(std::uint64_t{i})) {
      ++i;
    } else {
      std::this_thread::yield();
    }
    if (failed.load(std::memory_order_relaxed)) break;
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.empty_approx());
}

}  // namespace
}  // namespace midrr::rt
