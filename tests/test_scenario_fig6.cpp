// Integration: the paper's Section 6.2 simulation (Figure 6) end to end.
//
// Topology (Fig 6a): if1 = 3 Mb/s, if2 = 10 Mb/s.
//   flow a: weight 1, willing {if1},       ends at ~66 s
//   flow b: weight 2, willing {if1, if2},  ends at ~85 s
//   flow c: weight 1, willing {if2},       backlogged throughout
//
// Expected rate timeline (Fig 6b):
//   [0, 66):  a = 3,  b = 6.67, c = 3.33   (b:c share if2 2:1)
//   [66, 85): b = 8.67 (aggregating if1+if2), c = 4.33
//   [85, ..): c = 10
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace midrr {
namespace {

// Volumes chosen so the flows complete at the paper's times given the
// max-min rates above: a: 3 Mb/s * 66 s; b: 6.67*66 + 8.67*19 Mb.
constexpr std::uint64_t kVolumeA = 24'750'000;  // bytes
constexpr std::uint64_t kVolumeB = 75'583'333;  // bytes

Scenario fig6_scenario() {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(3)));
  sc.interface("if2", RateProfile(mbps(10)));
  sc.backlogged_flow("a", 1.0, {"if1"}, kVolumeA);
  sc.backlogged_flow("b", 2.0, {"if1", "if2"}, kVolumeB);
  sc.backlogged_flow("c", 1.0, {"if2"});
  return sc;
}

class Fig6Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Scenario sc = fig6_scenario();
    RunnerOptions opt;
    opt.cluster_interval = kSecond;
    runner_ = new ScenarioRunner(sc, Policy::kMiDrr, opt);
    result_ = new ScenarioResult(runner_->run(100 * kSecond));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete runner_;
    result_ = nullptr;
    runner_ = nullptr;
  }

  static ScenarioRunner* runner_;
  static ScenarioResult* result_;
};

ScenarioRunner* Fig6Test::runner_ = nullptr;
ScenarioResult* Fig6Test::result_ = nullptr;

TEST_F(Fig6Test, PhaseOneWeightedShares) {
  const auto& r = *result_;
  EXPECT_NEAR(r.flow_named("a").mean_rate_mbps(10 * kSecond, 60 * kSecond),
              3.0, 0.15);
  EXPECT_NEAR(r.flow_named("b").mean_rate_mbps(10 * kSecond, 60 * kSecond),
              6.67, 0.25);
  EXPECT_NEAR(r.flow_named("c").mean_rate_mbps(10 * kSecond, 60 * kSecond),
              3.33, 0.20);
}

TEST_F(Fig6Test, FlowACompletesNearPaperTime) {
  const auto& a = result_->flow_named("a");
  ASSERT_TRUE(a.completed_at.has_value());
  EXPECT_NEAR(to_seconds(*a.completed_at), 66.0, 2.0);
}

TEST_F(Fig6Test, PhaseTwoAggregationAcrossInterfaces) {
  const auto& r = *result_;
  // After a completes, b immediately climbs to ~8.67 Mb/s using BOTH
  // interfaces; c rises to ~4.33.
  EXPECT_NEAR(r.flow_named("b").mean_rate_mbps(70 * kSecond, 83 * kSecond),
              8.67, 0.35);
  EXPECT_NEAR(r.flow_named("c").mean_rate_mbps(70 * kSecond, 83 * kSecond),
              4.33, 0.30);
}

TEST_F(Fig6Test, FlowBCompletesNearPaperTime) {
  const auto& b = result_->flow_named("b");
  ASSERT_TRUE(b.completed_at.has_value());
  EXPECT_NEAR(to_seconds(*b.completed_at), 85.0, 2.5);
}

TEST_F(Fig6Test, PhaseThreeLastFlowTakesEverything) {
  EXPECT_NEAR(
      result_->flow_named("c").mean_rate_mbps(90 * kSecond, 99 * kSecond),
      10.0, 0.30);
}

TEST_F(Fig6Test, FlowBUsesBothInterfacesOverall) {
  const auto& b = result_->flow_named("b");
  // if1 carries b only during phase 2 (~19 s x 3 Mb/s ~ 7 MB).
  EXPECT_GT(b.bytes_per_iface[0], 4'000'000u);
  EXPECT_GT(b.bytes_per_iface[1], 40'000'000u);
}

TEST_F(Fig6Test, InterfacePreferencesRespected) {
  const auto& a = result_->flow_named("a");
  const auto& c = result_->flow_named("c");
  EXPECT_EQ(a.bytes_per_iface[1], 0u) << "flow a must never touch if2";
  EXPECT_EQ(c.bytes_per_iface[0], 0u) << "flow c must never touch if1";
}

TEST_F(Fig6Test, ClusterTimelineMatchesFig8) {
  // Phase 1: two clusters ({a|if1}, {b,c|if2}); phase 2: one merged
  // cluster; phase 3: {c | if2} (if1 idle).
  const auto at = [&](SimTime t) -> const ClusterSnapshot& {
    const ClusterSnapshot* best = &result_->clusters.front();
    for (const auto& snap : result_->clusters) {
      if (snap.at <= t) best = &snap;
    }
    return *best;
  };
  EXPECT_EQ(at(30 * kSecond).analysis.clusters.size(), 2u);
  EXPECT_EQ(at(75 * kSecond).analysis.clusters.size(), 1u);
  const auto& final_snap = at(95 * kSecond);
  ASSERT_EQ(final_snap.analysis.clusters.size(), 1u);
  EXPECT_EQ(final_snap.analysis.clusters[0].flows.size(), 1u);
}

TEST_F(Fig6Test, ConvergenceWithinFirstSeconds) {
  // Fig 6(c): flow a starts below its fair share but corrects quickly; by
  // t in [3 s, 5 s] it is within 20% of 3 Mb/s.
  const auto& a = result_->flow_named("a");
  EXPECT_NEAR(a.mean_rate_mbps(3 * kSecond, 5 * kSecond), 3.0, 0.6);
}

}  // namespace
}  // namespace midrr
