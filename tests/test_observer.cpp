// Tests for the scheduler trace/observer layer: the recorded event stream
// must mirror the algorithm's actual behaviour -- including the signature
// Fig 1(c) pattern where interface 2 repeatedly SKIPs flow a because
// interface 1 keeps its service flag set.
#include <gtest/gtest.h>

#include "sched/midrr.hpp"
#include "sched/observer.hpp"

namespace midrr {
namespace {

TEST(TraceRecorder, CountsAndRendering) {
  TraceRecorder trace(16);
  trace.on_turn_granted(kMillisecond, 0, 1, 1500);
  trace.on_packet_sent(2 * kMillisecond, 0, 1, 1000);
  trace.on_flag_skip(3 * kMillisecond, 2, 1);
  trace.on_flow_drained(4 * kMillisecond, 0);
  EXPECT_EQ(trace.total_events(), 4u);
  EXPECT_EQ(trace.grants(0, 1), 1u);
  EXPECT_EQ(trace.sends(0, 1), 1u);
  EXPECT_EQ(trace.skips(2, 1), 1u);
  EXPECT_EQ(trace.skips(0, 1), 0u);
  const std::string text = trace.render();
  EXPECT_NE(text.find("GRANT flow0 dc=1500"), std::string::npos);
  EXPECT_NE(text.find("SEND flow0 bytes=1000"), std::string::npos);
  EXPECT_NE(text.find("iface1 SKIP flow2"), std::string::npos);
  EXPECT_NE(text.find("DRAIN flow0"), std::string::npos);
}

TEST(TraceRecorder, RingBufferEvicts) {
  TraceRecorder trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.on_flag_skip(i, 0, 0);
  }
  EXPECT_EQ(trace.entries().size(), 4u);
  EXPECT_EQ(trace.total_events(), 10u);
  EXPECT_EQ(trace.entries().front().at, 6);
  trace.clear();
  EXPECT_EQ(trace.total_events(), 0u);
  EXPECT_TRUE(trace.entries().empty());
}

TEST(Observer, Fig1cSkipPatternVisible) {
  // Drive the Fig 1(c) topology by hand, alternating the two interfaces
  // (as equal-speed links would): the trace must show iface 1 skipping
  // flow a, and flow a never being SENT on iface 1.
  MiDrrScheduler s(1500);
  TraceRecorder trace;
  s.set_observer(&trace);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}, .name = "a"});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j1}, .name = "b"});
  for (int i = 0; i < 200; ++i) {
    s.enqueue(Packet(a, 1500), 0);
    s.enqueue(Packet(b, 1500), 0);
  }
  for (int i = 0; i < 100; ++i) {
    s.dequeue(j0, i);
    s.dequeue(j1, i);
  }
  EXPECT_GT(trace.skips(a, j1), 50u)
      << "iface 1 must keep skipping flow a (flag set by iface 0)";
  EXPECT_EQ(trace.skips(b, j1), 0u);
  EXPECT_EQ(trace.skips(a, j0), 0u) << "nobody sets flags at a's only server";
  EXPECT_EQ(trace.sends(a, j0), 100u);
  EXPECT_GE(trace.sends(b, j1), 95u);
  // Each send is backed by a grant with sufficient deficit.
  EXPECT_GE(trace.grants(a, j0), trace.sends(a, j0));
}

TEST(Observer, DrainEventOnQueueEmpty) {
  MiDrrScheduler s(1500);
  TraceRecorder trace;
  s.set_observer(&trace);
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(f, 500), 0);
  s.dequeue(j, 7);
  ASSERT_EQ(trace.entries().back().event, TraceRecorder::Event::kDrain);
  EXPECT_EQ(trace.entries().back().at, 7);
}

TEST(Observer, DetachStopsEvents) {
  MiDrrScheduler s(1500);
  TraceRecorder trace;
  s.set_observer(&trace);
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(f, 500), 0);
  s.dequeue(j, 0);
  const auto before = trace.total_events();
  s.set_observer(nullptr);
  s.enqueue(Packet(f, 500), 0);
  s.dequeue(j, 0);
  EXPECT_EQ(trace.total_events(), before);
}

}  // namespace
}  // namespace midrr
