// End-to-end egress over real loopback sockets: midrr_rt's datapath with
// the UDP backend sending actual datagrams to an in-process receiver.
//
// Two headline claims:
//   * Fairness survives the wire: per-flow bytes DELIVERED on real
//     sockets (credited from WireHeader::size_bytes, exactly the way
//     tools/midrr_rx counts) match the weighted max-min reference within
//     the same tolerance the simulator e2e tests use.
//   * Conservation survives chaos: through a kill -> flap -> revive
//     FaultPlan the extended identity holds --
//         offered  == dequeued + fanin + tail + shed + straggler
//         dequeued == sent + io_drops (+ io_pending, 0 after stop)
//     and the wire adds its own ledger: per flow,
//         delivered datagrams + sequence gaps == packets sent,
//     so even kernel-side loss is visible and accounted, never silent.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fairness/maxmin.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "io/udp_backend.hpp"
#include "io/uring_backend.hpp"
#include "io/wire.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "util/time.hpp"

namespace midrr::io {
namespace {

using rt::LoadGenerator;
using rt::LoadGeneratorOptions;
using rt::Runtime;
using rt::RuntimeOptions;
using rt::RuntimeStats;

// Rate checks are wall-clock claims; sanitized builds run several times
// slower and need the wider bound (same scheme as test_fault_e2e).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kRateTolerance = 0.40;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kRateTolerance = 0.40;
#else
constexpr double kRateTolerance = 0.15;
#endif
#else
constexpr double kRateTolerance = 0.15;
#endif

bool wait_for(double seconds, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

std::uint64_t accounted(const RuntimeStats& s) {
  return s.dequeued + s.fanin_drops + s.tail_drops + s.shed_drops +
         s.straggler_drops;
}

/// In-process stand-in for tools/midrr_rx: binds one UDP socket per
/// "interface" on an ephemeral loopback port, parses WireHeaders, and
/// keeps the same ledgers midrr_rx prints (per-flow credited scheduler
/// bytes, per-(port, flow) sequence gaps).
class LoopbackReceiver {
 public:
  explicit LoopbackReceiver(std::size_t ports) {
    for (std::size_t j = 0; j < ports; ++j) {
      const int fd =
          ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      EXPECT_GE(fd, 0) << std::strerror(errno);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = 0;  // ephemeral: no fixed-port collisions in CI
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
                0)
          << std::strerror(errno);
      // Deep receive buffer (clamped to rmem_max): the sender can burst a
      // whole pacer bucket at once.
      const int rcvbuf = 4 * 1024 * 1024;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len),
                0);
      fds_.push_back(fd);
      ports_.push_back(ntohs(bound.sin_port));
      next_seq_.emplace_back();
    }
  }

  ~LoopbackReceiver() {
    stop();
    for (const int fd : fds_) ::close(fd);
  }

  void start() {
    running_.store(true);
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    if (!running_.exchange(false)) return;
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port(std::size_t j) const { return ports_[j]; }

  std::uint64_t credited_bytes(FlowId flow) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = credited_.find(flow);
    return it == credited_.end() ? 0 : it->second;
  }
  std::uint64_t datagrams(FlowId flow) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = datagrams_.find(flow);
    return it == datagrams_.end() ? 0 : it->second;
  }
  std::uint64_t total_datagrams() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto& [flow, count] : datagrams_) total += count;
    return total;
  }
  std::uint64_t gaps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gaps_;
  }
  std::uint64_t parse_errors() const {
    std::lock_guard<std::mutex> lock(mu_);
    return parse_errors_;
  }

 private:
  void run() {
    std::vector<pollfd> pfds(fds_.size());
    for (std::size_t j = 0; j < fds_.size(); ++j) {
      pfds[j].fd = fds_[j];
      pfds[j].events = POLLIN;
    }
    std::vector<net::Byte> buf(65536);
    while (running_.load(std::memory_order_relaxed)) {
      const int ready = ::poll(pfds.data(), pfds.size(), 10);
      if (ready <= 0) continue;
      for (std::size_t j = 0; j < fds_.size(); ++j) {
        if ((pfds[j].revents & POLLIN) == 0) continue;
        while (true) {
          const ssize_t n = ::recvfrom(fds_[j], buf.data(), buf.size(), 0,
                                       nullptr, nullptr);
          if (n < 0) break;  // EAGAIN: socket drained
          std::lock_guard<std::mutex> lock(mu_);
          const auto header = WireHeader::decode(std::span<const net::Byte>(
              buf.data(), static_cast<std::size_t>(n)));
          if (!header.has_value()) {
            ++parse_errors_;
            continue;
          }
          ++datagrams_[header->flow];
          credited_[header->flow] += header->size_bytes;
          auto [it, fresh] = next_seq_[j].try_emplace(header->flow, 0);
          if (header->seq > it->second) gaps_ += header->seq - it->second;
          it->second = std::max(it->second, header->seq) + 1;
        }
      }
    }
  }

  std::vector<int> fds_;
  std::vector<std::uint16_t> ports_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;
  std::map<FlowId, std::uint64_t> credited_;
  std::map<FlowId, std::uint64_t> datagrams_;
  std::vector<std::map<FlowId, std::uint64_t>> next_seq_;  // per port
  std::uint64_t gaps_ = 0;
  std::uint64_t parse_errors_ = 0;
};

/// UdpBackend options pointed at the receiver's ephemeral ports.
UdpBackendOptions options_for(const LoopbackReceiver& receiver,
                              std::size_t ifaces) {
  UdpBackendOptions options;
  for (std::size_t j = 0; j < ifaces; ++j) {
    UdpDestination dest;
    dest.host = "127.0.0.1";
    dest.port = receiver.port(j);
    options.dest_by_name["if" + std::to_string(j)] = dest;
  }
  return options;
}

// --- Delivered bytes vs the max-min reference -------------------------------

TEST(IoE2E, LoopbackDeliveryMatchesMaxMinReference) {
  // 4 equal-weight flows, each willing on both of two equal paced links:
  // the reference allocation is a uniform 2 * cap / 4 per flow.  The
  // check runs on the RECEIVER's ledger -- bytes that really crossed a
  // socket -- windowed against the runtime clock exactly like the
  // simulator fairness smoke.
  const double cap = mbps(20);
  fair::MaxMinInput input;
  input.capacities_bps = {cap, cap};
  input.weights = {1.0, 1.0, 1.0, 1.0};
  input.willing = {{true, true}, {true, true}, {true, true}, {true, true}};
  const auto reference = fair::solve_max_min(input);

  LoopbackReceiver receiver(2);
  receiver.start();
  UdpBackend backend(options_for(receiver, 2));

  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;  // exact paper semantics (coupled interfaces)
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(cap));
  runtime.add_interface("if1", RateProfile(cap));
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(runtime.control().add_flow(
        {.willing = {0, 1}, .name = "f" + std::to_string(i)}));
  }
  runtime.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();

  // Warm up, then measure a fixed window on the receiver side.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::vector<std::uint64_t> before;
  for (const FlowId f : flows) before.push_back(receiver.credited_bytes(f));
  const SimTime t0 = runtime.now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  const SimTime t1 = runtime.now_ns();
  std::vector<double> measured_bps;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const std::uint64_t delta =
        receiver.credited_bytes(flows[i]) - before[i];
    measured_bps.push_back(rate_bps(delta, t1 - t0));
  }

  generator.stop();
  // Quiescence: both layers of the identity close once ingress stops.
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s) && s.dequeued == s.sent + s.io_drops;
  }));
  runtime.stop();
  // Give the last in-flight loopback datagrams a moment to land.
  const RuntimeStats stats = runtime.stats();
  wait_for(5.0, [&] {
    return receiver.total_datagrams() + receiver.gaps() >= stats.sent;
  });
  receiver.stop();

  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_send_errors, 0u) << "loopback must not error";
  EXPECT_EQ(receiver.parse_errors(), 0u);
  // The wire ledger closes exactly: every packet the runtime counted as
  // sent either arrived or is a visible sequence gap.
  EXPECT_EQ(receiver.total_datagrams() + receiver.gaps(), stats.sent);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double want = reference.rates_bps[i];
    EXPECT_NEAR(measured_bps[i], want, want * kRateTolerance)
        << "flow " << i << " delivered " << to_mbps(measured_bps[i])
        << " Mb/s on the wire, reference " << to_mbps(want) << " Mb/s";
  }
}

// --- Conservation through kill -> flap -> revive ----------------------------

TEST(IoE2E, KillFlapReviveUnderUdpKeepsExtendedIdentity) {
  // The test_fault_e2e chaos plan, now with real sockets underneath: the
  // link verdicts, re-steers, and revives must not open a hole in either
  // layer of the conservation identity, and the receiver's sequence
  // ledger must account for every datagram the runtime claims it sent.
  fault::FaultInjector injector(fault::FaultPlan::parse_json(
      R"({"seed": 11, "events": [
      {"at_ms": 300,  "kind": "iface_down", "iface": 1},
      {"at_ms": 900,  "kind": "iface_up",   "iface": 1},
      {"at_ms": 1200, "kind": "iface_flap", "iface": 1,
       "period_ms": 60, "duty": 0.5, "duration_ms": 300}]})"));

  LoopbackReceiver receiver(2);
  receiver.start();
  UdpBackend backend(options_for(receiver, 2));

  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;
  options.fault = &injector;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(mbps(30)));
  runtime.add_interface("if1", RateProfile(mbps(30)));
  const FlowId a = runtime.control().add_flow({.willing = {0}, .name = "a"});
  const FlowId b =
      runtime.control().add_flow({.willing = {0, 1}, .name = "b"});
  const FlowId c = runtime.control().add_flow({.willing = {1}, .name = "c"});
  runtime.start();

  fault::SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 10 * kMillisecond;
  sup_options.dead_after_probes = 8;
  sup_options.healthy_after_probes = 3;
  fault::Supervisor supervisor(runtime, sup_options, &runtime);
  supervisor.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();

  // Ride through the kill: detection, quarantine of "c", then recovery
  // through the flap storm.
  ASSERT_TRUE(wait_for(10.0, [&] {
    return supervisor.link_state(1) == fault::LinkState::kDead;
  }));
  ASSERT_TRUE(
      wait_for(10.0, [&] { return runtime.stats().quarantine_rejects > 0; }));
  ASSERT_TRUE(wait_for(15.0, [&] {
    return runtime.now_ns() > 1600 * kMillisecond &&
           supervisor.link_state(1) == fault::LinkState::kHealthy &&
           !runtime.control().iface_down(1);
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  generator.stop();
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s) && s.dequeued == s.sent + s.io_drops;
  })) << "both layers of the conservation identity must close";
  supervisor.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, accounted(stats)) << "zero silent packet loss";
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops + stats.io_pending);
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_GE(supervisor.transitions(), 2u) << "at least kill and revive";
  EXPECT_GT(stats.quarantine_rejects, 0u);

  // Wire-level closure: delivered + gaps == sent, per flow and in total.
  wait_for(5.0, [&] {
    return receiver.total_datagrams() + receiver.gaps() >= stats.sent;
  });
  receiver.stop();
  EXPECT_EQ(receiver.parse_errors(), 0u);
  EXPECT_EQ(receiver.total_datagrams() + receiver.gaps(), stats.sent);
  for (const FlowId f : {a, b, c}) {
    EXPECT_EQ(receiver.credited_bytes(f),
              receiver.datagrams(f) * load.packet_bytes)
        << "every delivered datagram credits its scheduler bytes";
    EXPECT_LE(receiver.credited_bytes(f), runtime.sent_bytes(f));
  }
  EXPECT_GT(receiver.datagrams(a), 0u);
  EXPECT_GT(receiver.datagrams(b), 0u);
  EXPECT_GT(receiver.datagrams(c), 0u) << "flow c must recover post-revive";
}

// --- io_uring over real loopback --------------------------------------------
//
// The same two headline claims, now through the completion-driven fast
// path: real rings, SEND_ZC from registered PacketPool slabs, and the
// extended identity (dequeued == sent + io_drops + io_pending +
// io_inflight) draining to zero at quiescence.  Skipped VISIBLY -- not
// silently green -- when the build lacks MIDRR_WITH_URING or the kernel
// denies io_uring_setup (seccomp/EPERM on locked-down CI hosts).

/// Gate for every uring e2e test; GTEST_SKIP must run in the test body.
#define MIDRR_REQUIRE_URING_RUNTIME()                                       \
  do {                                                                      \
    if (!uring_supported())                                                 \
      GTEST_SKIP() << "built without -DMIDRR_WITH_URING=ON";                \
    int probe_errno_ = 0;                                                   \
    if (!uring_runtime_available(&probe_errno_))                            \
      GTEST_SKIP() << "kernel denies io_uring_setup: "                      \
                   << std::strerror(probe_errno_);                          \
  } while (0)

UringBackendOptions uring_options_for(const LoopbackReceiver& receiver,
                                      std::size_t ifaces) {
  UringBackendOptions options;
  for (std::size_t j = 0; j < ifaces; ++j) {
    UdpDestination dest;
    dest.host = "127.0.0.1";
    dest.port = receiver.port(j);
    options.dest_by_name["if" + std::to_string(j)] = dest;
  }
  return options;
}

/// Pooled payloads with wire headroom so the backend's registered-buffer
/// zero-copy path is the one under test, not the sendmsg fallback.
LoadGeneratorOptions pooled_load_for_uring() {
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  load.payload = LoadGeneratorOptions::PayloadMode::kPooled;
  load.frame_headroom = kWireScratchBytes;
  load.pool.precarve = true;
  load.pool.max_slabs = 8;  // ~4k slots; bounds the precarve footprint
  return load;
}

TEST(IoE2E, UringLoopbackDeliveryMatchesMaxMinReference) {
  MIDRR_REQUIRE_URING_RUNTIME();
  const double cap = mbps(20);
  fair::MaxMinInput input;
  input.capacities_bps = {cap, cap};
  input.weights = {1.0, 1.0, 1.0, 1.0};
  input.willing = {{true, true}, {true, true}, {true, true}, {true, true}};
  const auto reference = fair::solve_max_min(input);

  LoopbackReceiver receiver(2);
  receiver.start();
  UringBackend backend(uring_options_for(receiver, 2));

  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(cap));
  runtime.add_interface("if1", RateProfile(cap));
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(runtime.control().add_flow(
        {.willing = {0, 1}, .name = "f" + std::to_string(i)}));
  }
  runtime.start();

  LoadGeneratorOptions load = pooled_load_for_uring();
  LoadGenerator generator(runtime, load);
  for (std::size_t p = 0; p < load.producers; ++p) {
    if (const net::FramePool* pool = generator.frame_pool(p)) {
      backend.register_frame_pool(*pool);
    }
  }
  generator.start();

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::vector<std::uint64_t> before;
  for (const FlowId f : flows) before.push_back(receiver.credited_bytes(f));
  const SimTime t0 = runtime.now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  const SimTime t1 = runtime.now_ns();
  std::vector<double> measured_bps;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const std::uint64_t delta =
        receiver.credited_bytes(flows[i]) - before[i];
    measured_bps.push_back(rate_bps(delta, t1 - t0));
  }

  generator.stop();
  // Quiescence with the in-flight term: every dequeued packet must reach
  // a terminal fate AND the kernel must hand every completion back.
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s) &&
           s.dequeued == s.sent + s.io_drops && s.io_inflight == 0;
  })) << "the extended identity must drain to quiescence";
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  wait_for(5.0, [&] {
    return receiver.total_datagrams() + receiver.gaps() >= stats.sent;
  });
  receiver.stop();

  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_inflight, 0u);
  EXPECT_EQ(stats.io_send_errors, 0u) << "loopback must not error";
  EXPECT_EQ(receiver.parse_errors(), 0u);
  // Exact wire ledger through real rings: every packet the runtime
  // counted as sent either arrived or is a visible sequence gap.
  EXPECT_EQ(receiver.total_datagrams() + receiver.gaps(), stats.sent);
  // The zero-copy path must actually have carried traffic when the
  // kernel supports SEND_ZC; otherwise the test would be green while
  // silently benchmarking the fallback.
  if (backend.zerocopy_active()) {
    EXPECT_GT(backend.registered_buffers(), 0u);
    EXPECT_GT(backend.fixed_sends(0) + backend.fixed_sends(1), 0u)
        << "pooled frames should ride the registered-buffer path";
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double want = reference.rates_bps[i];
    EXPECT_NEAR(measured_bps[i], want, want * kRateTolerance)
        << "flow " << i << " delivered " << to_mbps(measured_bps[i])
        << " Mb/s on the wire, reference " << to_mbps(want) << " Mb/s";
  }
}

TEST(IoE2E, UringKillFlapReviveKeepsExtendedIdentity) {
  MIDRR_REQUIRE_URING_RUNTIME();
  // The UDP chaos plan on the completion-driven path: link verdicts and
  // re-steers while CQEs are still in flight must not open a hole in the
  // identity -- the in-flight term makes the window visible instead of
  // hiding it.
  fault::FaultInjector injector(fault::FaultPlan::parse_json(
      R"({"seed": 11, "events": [
      {"at_ms": 300,  "kind": "iface_down", "iface": 1},
      {"at_ms": 900,  "kind": "iface_up",   "iface": 1},
      {"at_ms": 1200, "kind": "iface_flap", "iface": 1,
       "period_ms": 60, "duty": 0.5, "duration_ms": 300}]})"));

  LoopbackReceiver receiver(2);
  receiver.start();
  UringBackend backend(uring_options_for(receiver, 2));

  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;
  options.fault = &injector;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(mbps(30)));
  runtime.add_interface("if1", RateProfile(mbps(30)));
  const FlowId a = runtime.control().add_flow({.willing = {0}, .name = "a"});
  const FlowId b =
      runtime.control().add_flow({.willing = {0, 1}, .name = "b"});
  const FlowId c = runtime.control().add_flow({.willing = {1}, .name = "c"});
  runtime.start();

  fault::SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 10 * kMillisecond;
  sup_options.dead_after_probes = 8;
  sup_options.healthy_after_probes = 3;
  fault::Supervisor supervisor(runtime, sup_options, &runtime);
  supervisor.start();

  LoadGeneratorOptions load = pooled_load_for_uring();
  LoadGenerator generator(runtime, load);
  for (std::size_t p = 0; p < load.producers; ++p) {
    if (const net::FramePool* pool = generator.frame_pool(p)) {
      backend.register_frame_pool(*pool);
    }
  }
  generator.start();

  ASSERT_TRUE(wait_for(10.0, [&] {
    return supervisor.link_state(1) == fault::LinkState::kDead;
  }));
  ASSERT_TRUE(
      wait_for(10.0, [&] { return runtime.stats().quarantine_rejects > 0; }));
  ASSERT_TRUE(wait_for(15.0, [&] {
    return runtime.now_ns() > 1600 * kMillisecond &&
           supervisor.link_state(1) == fault::LinkState::kHealthy &&
           !runtime.control().iface_down(1);
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  generator.stop();
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s) &&
           s.dequeued == s.sent + s.io_drops && s.io_inflight == 0;
  })) << "both layers of the extended identity must close";
  supervisor.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, accounted(stats)) << "zero silent packet loss";
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops + stats.io_pending +
                                stats.io_inflight);
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_inflight, 0u);
  EXPECT_GE(supervisor.transitions(), 2u) << "at least kill and revive";
  EXPECT_GT(stats.quarantine_rejects, 0u);

  wait_for(5.0, [&] {
    return receiver.total_datagrams() + receiver.gaps() >= stats.sent;
  });
  receiver.stop();
  EXPECT_EQ(receiver.parse_errors(), 0u);
  EXPECT_EQ(receiver.total_datagrams() + receiver.gaps(), stats.sent);
  for (const FlowId f : {a, b, c}) {
    EXPECT_EQ(receiver.credited_bytes(f),
              receiver.datagrams(f) * load.packet_bytes)
        << "every delivered datagram credits its scheduler bytes";
    EXPECT_LE(receiver.credited_bytes(f), runtime.sent_bytes(f));
  }
  EXPECT_GT(receiver.datagrams(a), 0u);
  EXPECT_GT(receiver.datagrams(b), 0u);
  EXPECT_GT(receiver.datagrams(c), 0u) << "flow c must recover post-revive";
}

}  // namespace
}  // namespace midrr::io
