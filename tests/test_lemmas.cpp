// Executable versions of the paper's Section 4 lemmas on a running miDRR:
//   Lemma 3: 0 <= DC_i <= MaxSize at the end of each service turn;
//   Lemma 5: FM_{i->j} > -2*MaxSize' for i served at a higher rate than j;
//   Lemma 6: |FM_{i->j}| < Q' + 2*MaxSize' for flows sharing an interface.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "fairness/metrics.hpp"
#include "sched/midrr.hpp"

namespace midrr {
namespace {

TEST(Lemma3, DeficitBoundedDuringLongRun) {
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 2.0, .willing = {j1}});
  const FlowId c = s.add_flow({.weight = 1.0, .willing = {j0}});
  Rng rng(17);
  auto sizes = SizeDistribution::bimodal(40, 1500, 0.4);
  for (int round = 0; round < 2000; ++round) {
    // Keep everyone backlogged.
    for (FlowId f : {a, b, c}) {
      while (s.backlog_packets(f) < 3) {
        s.enqueue(Packet(f, sizes.sample(rng)), 0);
      }
    }
    s.dequeue(round % 2 == 0 ? j0 : j1, 0);
    // Deficit stays within [0, MaxSize + Q_i) at all observation points
    // (the Lemma 3 bound holds at end-of-turn; between turns one quantum
    // may be pending).
    EXPECT_GE(s.deficit_of(a), 0);
    EXPECT_GE(s.deficit_of(b), 0);
    EXPECT_GE(s.deficit_of(c), 0);
    EXPECT_LE(s.deficit_of(a), 1500 + s.quantum_of(a));
    EXPECT_LE(s.deficit_of(b), 1500 + s.quantum_of(b));
    EXPECT_LE(s.deficit_of(c), 1500 + s.quantum_of(c));
  }
}

class LemmaScenarioTest : public ::testing::Test {
 protected:
  // Fig 1(c)-like: a is in a faster cluster than b and c; b and c share if2.
  // if1 = 4 Mb/s (a alone), if2 = 2 Mb/s (b, c share).
  void SetUp() override {
    scenario_.interface("if1", RateProfile(mbps(4)));
    scenario_.interface("if2", RateProfile(mbps(2)));
    scenario_.backlogged_flow("a", 1.0, {"if1"});
    scenario_.backlogged_flow("b", 1.0, {"if2"});
    scenario_.backlogged_flow("c", 1.0, {"if2"});
  }
  Scenario scenario_;
};

TEST_F(LemmaScenarioTest, Lemma5FasterFlowNeverLagsByTwoMaxPackets) {
  RunnerOptions opt;
  opt.quantum_base = 1500;
  ScenarioRunner runner(scenario_, Policy::kMiDrr, opt);

  // Sample FM over many adjacent intervals during the steady state.
  auto& sched = runner.scheduler();
  runner.run(5 * kSecond);  // warm up
  constexpr double kMaxSize = 1500.0;
  fair::ServiceSnapshot prev(sched);
  for (int k = 0; k < 40; ++k) {
    runner.run((5 + k) * kSecond + 500 * kMillisecond);
    fair::ServiceSnapshot cur(sched);
    // Flow a (id 0) is served at ~4 Mb/s; flows b=1, c=2 at ~1 Mb/s.
    const double fm_ab = cur.fm_since(prev, 0, 1.0, 1, 1.0);
    const double fm_ac = cur.fm_since(prev, 0, 1.0, 2, 1.0);
    EXPECT_GT(fm_ab, -2.0 * kMaxSize);
    EXPECT_GT(fm_ac, -2.0 * kMaxSize);
    prev = cur;
  }
}

TEST_F(LemmaScenarioTest, Lemma6SharedInterfaceServiceGapBounded) {
  RunnerOptions opt;
  opt.quantum_base = 1500;
  ScenarioRunner runner(scenario_, Policy::kMiDrr, opt);
  auto& sched = runner.scheduler();
  runner.run(5 * kSecond);
  constexpr double kMaxSize = 1500.0;
  const double q_prime = 1500.0;  // Q_i / phi_i with phi = 1
  fair::ServiceSnapshot prev(sched);
  for (int k = 0; k < 40; ++k) {
    runner.run((5 + k) * kSecond + 500 * kMillisecond);
    fair::ServiceSnapshot cur(sched);
    // b (1) and c (2) always share if2.
    const double fm_bc = cur.fm_since(prev, 1, 1.0, 2, 1.0);
    EXPECT_LT(std::abs(fm_bc), q_prime + 2.0 * kMaxSize);
    prev = cur;
  }
}

TEST(DirectionalFm, DefinitionMatchesPaper) {
  // S_i = 3000 bytes at weight 2, S_j = 1000 at weight 1:
  // FM = 3000/2 - 1000/1 = 500.
  EXPECT_DOUBLE_EQ(fair::directional_fm(3000, 2.0, 1000, 1.0), 500.0);
  EXPECT_DOUBLE_EQ(fair::directional_fm(1000, 1.0, 3000, 2.0), -500.0);
  EXPECT_THROW(fair::directional_fm(1, 0.0, 1, 1.0), PreconditionError);
}

TEST(ServiceSnapshot, DifferencesAreMonotone) {
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  fair::ServiceSnapshot t0(s);
  for (int i = 0; i < 5; ++i) s.enqueue(Packet(a, 1000), 0);
  for (int i = 0; i < 3; ++i) s.dequeue(j, 0);
  fair::ServiceSnapshot t1(s);
  EXPECT_EQ(t1.service_since(t0, a), 3000u);
  EXPECT_THROW(t0.service_since(t1, a), PreconditionError);
}

TEST(Lemma6, TighterQuantumTightensFairness) {
  // Ablation-style check: the Lemma 6 bound scales with Q'; with a smaller
  // quantum the observed |FM| between equal-weight flows sharing an
  // interface shrinks accordingly.
  for (const std::uint32_t quantum : {300u, 3000u}) {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(2)));
    sc.backlogged_flow("x", 1.0, {"if1"}, 0, 300);
    sc.backlogged_flow("y", 1.0, {"if1"}, 0, 300);
    RunnerOptions opt;
    opt.quantum_base = quantum;
    ScenarioRunner runner(sc, Policy::kMiDrr, opt);
    auto& sched = runner.scheduler();
    runner.run(2 * kSecond);
    fair::ServiceSnapshot prev(sched);
    double worst = 0.0;
    for (int k = 0; k < 20; ++k) {
      runner.run(2 * kSecond + (k + 1) * 100 * kMillisecond);
      fair::ServiceSnapshot cur(sched);
      worst = std::max(worst, std::abs(cur.fm_since(prev, 0, 1.0, 1, 1.0)));
      prev = cur;
    }
    EXPECT_LT(worst, quantum + 2.0 * 300.0) << "quantum " << quantum;
  }
}

}  // namespace
}  // namespace midrr
