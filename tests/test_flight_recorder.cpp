// FlightRecorder: ring retention, merged-timeline ordering, JSON dumps,
// and the async-signal-safe fatal path.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"

namespace {

using midrr::telemetry::FlightCategory;
using midrr::telemetry::FlightCode;
using midrr::telemetry::FlightEvent;
using midrr::telemetry::FlightLog;
using midrr::telemetry::FlightRecorder;

TEST(FlightLog, RetainsOnlyTheLastCapacityEvents) {
  FlightRecorder recorder(/*per_writer_capacity=*/4);
  FlightLog& log = recorder.add_writer("w");
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.log(i, FlightCategory::kRuntime, FlightCode::kNote, i);
  }
  EXPECT_EQ(log.logged(), 10u);
  EXPECT_EQ(recorder.events_logged(), 10u);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The surviving window is the most recent one, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
  }
}

TEST(FlightRecorder, MergesWritersIntoOneMonotonicTimeline) {
  FlightRecorder recorder(8);
  FlightLog& a = recorder.add_writer("alpha");
  FlightLog& b = recorder.add_writer("beta");
  // Interleaved wall-clock order, logged out of order across writers.
  a.log(10, FlightCategory::kRuntime, FlightCode::kWorkerStart, 0);
  b.log(5, FlightCategory::kIo, FlightCode::kIoPushback, 2, 1);
  a.log(30, FlightCategory::kRuntime, FlightCode::kWorkerExit, 0);
  b.log(20, FlightCategory::kSupervisor, FlightCode::kLinkDead, 1);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns) << "merge must sort";
  }
  EXPECT_EQ(events.front().t_ns, 5u);
  EXPECT_EQ(events.front().writer, b.id());
  EXPECT_EQ(events.back().t_ns, 30u);
  EXPECT_EQ(events.back().writer, a.id());
}

TEST(FlightRecorder, DumpJsonCarriesReasonWritersAndEvents) {
  FlightRecorder recorder(8);
  FlightLog& log = recorder.add_writer("worker0");
  log.log(42, FlightCategory::kHealth, FlightCode::kHealthDegraded, 7, 9);
  const std::string json = recorder.dump_json("unit test", 1000);
  EXPECT_NE(json.find("\"reason\":\"unit test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dumped_at_ns\":1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"worker0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"health_degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"t_ns\":42"), std::string::npos) << json;

  const std::string path = ::testing::TempDir() + "flight_dump_test.json";
  EXPECT_TRUE(recorder.dump_to_file(path, "to disk", 2000));
  EXPECT_EQ(recorder.dumps(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"to disk\""), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(recorder.dump_to_file("/nonexistent-dir/x.json", "r", 0));
}

TEST(FlightRecorder, SignalDumpIsWrittenWithWriteOnly) {
  // Exercise the handler body directly: it must produce valid output with
  // nothing but write(2) on a plain fd.
  FlightRecorder recorder(8);
  FlightLog& log = recorder.add_writer("w");
  log.log(7, FlightCategory::kFault, FlightCode::kFaultScale, 1, 500);
  const std::string path = ::testing::TempDir() + "flight_signal_test.json";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  recorder.write_signal_dump(fd, SIGSEGV);
  ::close(fd);
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  EXPECT_NE(dump.find("\"signal\":11"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"t_ns\":7"), std::string::npos) << dump;
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, FatalSignalProducesPostMortem) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = ::testing::TempDir() + "flight_fatal_test.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder recorder(8);
        FlightLog& log = recorder.add_writer("doomed");
        log.log(123, FlightCategory::kRuntime, FlightCode::kNote, 1, 2);
        if (!recorder.arm_fatal_dump(path)) _exit(97);
        std::raise(SIGABRT);
      },
      "");
  // The child died by the re-raised signal; its handler must have flushed
  // the post-mortem via write(2) before dying.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "fatal dump missing at " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"t_ns\":123"), std::string::npos) << buf.str();
  std::remove(path.c_str());
}

}  // namespace
