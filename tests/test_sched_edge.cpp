// Edge conditions of the scheduler machinery that the mainline tests do
// not reach: quantum-cache invalidation, topology changes mid-service,
// oracle corner cases, and scenario-runner boundary inputs.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sched/drr.hpp"
#include "sched/midrr.hpp"
#include "sched/oracle.hpp"
#include "sched/wfq.hpp"

namespace midrr {
namespace {

TEST(QuantumCache, InvalidatesWhenMinWeightFlowLeaves) {
  // Quanta are normalized by the minimum live weight; removing the
  // smallest-weight flow must re-normalize everyone.
  MiDrrScheduler s(1000);
  const IfaceId j = s.add_interface();
  const FlowId big = s.add_flow({.weight = 4.0, .willing = {j}});
  const FlowId small = s.add_flow({.weight = 0.5, .willing = {j}});
  EXPECT_EQ(s.quantum_of(big), 8000);
  EXPECT_EQ(s.quantum_of(small), 1000);
  s.remove_flow(small);
  EXPECT_EQ(s.quantum_of(big), 1000) << "big is now the smallest weight";
}

TEST(QuantumCache, InvalidatesOnReweight) {
  MiDrrScheduler s(1000);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  EXPECT_EQ(s.quantum_of(a), 1000);
  s.set_weight(b, 0.25);
  EXPECT_EQ(s.quantum_of(a), 4000);
  EXPECT_EQ(s.quantum_of(b), 1000);
}

TEST(MiDrrEdge, WillingnessFlipDuringActiveTurn) {
  // Revoking the current flow's willingness mid-turn must not corrupt the
  // ring or serve the flow again on that interface.
  MiDrrScheduler s(3000);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 4; ++i) {
    s.enqueue(Packet(a, 1000), 0);
    s.enqueue(Packet(b, 1000), 0);
  }
  const auto first = s.dequeue(j, 0);  // serves someone, turn open
  ASSERT_TRUE(first.has_value());
  s.set_willing(first->flow, j, false);
  for (int i = 0; i < 8; ++i) {
    const auto p = s.dequeue(j, 0);
    if (!p) break;
    EXPECT_NE(p->flow, first->flow);
  }
}

TEST(MiDrrEdge, InterfaceAddedAfterBackloggedFlows) {
  // Flows already backlogged when a new interface appears must enter its
  // ring as soon as willingness is granted.
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0}});
  for (int i = 0; i < 4; ++i) s.enqueue(Packet(a, 1000), 0);
  const IfaceId j1 = s.add_interface();
  EXPECT_FALSE(s.dequeue(j1, 0).has_value());
  s.set_willing(a, j1, true);
  EXPECT_TRUE(s.dequeue(j1, 0).has_value());
}

TEST(MiDrrEdge, ReaddingFlowAfterRemovalIsClean) {
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(a, 1000), 0);
  s.remove_flow(a);
  const FlowId b = s.add_flow({.weight = 2.0, .willing = {j}});
  EXPECT_NE(a, b);
  s.enqueue(Packet(b, 1000), 0);
  const auto p = s.dequeue(j, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, b);
  EXPECT_EQ(s.sent_bytes(b), 1000u);
}

TEST(WfqEdge, InterfaceAddedLaterGetsOwnVirtualClock) {
  PerIfaceWfqScheduler s;
  const IfaceId j0 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0}});
  for (int i = 0; i < 10; ++i) s.enqueue(Packet(a, 1000), 0);
  for (int i = 0; i < 5; ++i) s.dequeue(j0, 0);
  const IfaceId j1 = s.add_interface();
  EXPECT_DOUBLE_EQ(s.virtual_time(j1), 0.0);
  s.set_willing(a, j1, true);
  EXPECT_TRUE(s.dequeue(j1, 0).has_value());
  EXPECT_GT(s.virtual_time(j1), 0.0);
}

TEST(OracleEdge, ZeroCapacityEverywhereIdles) {
  OracleMaxMinScheduler s([](IfaceId) { return 0.0; });
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(a, 1000), 0);
  // Zero capacity -> zero targets; the oracle still serves (work
  // conservation: max lag regardless of sign), it just has no preference.
  EXPECT_TRUE(s.dequeue(j, 0).has_value());
}

TEST(OracleEdge, FlowChurnKeepsTargetsConsistent) {
  OracleMaxMinScheduler s([](IfaceId) { return 1e6; });
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(a, 1000), 0);
  EXPECT_TRUE(s.dequeue(j, kSecond).has_value());
  const FlowId b = s.add_flow({.weight = 2.0, .willing = {j}});
  for (int i = 0; i < 6; ++i) {
    s.enqueue(Packet(a, 1000), 2 * kSecond);
    s.enqueue(Packet(b, 1000), 2 * kSecond);
  }
  int served = 0;
  while (s.dequeue(j, 2 * kSecond + served * 8 * kMillisecond)) ++served;
  EXPECT_EQ(served, 12);
  s.remove_flow(b);
  s.enqueue(Packet(a, 1000), 3 * kSecond);
  EXPECT_TRUE(s.dequeue(j, 3 * kSecond).has_value());
}

TEST(RunnerEdge, ZeroDurationRunIsValid) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(0);
  // At t=0 the transmitter may already have PULLED one packet (scheduler
  // hand-off), but nothing can have finished transmitting yet.
  EXPECT_EQ(result.ifaces[0].bytes_sent, 0u);
  EXPECT_LE(result.flows[0].bytes_sent, 1500u);
}

TEST(RunnerEdge, FlowStartingAfterHorizonNeverRuns) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.backlogged_flow("late", 1.0, {"if1"}, 0, 1500, 100 * kSecond);
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(10 * kSecond);
  EXPECT_EQ(result.flows[0].bytes_sent, 0u);
  EXPECT_EQ(result.flows[0].id, kInvalidFlow);
}

TEST(RunnerEdge, BackwardHorizonRejected) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  runner.run(5 * kSecond);
  EXPECT_THROW(runner.run(2 * kSecond), PreconditionError);
}

TEST(RunnerEdge, EmptyScenarioRejected) {
  Scenario sc;
  EXPECT_THROW(ScenarioRunner(sc, Policy::kMiDrr), PreconditionError);
}

TEST(RunnerEdge, UnknownInterfaceNameInFlowRejectedAtStart) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"nope"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  EXPECT_THROW(runner.run(kSecond), PreconditionError);
}

TEST(DequeueBurstEdge, ZeroBudgetIsANoOp) {
  // A zero byte budget must return without granting a DRR turn: no deficit
  // moves, no service flag is set, and a later real budget sees the exact
  // state a fresh scheduler would have.
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 4; ++i) s.enqueue(Packet(a, 1000), 0);
  std::vector<Packet> out;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s.dequeue_burst(j, 0, 0, out), 0u);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(s.deficit_of(a), 0);
  EXPECT_EQ(s.backlog_packets(a), 4u);
  // The first real budget still serves normally.
  EXPECT_EQ(s.dequeue_burst(j, 1000, 0, out), 1u);
}

TEST(DequeueBurstEdge, EmptyRingReturnsZeroRepeatably) {
  // Draining an interface with no eligible flow -- never backlogged, or
  // drained dry mid-burst -- must return 0 cleanly, any number of times.
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  std::vector<Packet> out;
  EXPECT_EQ(s.dequeue_burst(j, 1 << 20, 0, out), 0u);  // never backlogged
  s.enqueue(Packet(a, 1000), 0);
  EXPECT_EQ(s.dequeue_burst(j, 1 << 20, 0, out), 1u);  // drains dry
  EXPECT_EQ(s.dequeue_burst(j, 1 << 20, 0, out), 0u);  // empty again
  EXPECT_EQ(s.dequeue_burst(j, 1 << 20, 0, out), 0u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(DequeueBurstEdge, SubPacketBudgetOvershootsByOnePacket) {
  // A budget smaller than the head packet still sends it (a transmit
  // opportunity is never wasted on a partial fit) -- but exactly one.
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 4; ++i) s.enqueue(Packet(a, 1000), 0);
  std::vector<Packet> out;
  EXPECT_EQ(s.dequeue_burst(j, 1, 0, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size_bytes, 1000u);
}

TEST(DequeueBurstEdge, UnknownInterfaceStillRejected) {
  MiDrrScheduler s(1500);
  std::vector<Packet> out;
  EXPECT_THROW(s.dequeue_burst(7, 0, 0, out), PreconditionError);
}

TEST(NaiveDrrEdge, PerIfaceDeficitsIndependent) {
  NaiveDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  for (int i = 0; i < 8; ++i) s.enqueue(Packet(a, 1000), 0);
  s.dequeue(j0, 0);
  // j0's leftover deficit (500) must not leak into j1's.
  EXPECT_EQ(s.deficit_of(a, j0), 500);
  EXPECT_EQ(s.deficit_of(a, j1), 0);
  s.dequeue(j1, 0);
  EXPECT_EQ(s.deficit_of(a, j1), 500);
}

}  // namespace
}  // namespace midrr
