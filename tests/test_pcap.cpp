// Tests for the pcap writer/reader and the bridge capture taps.
#include <gtest/gtest.h>

#include <sstream>

#include "bridge/bridge.hpp"
#include "net/pcap.hpp"
#include "sched/midrr.hpp"

namespace midrr::net {
namespace {

Frame sample_frame(std::uint16_t dst_port, std::size_t payload = 64) {
  return FrameBuilder()
      .eth_src(MacAddress::local(1))
      .eth_dst(MacAddress::local(2))
      .ip_src(Ipv4Address(10, 0, 0, 1))
      .ip_dst(Ipv4Address(10, 0, 0, 2))
      .tcp(12345, dst_port)
      .payload_size(payload)
      .build();
}

TEST(Pcap, WriteReadRoundTrip) {
  std::stringstream stream;
  PcapWriter writer(stream);
  const Frame f1 = sample_frame(80, 10);
  const Frame f2 = sample_frame(443, 200);
  writer.record(1 * kSecond + 250 * kMicrosecond, f1.bytes());
  writer.record(2 * kSecond, f2.bytes());
  EXPECT_EQ(writer.frames_written(), 2u);

  const auto records = read_pcap(stream);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].at, 1 * kSecond + 250 * kMicrosecond);
  EXPECT_EQ((*records)[0].frame.size(), f1.size());
  EXPECT_TRUE(std::equal(f1.bytes().begin(), f1.bytes().end(),
                         (*records)[0].frame.begin()));
  // Round-tripped frames still parse and checksum-verify.
  const Frame back{ByteBuffer((*records)[1].frame)};
  EXPECT_TRUE(back.checksums_valid());
  EXPECT_EQ(back.parse()->tcp->dst_port, 443);
}

TEST(Pcap, GlobalHeaderIsStandard) {
  std::stringstream stream;
  PcapWriter writer(stream);
  const std::string bytes = stream.str();
  ASSERT_GE(bytes.size(), 24u);
  // Little-endian magic 0xa1b2c3d4.
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0xa1);
  // Linktype Ethernet at offset 20.
  EXPECT_EQ(static_cast<unsigned char>(bytes[20]), 1);
}

TEST(Pcap, SnaplenTruncatesButKeepsOriginalLength) {
  std::stringstream stream;
  PcapWriter writer(stream, /*snaplen=*/60);
  const Frame big = sample_frame(80, 500);
  writer.record(0, big.bytes());
  const auto records = read_pcap(stream);
  ASSERT_TRUE(records.has_value());
  EXPECT_EQ((*records)[0].frame.size(), 60u);
}

TEST(Pcap, RejectsGarbage) {
  std::stringstream garbage("not a pcap file at all");
  EXPECT_FALSE(read_pcap(garbage).has_value());
  std::stringstream truncated;
  {
    PcapWriter writer(truncated);
    writer.record(0, sample_frame(80).bytes());
  }
  std::string cut = truncated.str();
  cut.resize(cut.size() - 5);
  std::stringstream cut_stream(cut);
  EXPECT_FALSE(read_pcap(cut_stream).has_value());
}

TEST(PcapTap, BridgeCapturesSteeredFrames) {
  using namespace midrr::bridge;
  const auto virt_ip = Ipv4Address(10, 200, 0, 1);
  VirtualBridge bridge(std::make_unique<MiDrrScheduler>(1500),
                       MacAddress::local(0), virt_ip);
  const IfaceId wifi = bridge.add_physical(
      {"wlan0", MacAddress::local(10), Ipv4Address(192, 168, 1, 2)});
  const FlowId flow = bridge.add_flow({.weight = 1.0, .willing = {wifi}, .name = "f"});
  bridge.classifier().set_default_flow(flow);

  std::stringstream capture;
  PcapWriter tap(capture);
  bridge.attach_tap(wifi, &tap);

  Frame app = FrameBuilder()
                  .eth_src(MacAddress::local(0))
                  .eth_dst(MacAddress::local(99))
                  .ip_src(virt_ip)
                  .ip_dst(Ipv4Address(1, 2, 3, 4))
                  .tcp(1000, 80)
                  .payload_size(100)
                  .build();
  bridge.send_from_app(std::move(app), 0);
  ASSERT_TRUE(bridge.next_frame(wifi, 5 * kSecond).has_value());

  const auto records = read_pcap(capture);
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].at, 5 * kSecond);
  // The captured frame shows the REWRITTEN source (what went on the wire).
  const Frame wire{ByteBuffer((*records)[0].frame)};
  EXPECT_EQ(wire.parse()->ip.src.to_string(), "192.168.1.2");
  EXPECT_TRUE(wire.checksums_valid());
}

}  // namespace
}  // namespace midrr::net
