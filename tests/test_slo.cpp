// SloEngine: spec parsing, class binding, and multi-window burn rates.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/slo.hpp"
namespace {

constexpr std::uint64_t kMs = 1'000'000;
constexpr std::uint64_t kSec = 1'000'000'000;

using midrr::telemetry::MetricsRegistry;
using midrr::telemetry::SloEngine;
using midrr::telemetry::SloSpec;

TEST(SloSpec, ParsesWellFormedSpecs) {
  SloSpec spec;
  ASSERT_TRUE(midrr::telemetry::parse_slo_spec("class=video:p99_ms=5", &spec));
  EXPECT_EQ(spec.class_name, "video");
  EXPECT_EQ(spec.p99_target_ns, 5u * kMs);
  ASSERT_TRUE(
      midrr::telemetry::parse_slo_spec("class=bulk:p99_ms=0.5", &spec));
  EXPECT_EQ(spec.class_name, "bulk");
  EXPECT_EQ(spec.p99_target_ns, 500'000u);
}

TEST(SloSpec, RejectsMalformedSpecs) {
  SloSpec spec;
  const char* bad[] = {
      "",
      "video:p99_ms=5",          // missing class=
      "class=:p99_ms=5",         // empty name
      "class=video",             // no target
      "class=video:p99_ms=",     // empty target
      "class=video:p99_ms=abc",  // non-numeric
      "class=video:p99_ms=0",    // must be positive
      "class=video:p99_ms=-2",
      "class=video:p99_ms=5ms",  // trailing junk
  };
  for (const char* text : bad) {
    EXPECT_FALSE(midrr::telemetry::parse_slo_spec(text, &spec)) << text;
  }
}

SloEngine::Options tight_windows() {
  SloEngine::Options o;
  o.bucket_ns = kSec;
  o.short_window_buckets = 5;
  o.long_window_buckets = 60;
  o.error_budget = 0.01;
  return o;
}

TEST(SloEngine, UnboundClassesRecordNothing) {
  SloEngine engine({{"video", 5 * kMs}}, /*max_classes=*/4,
                   tight_windows());
  engine.record(/*cls=*/0, /*latency_ns=*/1, /*now_ns=*/0);
  engine.record(/*cls=*/9, 1, 0);  // out of table: ignored, not UB
  EXPECT_EQ(engine.samples(0), 0u);
  EXPECT_FALSE(engine.bind_class(1, "nonexistent"));
  ASSERT_TRUE(engine.bind_class(1, "video"));
  engine.record(1, 1, 0);
  EXPECT_EQ(engine.samples(0), 1u);
}

TEST(SloEngine, BurnRateIsViolatingFractionOverBudget) {
  SloEngine engine({{"video", 1 * kMs}}, 4, tight_windows());
  ASSERT_TRUE(engine.bind_class(0, "video"));
  const std::uint64_t now = 100 * kSec;
  // 100 samples in the current bucket, 2 violating: fraction 0.02 against
  // a 0.01 budget = burn 2.
  for (int i = 0; i < 98; ++i) engine.record(0, 500'000, now);
  for (int i = 0; i < 2; ++i) engine.record(0, 2 * kMs, now);
  EXPECT_EQ(engine.samples(0), 100u);
  EXPECT_EQ(engine.violations(0), 2u);
  EXPECT_NEAR(engine.short_burn(0, now), 2.0, 1e-9);
  EXPECT_NEAR(engine.long_burn(0, now), 2.0, 1e-9);
  // Idle: windows that slid past the traffic read ~0, and the short window
  // forgets before the long one does.
  const std::uint64_t later =
      now + 10 * kSec;
  EXPECT_EQ(engine.short_burn(0, later), 0.0);
  EXPECT_NEAR(engine.long_burn(0, later), 2.0, 1e-9);
  const std::uint64_t much_later =
      now + 120 * kSec;
  EXPECT_EQ(engine.long_burn(0, much_later), 0.0);
}

TEST(SloEngine, SustainedOverloadBurnsAboveOne) {
  SloEngine engine({{"bulk", 1 * kMs}}, 4, tight_windows());
  ASSERT_TRUE(engine.bind_class(0, "bulk"));
  // Every sample violates for 5 consecutive seconds: burn = 1/0.01 = 100.
  std::uint64_t now = 0;
  for (int s = 0; s < 5; ++s) {
    now = static_cast<std::uint64_t>(s) * kSec;
    for (int i = 0; i < 20; ++i) engine.record(0, 3 * kMs, now);
  }
  EXPECT_NEAR(engine.short_burn(0, now), 100.0, 1e-9);
  EXPECT_GT(engine.short_burn(0, now), 1.0) << "overload must page";
}

TEST(SloEngine, RecyclesEpochBucketsInsteadOfGrowing) {
  SloEngine::Options o = tight_windows();
  o.long_window_buckets = 4;  // tiny ring to force recycling fast
  o.short_window_buckets = 2;
  SloEngine engine({{"video", 1 * kMs}}, 2, o);
  ASSERT_TRUE(engine.bind_class(0, "video"));
  for (int s = 0; s < 50; ++s) {
    engine.record(0, 2 * kMs, static_cast<std::uint64_t>(s) * kSec);
  }
  // Lifetime counters saw everything; the window only its last buckets.
  EXPECT_EQ(engine.samples(0), 50u);
  const std::uint64_t now = 49 * kSec;
  EXPECT_NEAR(engine.short_burn(0, now), 100.0, 1e-9);
}

TEST(SloEngine, ExposesMetricsAndJson) {
  SloEngine engine({{"video", 5 * kMs}}, 4, tight_windows());
  ASSERT_TRUE(engine.bind_class(0, "video"));
  engine.record(0, 1 * kMs, 0);
  MetricsRegistry registry;
  engine.register_metrics(registry, [] { return std::uint64_t{0}; });
  const std::string page = midrr::telemetry::render_prometheus(registry);
  EXPECT_NE(page.find("midrr_slo_target_ns{class=\"video\"} 5000000"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("midrr_slo_samples_total{class=\"video\"} 1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("midrr_slo_burn_rate{class=\"video\",window=\"short\"}"),
            std::string::npos)
      << page;
  const std::string json = engine.json(0);
  EXPECT_NE(json.find("\"class\":\"video\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_target_ns\":5000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"burn_short\":"), std::string::npos) << json;
}

}  // namespace
