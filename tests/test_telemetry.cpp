// Telemetry layer: registry semantics under concurrent writers, Prometheus
// exposition (golden), Chrome-trace JSON shape, the embedded HTTP endpoint,
// the TraceRecorder overflow counter, thread-safe logging, and the
// fairness-drift sampler end to end on a live runtime.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/load_generator.hpp"
#include "runtime/rcu.hpp"
#include "runtime/runtime.hpp"
#include "sched/observer.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_observer.hpp"
#include "telemetry/prometheus.hpp"
#include "util/logging.hpp"

namespace midrr::telemetry {
namespace {

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndDeduplicated) {
  MetricsRegistry reg;
  Counter& a = reg.counter("midrr_test_total", "help", {{"k", "v"}});
  Counter& b = reg.counter("midrr_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b) << "same (name, labels) must return the same handle";
  Counter& c = reg.counter("midrr_test_total", "help", {{"k", "other"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, NameKeepsOneKind) {
  MetricsRegistry reg;
  reg.counter("midrr_kind_total", "help");
  EXPECT_THROW(reg.gauge("midrr_kind_total", "help"), std::exception);
}

TEST(MetricsRegistry, RejectsInvalidNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("bad name", "help"), std::exception);
  EXPECT_THROW(reg.counter("0leading", "help"), std::exception);
  EXPECT_THROW(reg.counter("ok_name", "help", {{"bad-label", "v"}}),
               std::exception);
}

TEST(MetricsRegistry, CallbackSeriesCollectAtScrape) {
  MetricsRegistry reg;
  std::atomic<std::uint64_t> external{0};
  reg.counter_fn("midrr_cb_total", "help", {}, [&external] {
    return static_cast<double>(external.load());
  });
  external = 41;
  const auto families = reg.snapshot();
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_DOUBLE_EQ(families[0].samples[0].value, 41.0);
}

TEST(MetricsRegistry, MultiWriterCounterIsExact) {
  MetricsRegistry reg;
  Counter& hits = reg.counter("midrr_mw_total", "help");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hits] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hits.inc();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(hits.value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ScrapeWhileWritingStaysConsistent) {
  // Writers hammer a histogram while a reader snapshots: every snapshot
  // must be internally consistent -- buckets cumulative (non-decreasing in
  // le) and count >= the last cumulative bucket (the +Inf property).
  MetricsRegistry reg;
  Histogram& h = reg.histogram("midrr_scrape_ns", "help");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.observe(v);
        v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
        v &= (1ULL << 32) - 1;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    const auto families = reg.snapshot();
    ASSERT_EQ(families.size(), 1u);
    const SampleSnapshot& s = families[0].samples[0];
    for (std::size_t i = 1; i < s.buckets.size(); ++i) {
      EXPECT_LE(s.buckets[i - 1].second, s.buckets[i].second)
          << "cumulative buckets must be non-decreasing";
    }
    if (!s.buckets.empty()) {
      EXPECT_GE(s.count, s.buckets.back().second)
          << "+Inf (count) must cover the last finite bucket";
    }
  }
  stop = true;
  for (auto& w : writers) w.join();
}

// --- Prometheus exposition (golden) ---------------------------------------

TEST(Prometheus, GoldenExposition) {
  MetricsRegistry reg;
  reg.counter("midrr_events_total", "Things that happened.", {{"kind", "a"}})
      .inc(3);
  reg.counter("midrr_events_total", "Things that happened.", {{"kind", "b"}})
      .inc(7);
  reg.gauge("midrr_depth", "Current depth.").set(2.5);
  const std::string expected =
      "# HELP midrr_events_total Things that happened.\n"
      "# TYPE midrr_events_total counter\n"
      "midrr_events_total{kind=\"a\"} 3\n"
      "midrr_events_total{kind=\"b\"} 7\n"
      "# HELP midrr_depth Current depth.\n"
      "# TYPE midrr_depth gauge\n"
      "midrr_depth 2.5\n";
  EXPECT_EQ(render_prometheus(reg), expected);
}

TEST(Prometheus, HistogramExposition) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("midrr_wait_ns", "Wait.");
  h.observe(100);    // <= 256
  h.observe(1000);   // <= 1024
  h.observe(50000);  // <= 65536
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE midrr_wait_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("midrr_wait_ns_bucket{le=\"256\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_wait_ns_bucket{le=\"1024\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_wait_ns_bucket{le=\"65536\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_wait_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_wait_ns_count 3\n"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("midrr_esc_total", "h", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// --- TraceRecorder overflow -----------------------------------------------

TEST(TraceRecorderOverflow, CountsEvictedEvents) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.on_packet_sent(i, 0, 0, 100);
  }
  EXPECT_EQ(recorder.total_events(), 10u);
  EXPECT_EQ(recorder.entries().size(), 4u);
  EXPECT_EQ(recorder.overflowed(), 6u);
  recorder.clear();
  EXPECT_EQ(recorder.overflowed(), 0u);
}

// --- MetricsObserver ------------------------------------------------------

TEST(MetricsObserver, CountsEventsAndChains) {
  MetricsRegistry reg;
  TraceRecorder chained(16);
  MetricsObserver obs(reg, {{"shard", "0"}}, &chained);
  obs.on_turn_granted(0, 1, 0, 1500);
  obs.on_flag_skip(1, 2, 0);
  // The scheduler emits per-packet on_packet_sent events (feeding chained
  // tracers) followed by ONE batched on_packets_sent summary per burst;
  // the counting observer folds its increments into the summary only.
  obs.on_packet_sent(2, 1, 0, 1000);
  obs.on_packets_sent(2, 0, 1, 1000);
  obs.on_flow_drained(3, 1);
  EXPECT_EQ(obs.grants(), 1u);
  EXPECT_EQ(obs.skips(), 1u);
  EXPECT_EQ(obs.sends(), 1u);
  EXPECT_EQ(chained.total_events(), 4u) << "chained observer sees everything";
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("midrr_sched_turns_total{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_sched_flag_skips_total{shard=\"0\"} 1"),
            std::string::npos);
}

TEST(MetricsObserver, BatchedSendSummaryCountsOncePerBurst) {
  MetricsRegistry reg;
  MetricsObserver obs(reg, {{"shard", "0"}}, nullptr);
  // A 3-packet burst: three per-packet events (ignored by the counters),
  // one summary carrying the totals.
  obs.on_packet_sent(5, 1, 0, 100);
  obs.on_packet_sent(5, 1, 0, 200);
  obs.on_packet_sent(5, 2, 0, 300);
  EXPECT_EQ(obs.sends(), 0u) << "per-packet events must not double-count";
  obs.on_packets_sent(5, 0, 3, 600);
  EXPECT_EQ(obs.sends(), 3u);
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("midrr_sched_packets_sent_total{shard=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_sched_sent_bytes_total{shard=\"0\"} 600"),
            std::string::npos);
}

// --- Chrome trace ---------------------------------------------------------

TEST(ChromeTrace, RendersRecorderAndSpans) {
  TraceRecorder recorder(16);
  recorder.on_turn_granted(1000, 0, 1, 1500);
  recorder.on_packet_sent(2000, 0, 1, 900);
  ChromeTraceBuilder builder;
  builder.set_process_name(7, "sched");
  builder.add_recorder(recorder, 7);
  std::vector<TraceSpan> spans(1);
  spans[0].kind = TraceSpan::Kind::kDrain;
  spans[0].worker = 2;
  spans[0].begin_ns = 1000;
  spans[0].end_ns = 4000;
  spans[0].iface = 1;
  spans[0].packets = 3;
  spans[0].bytes = 2700;
  builder.add_spans(spans, 8);
  const std::string json = builder.json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "instant events";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "duration spans";
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << "metadata";
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos) << "3000 ns = 3 us";
  // Braces and brackets must balance (the file must parse as JSON).
  long depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, MarksTruncatedRecorders) {
  TraceRecorder recorder(2);
  for (int i = 0; i < 5; ++i) recorder.on_packet_sent(i, 0, 0, 1);
  ChromeTraceBuilder builder;
  builder.add_recorder(recorder, 1);
  EXPECT_NE(builder.json().find("events_lost"), std::string::npos);
}

// Regression: the truncation marker used to be only a "ph":"M" metadata
// record, which viewers do not render -- a truncated capture looked merely
// sparse.  add_recorder must also emit a VISIBLE global instant, placed at
// the last retained event's timestamp (where the missing history ends).
TEST(ChromeTrace, OverflowEmitsVisibleInstantAtLastRetainedEvent) {
  TraceRecorder recorder(2);
  for (const SimTime at : {10'000, 20'000, 30'000, 40'000, 50'000}) {
    recorder.on_packet_sent(at, 0, 0, 1);
  }
  ChromeTraceBuilder builder;
  builder.add_recorder(recorder, 1);
  const std::string json = builder.json();
  const std::size_t instant = json.find("\"name\":\"trace_overflow\"");
  ASSERT_NE(instant, std::string::npos) << json;
  const std::string event = json.substr(instant, 220);
  EXPECT_NE(event.find("\"ph\":\"i\""), std::string::npos)
      << "must be a renderable instant, not metadata: " << event;
  EXPECT_NE(event.find("\"s\":\"g\""), std::string::npos)
      << "global scope so it is visible on every track: " << event;
  // 50'000 ns = 50 us, the newest retained event.
  EXPECT_NE(event.find("\"ts\":50"), std::string::npos) << event;
  EXPECT_NE(event.find("\"events_lost\":3"), std::string::npos) << event;
  // The machine-readable metadata record is still present for tooling.
  EXPECT_NE(json.find("\"name\":\"trace_truncated\""), std::string::npos);
  // A full capture emits neither marker.
  TraceRecorder roomy(16);
  roomy.on_packet_sent(10'000, 0, 0, 1);
  ChromeTraceBuilder clean;
  clean.add_recorder(roomy, 1);
  EXPECT_EQ(clean.json().find("trace_overflow"), std::string::npos);
}

// --- TelemetryServer ------------------------------------------------------

std::string http_request(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  (void)!::send(fd, raw.data(), raw.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

TEST(TelemetryServer, ServesMetricsHealthzAndRoutes) {
  MetricsRegistry reg;
  reg.counter("midrr_http_hits_total", "h").inc(5);
  TelemetryServer server;
  server.serve_registry(reg);
  server.handle("/custom", [](const http::HttpRequest&) {
    HandlerResult r;
    r.content_type = "application/json";
    r.body = "{\"ok\":true}";
    return r;
  });
  server.start();
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find(kPrometheusContentType), std::string::npos);
  EXPECT_NE(metrics.find("midrr_http_hits_total 5"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/custom?x=1").find("{\"ok\":true}"),
            std::string::npos)
      << "query strings are stripped before routing";
  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(
      http_request(server.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
          .find("405"),
      std::string::npos);
  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(TelemetryServer, ScrapesConcurrentlyWithWriters) {
  MetricsRegistry reg;
  Counter& c = reg.counter("midrr_live_total", "h");
  TelemetryServer server;
  server.serve_registry(reg);
  server.start();
  std::atomic<bool> stop{false};
  std::thread writer([&c, &stop] {
    while (!stop.load(std::memory_order_relaxed)) c.inc();
  });
  for (int i = 0; i < 20; ++i) {
    const std::string body = http_get(server.port(), "/metrics");
    EXPECT_NE(body.find("midrr_live_total"), std::string::npos);
  }
  stop = true;
  writer.join();
  server.stop();
}

// --- Logger thread safety -------------------------------------------------

TEST(Logger, ConcurrentWritersNeverTearLines) {
  std::ostringstream captured;
  Logger::instance().set_sink(&captured);
  const LogLevel before = Logger::instance().level();
  Logger::instance().set_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        MIDRR_LOG_INFO() << "thread" << t << "-line" << i << "-end";
      }
    });
  }
  for (auto& w : writers) w.join();
  Logger::instance().set_level(before);
  Logger::instance().set_sink(nullptr);
  // Every line must be whole: starts with the level tag, ends with "-end".
  std::istringstream lines(captured.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.rfind("[INFO] thread", 0), 0u) << "torn line: " << line;
    ASSERT_EQ(line.substr(line.size() - 4), "-end") << "torn line: " << line;
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads) * kLines);
}

TEST(LogRateLimiter, AllowsOncePerIntervalAndCountsSuppression) {
  LogRateLimiter limiter(std::chrono::hours(1));
  EXPECT_TRUE(limiter.allow());
  EXPECT_FALSE(limiter.allow());
  EXPECT_FALSE(limiter.allow());
  EXPECT_EQ(limiter.suppressed(), 2u);
  EXPECT_EQ(limiter.take_suppressed(), 2u);
  EXPECT_EQ(limiter.suppressed(), 0u);
}

// --- RCU epoch lag --------------------------------------------------------

TEST(RcuEpochLag, ReportsSlowReaderDuringGracePeriod) {
  rt::Rcu<int> cell(std::make_unique<const int>(1));
  EXPECT_EQ(cell.max_reader_lag(), 0u);
  rt::Rcu<int>::Reader reader(cell);
  std::optional<rt::Rcu<int>::Reader::Guard> guard(reader.lock());
  EXPECT_EQ(cell.max_reader_lag(), 0u) << "current-epoch reader lags 0";
  std::atomic<bool> published{false};
  std::thread writer([&cell, &published] {
    cell.publish(std::make_unique<const int>(2));  // blocks on our guard
    published = true;
  });
  // The writer bumps the epoch, then spins on our announced (older) slot.
  while (cell.epoch() < 2) std::this_thread::yield();
  EXPECT_GE(cell.max_reader_lag(), 1u);
  EXPECT_FALSE(published.load());
  EXPECT_EQ(**guard, 1) << "old snapshot stays valid inside the guard";
  guard.reset();  // quiescent: the writer's grace period completes
  writer.join();
  EXPECT_TRUE(published.load());
  EXPECT_EQ(cell.max_reader_lag(), 0u);
}

// --- Fairness drift on a live runtime -------------------------------------

TEST(FairnessDrift, LiveRuntimeStaysWithinTenPercentOfMaxMin) {
  // 4 equal flows x 2 interfaces at 80 Mb/s each: the max-min reference
  // gives every flow 40 Mb/s.  The sampler, fed by the runtime's RCU
  // snapshot, must measure ratios within 10% of 1.0 (the e2e pin from
  // ROADMAP/ISSUE) and a Jain's index near 1.
  MetricsRegistry reg;
  rt::RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;  // paper semantics: full cross-interface coupling
  options.metrics = &reg;
  rt::Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(80e6));
  runtime.add_interface("if1", RateProfile(80e6));
  for (int i = 0; i < 4; ++i) {
    rt::RtFlowSpec spec;
    spec.name = "f" + std::to_string(i);
    spec.willing = {0, 1};
    // Distinct queue capacities keep the four flows in four singleton
    // classes -- this test pins the flat (one row per flow) exposition.
    spec.queue_capacity_bytes = 512 * 1024 + static_cast<std::uint64_t>(i);
    runtime.control().add_flow(spec);
  }
  runtime.start();
  rt::LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  rt::LoadGenerator generator(runtime, load);
  generator.start();

  FairnessDriftOptions drift_options;
  drift_options.interval_ns = 250 * kMillisecond;
  FairnessDriftSampler sampler(runtime, reg, drift_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warm up
  sampler.sample_once();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  sampler.sample_once();

  const DriftReport report = sampler.last();
  generator.stop();
  runtime.stop();

  ASSERT_TRUE(report.valid);
  ASSERT_EQ(report.flows.size(), 4u);
  for (const FlowDrift& flow : report.flows) {
    EXPECT_NEAR(flow.ratio, 1.0, 0.10)
        << flow.name << " got " << flow.actual_bps << " vs max-min "
        << flow.maxmin_bps;
    EXPECT_EQ(flow.members, 1u);
  }
  EXPECT_GT(report.jain, 0.99);

  // The gauges made it into the registry.
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("midrr_fairness_jain_index"), std::string::npos);
  EXPECT_NE(text.find("midrr_fairness_rate_ratio{flow=\"f0\"}"),
            std::string::npos);

  // /flows JSON joins the sample with the drift window.
  const std::string json =
      flows_json(runtime.fairness_sample(), sampler.last());
  EXPECT_NE(json.find("\"name\":\"f0\""), std::string::npos);
  EXPECT_NE(json.find("\"jain\""), std::string::npos);
}

TEST(FairnessDrift, AggregatedClassRowCarriesMemberCountAndPerMemberRate) {
  // The same four equal flows, but registered as ONE class of four
  // members: the sampler must fold their byte counters into a single
  // row whose solver weight is phi x members, so the class's aggregate
  // lands on the whole 160 Mb/s and the lazy per-member gauges export.
  MetricsRegistry reg;
  rt::RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;
  options.metrics = &reg;
  rt::Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(80e6));
  runtime.add_interface("if1", RateProfile(80e6));
  rt::ClassSpec spec;
  spec.name = "bundle";
  spec.willing = {0, 1};
  runtime.control().add_members(spec, 4);
  runtime.start();
  rt::LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  rt::LoadGenerator generator(runtime, load);
  generator.start();

  FairnessDriftOptions drift_options;
  drift_options.interval_ns = 250 * kMillisecond;
  FairnessDriftSampler sampler(runtime, reg, drift_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  sampler.sample_once();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  sampler.sample_once();

  const DriftReport report = sampler.last();
  generator.stop();
  runtime.stop();

  ASSERT_TRUE(report.valid);
  ASSERT_EQ(report.flows.size(), 1u) << "four members, one class row";
  const FlowDrift& row = report.flows[0];
  EXPECT_EQ(row.members, 4u);
  EXPECT_NEAR(row.ratio, 1.0, 0.10)
      << row.name << " got " << row.actual_bps << " vs max-min "
      << row.maxmin_bps;
  // Both links together: the class aggregate is the whole 160 Mb/s.
  EXPECT_NEAR(row.maxmin_bps, 160e6, 1e6);

  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("midrr_fairness_class_members{flow=\"bundle\"}"),
            std::string::npos);
  EXPECT_NE(text.find("midrr_fairness_rate_per_member_bps{flow=\"bundle\"}"),
            std::string::npos);

  const std::string json =
      flows_json(runtime.fairness_sample(), sampler.last());
  EXPECT_NE(json.find("\"members\":4"), std::string::npos);
}

TEST(RuntimeTelemetry, RegistersRuntimeSeriesAndCapturesTrace) {
  MetricsRegistry reg;
  rt::RuntimeOptions options;
  options.workers = 2;
  options.shards = 2;
  options.metrics = &reg;
  options.trace_events = 1024;
  options.trace_spans = 1024;
  rt::Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(100e6));
  runtime.add_interface("if1");
  for (int i = 0; i < 4; ++i) {
    rt::RtFlowSpec spec;
    spec.name = "g" + std::to_string(i);
    spec.willing = {0, 1};
    runtime.control().add_flow(spec);
  }
  runtime.start();
  rt::LoadGenerator generator(runtime, {});
  generator.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  generator.stop();
  runtime.stop();

  EXPECT_GE(reg.series_count(), 20u)
      << "acceptance: >= 20 distinct series with runtime + sched coverage";
  const std::string text = render_prometheus(reg);
  for (const char* name :
       {"midrr_rt_offered_packets_total", "midrr_rt_dequeued_packets_total",
        "midrr_rt_ingress_ring_occupancy", "midrr_rt_pacer_tokens_bytes",
        "midrr_rt_rcu_epoch_lag", "midrr_rt_packet_wait_ns_bucket",
        "midrr_sched_turns_total", "midrr_rt_iface_sent_bytes_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }

  ChromeTraceBuilder builder;
  runtime.export_trace(builder);
  EXPECT_GT(builder.event_count(), 0u);
  ASSERT_NE(runtime.shard_recorder(0), nullptr);
  EXPECT_GT(runtime.shard_recorder(0)->total_events() +
                runtime.shard_recorder(1)->total_events(),
            0u);
}

}  // namespace
}  // namespace midrr::telemetry
