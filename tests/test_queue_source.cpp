// Unit tests for flow queues and traffic sources.
#include <gtest/gtest.h>

#include "flow/queue.hpp"
#include "flow/source.hpp"

namespace midrr {
namespace {

TEST(FlowQueue, FifoAndByteAccounting) {
  FlowQueue q;
  q.enqueue(Packet(0, 100, 0));
  q.enqueue(Packet(0, 200, 1));
  EXPECT_EQ(q.backlog_bytes(), 300u);
  EXPECT_EQ(q.backlog_packets(), 2u);
  EXPECT_EQ(q.head_size(), std::optional<std::uint32_t>(100));
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 0u);
  EXPECT_EQ(q.backlog_bytes(), 200u);
  q.dequeue();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_FALSE(q.head_size().has_value());
}

TEST(FlowQueue, CapacityTailDrop) {
  FlowQueue q(250);
  EXPECT_TRUE(q.enqueue(Packet(0, 100)));
  EXPECT_TRUE(q.enqueue(Packet(0, 100)));
  EXPECT_FALSE(q.enqueue(Packet(0, 100)));  // would exceed 250
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.stats().dropped_bytes, 100u);
  EXPECT_EQ(q.backlog_bytes(), 200u);
}

TEST(FlowQueue, StatsTrackService) {
  FlowQueue q;
  q.enqueue(Packet(0, 500));
  q.enqueue(Packet(0, 300));
  q.dequeue();
  EXPECT_EQ(q.stats().enqueued_packets, 2u);
  EXPECT_EQ(q.stats().enqueued_bytes, 800u);
  EXPECT_EQ(q.stats().dequeued_packets, 1u);
  EXPECT_EQ(q.stats().dequeued_bytes, 500u);
}

TEST(FlowQueue, RejectsZeroSizePacket) {
  FlowQueue q;
  EXPECT_THROW(q.enqueue(Packet(0, 0)), PreconditionError);
}

TEST(SizeDistribution, FixedUniformBimodal) {
  Rng rng(1);
  auto fixed = SizeDistribution::fixed(1500);
  EXPECT_EQ(fixed.sample(rng), 1500u);
  EXPECT_EQ(fixed.max_size(), 1500u);

  auto uni = SizeDistribution::uniform(100, 200);
  for (int i = 0; i < 100; ++i) {
    const auto s = uni.sample(rng);
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 200u);
  }

  auto bi = SizeDistribution::bimodal(40, 1500, 0.5);
  int small = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto s = bi.sample(rng);
    EXPECT_TRUE(s == 40u || s == 1500u);
    if (s == 40u) ++small;
  }
  EXPECT_NEAR(small, 500, 60);
}

TEST(BackloggedSource, KeepsDepthAndRefills) {
  Rng rng(1);
  BackloggedSource src(SizeDistribution::fixed(1000), 0, 4);
  const auto initial = src.on_start(rng);
  EXPECT_EQ(initial.size(), 4u);
  const auto refill = src.on_dequeue(1000, rng);
  ASSERT_EQ(refill.size(), 1u);
  EXPECT_EQ(refill[0], 1000u);
  EXPECT_FALSE(src.exhausted());
}

TEST(BackloggedSource, VolumeBoundedEndsExactly) {
  Rng rng(1);
  BackloggedSource src(SizeDistribution::fixed(1000), 3500, 2);
  std::uint64_t total = 0;
  for (const auto s : src.on_start(rng)) total += s;
  while (!src.exhausted()) {
    const auto more = src.on_dequeue(1000, rng);
    for (const auto s : more) total += s;
    if (more.empty()) break;
  }
  EXPECT_EQ(total, 3500u);  // final packet clipped to 500
  EXPECT_TRUE(src.exhausted());
  EXPECT_TRUE(src.on_dequeue(500, rng).empty());
}

TEST(CbrSource, SpacingMatchesRate) {
  Rng rng(1);
  CbrSource src(1e6, 1000);  // 8 ms per 1000-byte packet
  const auto first = src.next_arrival(rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->gap, 0);
  const auto second = src.next_arrival(rng);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->gap, 8 * kMillisecond);
}

TEST(CbrSource, VolumeBounded) {
  Rng rng(1);
  CbrSource src(1e6, 1000, 2500);
  int n = 0;
  while (src.next_arrival(rng)) ++n;
  EXPECT_EQ(n, 3);  // 3000 >= 2500 after the third
  EXPECT_TRUE(src.exhausted());
}

TEST(PoissonSource, MeanRateApproximatelyCorrect) {
  Rng rng(5);
  PoissonSource src(1e6, SizeDistribution::fixed(1250));
  double total_gap_seconds = 0.0;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto e = src.next_arrival(rng);
    ASSERT_TRUE(e.has_value());
    total_gap_seconds += to_seconds(e->gap);
    total_bytes += e->size_bytes;
  }
  const double rate = static_cast<double>(total_bytes) * 8.0 / total_gap_seconds;
  EXPECT_NEAR(rate / 1e6, 1.0, 0.05);
}

TEST(OnOffSource, ProducesBurstsAndSilences) {
  Rng rng(9);
  OnOffSource src(1e6, 1000, 0.1, 0.5);
  const SimDuration cbr_gap = 8 * kMillisecond;
  int long_gaps = 0;
  int arrivals = 2000;
  for (int i = 0; i < arrivals; ++i) {
    const auto e = src.next_arrival(rng);
    ASSERT_TRUE(e.has_value());
    if (e->gap > 2 * cbr_gap) ++long_gaps;
  }
  // Bursts average 100 ms = ~12 packets, so roughly arrivals/13 silences.
  EXPECT_GT(long_gaps, 20);
  EXPECT_LT(long_gaps, arrivals / 2);
}

}  // namespace
}  // namespace midrr
