// Tests for the preference compiler: lowering attribute-level user policies
// to the scheduler's (Pi, phi) inputs, including data-cap dynamics.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "policy/compiler.hpp"
#include "sched/midrr.hpp"

namespace midrr::policy {
namespace {

PreferenceCompiler phone() {
  PreferenceCompiler c;
  c.add_interface({"wifi", /*metered=*/false, 15 * kMillisecond, 0});
  c.add_interface({"lte", /*metered=*/true, 45 * kMillisecond,
                   /*cap=*/2'000'000'000});
  c.add_interface({"ethernet", /*metered=*/false, 2 * kMillisecond, 0});
  return c;
}

TEST(Selector, Matching) {
  const InterfaceAttributes wifi{"wifi", false, 15 * kMillisecond, 0};
  const InterfaceAttributes lte{"lte", true, 45 * kMillisecond, 0};
  EXPECT_TRUE(Selector::by_name("wifi").matches(wifi));
  EXPECT_FALSE(Selector::by_name("wifi").matches(lte));
  EXPECT_TRUE(Selector::metered().matches(lte));
  EXPECT_FALSE(Selector::metered().matches(wifi));
  EXPECT_TRUE(Selector::unmetered().matches(wifi));
  EXPECT_TRUE(Selector::low_latency(20 * kMillisecond).matches(wifi));
  EXPECT_FALSE(Selector::low_latency(20 * kMillisecond).matches(lte));
  EXPECT_TRUE(Selector::any().matches(lte));
}

TEST(Compiler, NoRulesAllowsEverything) {
  const auto policy = phone().compile("anything");
  EXPECT_EQ(policy.willing.size(), 3u);
  EXPECT_DOUBLE_EQ(policy.weight, 1.0);
}

TEST(Compiler, RequireUnmetered) {
  auto c = phone();
  c.add_rule({"netflix", Verb::kRequire, Selector::unmetered()});
  const auto policy = c.compile("netflix");
  EXPECT_EQ(policy.willing,
            (std::vector<std::string>{"wifi", "ethernet"}));
  // Other apps unaffected.
  EXPECT_EQ(c.compile("other").willing.size(), 3u);
}

TEST(Compiler, ForbidMetered) {
  auto c = phone();
  c.add_rule({"*", Verb::kForbid, Selector::metered()});
  EXPECT_EQ(c.compile("any").willing,
            (std::vector<std::string>{"wifi", "ethernet"}));
}

TEST(Compiler, PreferIsSoft) {
  auto c = phone();
  c.add_rule({"voip", Verb::kPrefer, Selector::low_latency(20 * kMillisecond)});
  EXPECT_EQ(c.compile("voip").willing,
            (std::vector<std::string>{"wifi", "ethernet"}));
  // When nothing matches the preference, fall back to everything.
  auto c2 = phone();
  c2.add_rule({"voip", Verb::kPrefer, Selector::low_latency(kMillisecond)});
  EXPECT_EQ(c2.compile("voip").willing.size(), 3u);
}

TEST(Selector, MinCapacityReadsTheMeasuredScale) {
  InterfaceAttributes lte{"lte", true, 45 * kMillisecond, 0};
  EXPECT_TRUE(Selector::min_capacity(0.8).matches(lte))
      << "capacity_scale defaults to 1.0 (at spec)";
  lte.capacity_scale = 0.5;
  EXPECT_FALSE(Selector::min_capacity(0.8).matches(lte));
  EXPECT_TRUE(Selector::min_capacity(0.5).matches(lte));
}

TEST(Compiler, CapacityScaleRelowersMinCapacityPolicies) {
  // The closed loop's policy edge: the supervisor measures a droop, the
  // caller pushes drift_ratio here, and a min_capacity PREFER re-lowers
  // away from the drooped link -- then back when it recovers.
  auto c = phone();
  c.add_rule({"video", Verb::kPrefer, Selector::min_capacity(0.8)});
  EXPECT_EQ(c.compile("video").willing.size(), 3u);

  c.set_capacity_scale("wifi", 0.5);  // measured at half spec
  EXPECT_EQ(c.compile("video").willing,
            (std::vector<std::string>{"lte", "ethernet"}));

  c.set_capacity_scale("wifi", 1.0);  // recovered
  EXPECT_EQ(c.compile("video").willing.size(), 3u);

  // A REQUIRE with every link drooped empties the willing set (the
  // scheduler's guard rails own that case, not the compiler).
  auto strict = phone();
  strict.add_rule({"video", Verb::kRequire, Selector::min_capacity(0.9)});
  strict.set_capacity_scale("wifi", 0.3);
  strict.set_capacity_scale("lte", 0.3);
  strict.set_capacity_scale("ethernet", 0.3);
  EXPECT_TRUE(strict.compile("video").willing.empty());
}

TEST(Compiler, CapacityScaleClampsAndIgnoresUnknownNames) {
  auto c = phone();
  c.set_capacity_scale("wifi", 1.7);   // over-delivering links cap at spec
  c.set_capacity_scale("lte", -0.25);  // garbage measurement clamps to 0
  c.set_capacity_scale("ghost", 0.5);  // absent interface: tolerated
  EXPECT_DOUBLE_EQ(c.interfaces()[0].capacity_scale, 1.0);
  EXPECT_DOUBLE_EQ(c.interfaces()[1].capacity_scale, 0.0);
  EXPECT_FALSE(Selector::min_capacity(0.1).matches(c.interfaces()[1]));
}

TEST(Compiler, RulesStackInOrder) {
  auto c = phone();
  c.add_rule({"sync", Verb::kForbid, Selector::metered()});
  c.add_rule({"sync", Verb::kPrefer, Selector::by_name("ethernet")});
  EXPECT_EQ(c.compile("sync").willing,
            (std::vector<std::string>{"ethernet"}));
}

TEST(Compiler, BoostMultipliesWeight) {
  auto c = phone();
  c.set_base_weight("video", 2.0);
  c.add_rule({"video", Verb::kBoost, Selector::any(), 1.5});
  EXPECT_DOUBLE_EQ(c.compile("video").weight, 3.0);
  EXPECT_THROW(c.add_rule({"x", Verb::kBoost, Selector::any(), 0.0}),
               PreconditionError);
}

TEST(Compiler, ConflictingRulesCanEmptyTheRow) {
  auto c = phone();
  c.add_rule({"odd", Verb::kRequire, Selector::metered()});
  c.add_rule({"odd", Verb::kForbid, Selector::metered()});
  EXPECT_TRUE(c.compile("odd").willing.empty())
      << "an over-constrained app simply gets no interfaces";
}

TEST(DataCap, ExhaustedMeteredInterfaceDisappears) {
  auto c = phone();
  DataCapTracker caps;
  EXPECT_EQ(c.compile("app", &caps).willing.size(), 3u);
  caps.record("lte", 2'000'000'000);  // hits the 2 GB cap exactly
  EXPECT_EQ(c.compile("app", &caps).willing,
            (std::vector<std::string>{"wifi", "ethernet"}));
  caps.reset("lte");  // new billing month
  EXPECT_EQ(c.compile("app", &caps).willing.size(), 3u);
}

TEST(DataCap, ExplicitRequireByNameOverridesCap) {
  auto c = phone();
  c.add_rule({"emergency", Verb::kRequire, Selector::by_name("lte")});
  DataCapTracker caps;
  caps.record("lte", 3'000'000'000);
  EXPECT_EQ(c.compile("emergency", &caps).willing,
            (std::vector<std::string>{"lte"}));
  // Everyone else lost lte.
  EXPECT_EQ(c.compile("other", &caps).willing.size(), 2u);
}

TEST(Apply, PushesPolicyIntoLiveScheduler) {
  MiDrrScheduler sched(1500);
  const IfaceId wifi = sched.add_interface("wifi");
  const IfaceId lte = sched.add_interface("lte");
  const FlowId netflix = sched.add_flow({.weight = 1.0, .willing = {wifi, lte}, .name = "netflix"});
  const FlowId voip = sched.add_flow({.weight = 1.0, .willing = {wifi, lte}, .name = "voip"});

  auto c = phone();
  c.remove_interface("ethernet");  // the phone has no ethernet today
  c.add_rule({"netflix", Verb::kRequire, Selector::unmetered()});
  c.add_rule({"netflix", Verb::kBoost, Selector::any(), 2.0});
  c.add_rule({"voip", Verb::kRequire, Selector::by_name("lte")});
  c.apply(sched, {{"netflix", netflix}, {"voip", voip}});

  EXPECT_TRUE(sched.preferences().willing(netflix, wifi));
  EXPECT_FALSE(sched.preferences().willing(netflix, lte));
  EXPECT_FALSE(sched.preferences().willing(voip, wifi));
  EXPECT_TRUE(sched.preferences().willing(voip, lte));
  EXPECT_DOUBLE_EQ(sched.preferences().weight(netflix), 2.0);
}

TEST(Apply, ReapplyAfterCapFlipsRedirectsTraffic) {
  // End to end: traffic actually moves off the capped interface when the
  // compiler re-lowers the policy mid-run.
  Scenario sc;
  sc.interface("wifi", RateProfile(mbps(5)));
  sc.interface("lte", RateProfile(mbps(5)));
  sc.backlogged_flow("app", 1.0, {"wifi", "lte"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  runner.run(5 * kSecond);

  auto& sched = runner.scheduler();
  const FlowId app = 0;
  const std::uint64_t lte_before = sched.sent_bytes(app, 1);
  EXPECT_GT(lte_before, 0u);

  PreferenceCompiler c;
  c.add_interface({"wifi", false, 15 * kMillisecond, 0});
  c.add_interface({"lte", true, 45 * kMillisecond, /*cap=*/1});
  DataCapTracker caps;
  caps.record("lte", lte_before);  // cap (1 byte) long exceeded
  c.apply(sched, {{"app", app}}, &caps);

  runner.run(10 * kSecond);
  EXPECT_EQ(sched.sent_bytes(app, 1), lte_before)
      << "no further bytes on the capped interface";
  EXPECT_GT(sched.sent_bytes(app, 0), 0u);
}

}  // namespace
}  // namespace midrr::policy
