// Unit tests for the measurement substrate (stats, time, rng, csv).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/latency_histogram.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace midrr {
namespace {

TEST(Time, ConversionRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond + 500 * kMillisecond), 2.5);
}

TEST(Time, TransmissionTimeRoundsUp) {
  // 1000 bytes at 1 Mb/s = exactly 8 ms.
  EXPECT_EQ(transmission_time(1000, 1e6), 8 * kMillisecond);
  // At 3 Mb/s: 8000/3e6 s = 2666666.66..ns -> rounds up to 2666667.
  EXPECT_EQ(transmission_time(1000, 3e6), 2666667);
  EXPECT_THROW(transmission_time(1000, 0.0), PreconditionError);
}

TEST(Time, RateBps) {
  EXPECT_DOUBLE_EQ(rate_bps(1000, 8 * kMillisecond), 1e6);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(3.5)), 3.5);
}

TEST(OnlineStats, Moments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-3.0);   // underflow -> first bucket
  h.add(42.0);   // overflow -> last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_mid(0), 0.5);
}

TEST(EmpiricalCdf, QuantilesAndCurve) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(10.0), 0.10);
  EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(1000.0), 1.0);
  const auto curve = cdf.curve();
  EXPECT_EQ(curve.size(), 100u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, WeightedSamples) {
  EmpiricalCdf cdf;
  cdf.add_weighted(1.0, 9.0);
  cdf.add_weighted(2.0, 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(1.0), 0.9);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.95), 2.0);
  EXPECT_NEAR(cdf.mean(), 1.1, 1e-12);
}

TEST(RateMeter, WindowedRate) {
  RateMeter meter(100 * kMillisecond, 10);  // 1 s window
  // 1000 bytes every 100 ms for 2 s -> 80 kb/s.
  for (int i = 0; i < 20; ++i) {
    meter.record(i * 100 * kMillisecond, 1000);
  }
  EXPECT_NEAR(meter.rate_bps(2 * kSecond), 80'000.0, 1.0);
  EXPECT_EQ(meter.total_bytes(), 20'000u);
}

TEST(RateMeter, RateDropsWhenIdle) {
  RateMeter meter(100 * kMillisecond, 10);
  meter.record(0, 10'000);
  EXPECT_GT(meter.rate_bps(500 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(meter.rate_bps(5 * kSecond), 0.0);
}

TEST(RateMeter, RejectsOutOfOrder) {
  RateMeter meter(kMillisecond);
  meter.record(10 * kMillisecond, 1);
  EXPECT_THROW(meter.record(5 * kMillisecond, 1), PreconditionError);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts("x");
  ts.add(0, 1.0);
  ts.add(kSecond, 2.0);
  ts.add(2 * kSecond, 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 3 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(kSecond, 2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5 * kSecond, 6 * kSecond), 0.0);
}

TEST(JainIndex, PerfectAndSkewed) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0}), 1.0);
  // One flow hogging: J = n^2 / (n * n) ... for {1,0,0}: 1/3.
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  // Weighted: rates proportional to weights are perfectly fair.
  EXPECT_DOUBLE_EQ(jain_index({2.0, 1.0}, {2.0, 1.0}), 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    const double u = rng.uniform(0.25, 0.75);
    EXPECT_GE(u, 0.25);
    EXPECT_LT(u, 0.75);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  OnlineStats s;
  for (int i = 0; i < 20'000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(11);
  std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.weighted_index(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / 10'000.0, 0.75, 0.02);
}

TEST(Csv, EscapingAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"name", "value"});
  csv.row({"plain", "1"});
  csv.row({"with,comma", "quote\"inside"});
  EXPECT_EQ(out.str(),
            "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n");
  EXPECT_THROW(csv.row({"only-one"}), PreconditionError);
}

TEST(Csv, TimeSeriesLongFormat) {
  TimeSeries ts("rate");
  ts.add(kSecond, 2.5);
  std::ostringstream out;
  write_time_series_csv(out, {&ts});
  EXPECT_EQ(out.str(), "series,t_seconds,value\nrate,1,2.5\n");
}

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, ExactRegionAndCountsAndMean) {
  LatencyHistogram h;
  for (std::uint64_t v : {0u, 1u, 5u, 15u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_raw(), 21u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 21.0 / 4.0);
  // Values below 2^(kSubBits+1) land in exact buckets: quantiles are exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
  EXPECT_EQ(h.quantile(0.5), 1.0);
}

TEST(LatencyHistogram, QuantileErrorBoundedByOneSubBucket) {
  // The documented contract: log-bucketing bounds the quantile error to
  // one sub-bucket, i.e. <= 12.5% of the value with 8 sub-buckets per
  // octave.  Check across several magnitudes with a deterministic sweep.
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    // Log-uniform-ish spread over [1us, ~1s).
    const double mag = rng.uniform(3.0, 9.0);
    values.push_back(static_cast<std::uint64_t>(std::pow(10.0, mag)));
  }
  for (const std::uint64_t v : values) h.record(v);
  std::sort(values.begin(), values.end());
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const double estimated = h.quantile(q);
    const double exact = static_cast<double>(values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))]);
    EXPECT_NEAR(estimated, exact, exact * 0.125)
        << "q=" << q << " exact=" << exact;
  }
}

TEST(LatencyHistogram, MergeFromAddsCountersAndSums) {
  LatencyHistogram a, b;
  a.record(100);
  a.record(1000);
  b.record(100);
  b.record(1'000'000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_raw(), 100u + 1000u + 100u + 1'000'000u);
  EXPECT_EQ(a.bucket_count(LatencyHistogram::index_of(100)), 2u);
}

TEST(LatencyHistogram, BucketBoundsBracketEveryValue) {
  for (std::uint64_t v :
       {0ull, 1ull, 16ull, 17ull, 1023ull, 1024ull, 123'456'789ull}) {
    const std::size_t i = LatencyHistogram::index_of(v);
    EXPECT_LE(LatencyHistogram::lower_bound(i), static_cast<double>(v));
    EXPECT_GE(LatencyHistogram::upper_bound(i), static_cast<double>(v));
  }
}

// --- LogRateLimiter ---------------------------------------------------------

TEST(LogRateLimiter, SuppressesWithinIntervalAndCounts) {
  LogRateLimiter limiter(std::chrono::hours(1));
  EXPECT_TRUE(limiter.allow()) << "first message always passes";
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limiter.allow()) << "within the interval";
  }
  EXPECT_EQ(limiter.suppressed(), 5u);
  // take_suppressed drains the count exactly once.
  EXPECT_EQ(limiter.take_suppressed(), 5u);
  EXPECT_EQ(limiter.suppressed(), 0u);
  EXPECT_EQ(limiter.take_suppressed(), 0u);
}

TEST(LogRateLimiter, ZeroIntervalNeverSuppresses) {
  LogRateLimiter limiter(std::chrono::nanoseconds(0));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(limiter.allow());
  EXPECT_EQ(limiter.suppressed(), 0u);
}

}  // namespace
}  // namespace midrr
