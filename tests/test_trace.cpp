// Tests for the synthetic smartphone trace (the Fig 7 substitute): the
// generator must reproduce the paper's two reported statistics and behave
// sanely across its knobs.
#include <gtest/gtest.h>

#include "trace/smartphone.hpp"

namespace midrr::trace {
namespace {

TEST(SmartphoneTrace, MatchesPaperStatisticsWithDefaults) {
  const auto result = generate_smartphone_trace();
  // "10% of the time, we have 7 or more ongoing flows"
  EXPECT_GT(result.p_at_least(7), 0.05);
  EXPECT_LT(result.p_at_least(7), 0.20);
  // "the maximum number of concurrent flows hit a maximum of 35"
  EXPECT_GE(result.max_concurrent, 25u);
  EXPECT_LE(result.max_concurrent, 50u);
  EXPECT_GT(result.total_flows, 10'000u);
}

TEST(SmartphoneTrace, Deterministic) {
  SmartphoneTraceConfig c;
  c.total = 24 * 3600 * kSecond;
  const auto a = generate_smartphone_trace(c);
  const auto b = generate_smartphone_trace(c);
  EXPECT_EQ(a.max_concurrent, b.max_concurrent);
  EXPECT_DOUBLE_EQ(a.p_at_least(7), b.p_at_least(7));
  EXPECT_EQ(a.total_flows, b.total_flows);
}

TEST(SmartphoneTrace, SeedChangesTrace) {
  SmartphoneTraceConfig c;
  c.total = 24 * 3600 * kSecond;
  const auto a = generate_smartphone_trace(c);
  c.seed = 99;
  const auto b = generate_smartphone_trace(c);
  EXPECT_NE(a.total_flows, b.total_flows);
}

TEST(SmartphoneTrace, MoreArrivalsMoreConcurrency) {
  SmartphoneTraceConfig low;
  low.total = 24 * 3600 * kSecond;
  low.flow_arrivals_per_minute = 1.0;
  low.burst_arrivals_per_minute = 0.1;
  SmartphoneTraceConfig high = low;
  high.flow_arrivals_per_minute = 12.0;
  high.burst_arrivals_per_minute = 2.0;
  const auto r_low = generate_smartphone_trace(low);
  const auto r_high = generate_smartphone_trace(high);
  EXPECT_LT(r_low.p_at_least(7), r_high.p_at_least(7));
  EXPECT_LT(r_low.active_cdf.quantile(0.5), r_high.active_cdf.quantile(0.5));
}

TEST(SmartphoneTrace, NoBurstsLowersTail) {
  SmartphoneTraceConfig c;
  c.total = 24 * 3600 * kSecond;
  SmartphoneTraceConfig no_bursts = c;
  no_bursts.burst_arrivals_per_minute = 0.0;
  const auto with_bursts = generate_smartphone_trace(c);
  const auto without = generate_smartphone_trace(no_bursts);
  EXPECT_LT(without.max_concurrent, with_bursts.max_concurrent);
}

TEST(SmartphoneTrace, CdfIsMonotoneAndNormalized) {
  SmartphoneTraceConfig c;
  c.total = 24 * 3600 * kSecond;
  const auto r = generate_smartphone_trace(c);
  const auto curve = r.active_cdf.curve();
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  EXPECT_GE(curve.front().first, 1.0) << "active CDF starts at N >= 1";
}

TEST(SmartphoneTrace, ValidatesConfig) {
  SmartphoneTraceConfig c;
  c.flow_duration_shape = 1.0;
  EXPECT_THROW(generate_smartphone_trace(c), PreconditionError);
  SmartphoneTraceConfig c2;
  c2.total = 0;
  EXPECT_THROW(generate_smartphone_trace(c2), PreconditionError);
}

}  // namespace
}  // namespace midrr::trace
