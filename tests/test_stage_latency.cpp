// StageTracer: deterministic sampling, the sum-reconciliation invariant,
// and the recycled-slot loss accounting that keeps histograms uncorrupt.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/stage_latency.hpp"
#include "util/rng.hpp"

namespace {

using midrr::IfaceId;
using midrr::telemetry::MetricsRegistry;
using midrr::telemetry::Stage;
using midrr::telemetry::StageTracer;

StageTracer::Options trace_all(std::uint32_t slots = 64) {
  StageTracer::Options o;
  o.sample_every = 1;
  o.slots_per_lane = slots;
  return o;
}

TEST(StageTracer, SamplesDeterministicallyOneInNPerFlow) {
  StageTracer::Options o;
  o.sample_every = 4;
  o.slots_per_lane = 64;
  StageTracer tracer(/*lanes=*/2, /*ifaces=*/1, /*max_flows=*/8, o);
  for (std::uint32_t offer = 0; offer < 20; ++offer) {
    const std::uint64_t tag = tracer.maybe_begin(0, /*flow=*/3, 1000 + offer);
    EXPECT_EQ(tag != 0, offer % 4 == 0) << "offer " << offer;
  }
  // Counters are per (lane, flow): a different lane or flow starts fresh.
  EXPECT_NE(tracer.maybe_begin(1, 3, 1), 0u);
  EXPECT_NE(tracer.maybe_begin(0, 5, 1), 0u);
  // Out-of-arena flow ids are never sampled.
  EXPECT_EQ(tracer.maybe_begin(0, /*flow=*/8, 1), 0u);
  EXPECT_EQ(tracer.started(), 7u);
}

TEST(StageTracer, CompleteFoldsAllFourDurations) {
  StageTracer tracer(1, /*ifaces=*/2, 4, trace_all());
  const std::uint64_t tag = tracer.maybe_begin(0, 0, /*t_offer=*/100);
  ASSERT_NE(tag, 0u);
  tracer.stamp_fanin(tag, 130);    // ring   = 30
  tracer.stamp_dequeue(tag, 170);  // queue  = 40
  std::uint64_t e2e = 0;
  ASSERT_TRUE(tracer.complete(tag, 100, /*t_sent=*/250, /*iface=*/1, &e2e));
  EXPECT_EQ(e2e, 150u);  // egress = 80

  EXPECT_EQ(tracer.stage_grid(1, Stage::kRing).sum_raw(), 30u);
  EXPECT_EQ(tracer.stage_grid(1, Stage::kQueue).sum_raw(), 40u);
  EXPECT_EQ(tracer.stage_grid(1, Stage::kEgress).sum_raw(), 80u);
  EXPECT_EQ(tracer.e2e_grid(1).sum_raw(), 150u);
  // Attributed to iface 1 only.
  EXPECT_EQ(tracer.e2e_grid(0).count(), 0u);
  EXPECT_EQ(tracer.completed(), 1u);
  EXPECT_EQ(tracer.lost(), 0u);
}

// The tentpole invariant: ring + queue + egress partition e2e EXACTLY, so
// the histogram sums reconcile with zero error no matter what the stamps
// were.  Randomized stamps across lanes, flows, and interfaces.
TEST(StageTracer, ReconciliationInvariantHoldsOnSumsExactly) {
  constexpr std::size_t kIfaces = 3;
  StageTracer tracer(/*lanes=*/2, kIfaces, /*max_flows=*/16, trace_all(256));
  midrr::Rng rng(20260808);
  const auto below = [&rng](std::int64_t n) {
    return static_cast<std::uint64_t>(rng.uniform_int(0, n - 1));
  };
  for (int i = 0; i < 500; ++i) {
    const std::size_t lane = below(2);
    const std::uint64_t t_offer = 1 + below(1'000'000);
    const std::uint64_t tag = tracer.maybe_begin(
        lane, static_cast<midrr::FlowId>(below(16)), t_offer);
    ASSERT_NE(tag, 0u);
    const std::uint64_t t_fanin = t_offer + below(10'000);
    const std::uint64_t t_dequeue = t_fanin + below(100'000);
    const std::uint64_t t_sent = t_dequeue + below(50'000);
    tracer.stamp_fanin(tag, t_fanin);
    tracer.stamp_dequeue(tag, t_dequeue);
    ASSERT_TRUE(tracer.complete(tag, t_offer, t_sent,
                                static_cast<IfaceId>(below(kIfaces)),
                                nullptr));
  }
  EXPECT_EQ(tracer.completed(), 500u);
  std::uint64_t stage_sum = 0, e2e_sum = 0, e2e_count = 0;
  for (IfaceId j = 0; j < kIfaces; ++j) {
    for (std::size_t s = 0; s < midrr::telemetry::kStageCount; ++s) {
      stage_sum += tracer.stage_grid(j, static_cast<Stage>(s)).sum_raw();
    }
    e2e_sum += tracer.e2e_grid(j).sum_raw();
    e2e_count += tracer.e2e_grid(j).count();
  }
  EXPECT_EQ(stage_sum, e2e_sum);
  EXPECT_EQ(e2e_count, 500u);
  EXPECT_EQ(tracer.reconciliation_error(), 0.0);
}

TEST(StageTracer, RecycledSlotIsLostNeverCorrupt) {
  StageTracer::Options o = trace_all(/*slots=*/2);
  o.reuse_grace_ns = 0;  // unconditional recycling: the trample contract
  StageTracer tracer(1, 1, 4, o);
  const std::uint64_t first = tracer.maybe_begin(0, 0, 10);
  tracer.stamp_fanin(first, 20);
  tracer.stamp_dequeue(first, 30);
  // Two more claims wrap the 2-slot lane and recycle `first`'s slot.
  const std::uint64_t second = tracer.maybe_begin(0, 1, 11);
  const std::uint64_t third = tracer.maybe_begin(0, 2, 12);
  ASSERT_NE(third, 0u);
  // Late stamps on the recycled tag must not touch the new occupant.
  tracer.stamp_dequeue(first, 99);
  EXPECT_FALSE(tracer.complete(first, 10, 40, 0, nullptr));
  EXPECT_EQ(tracer.lost(), 1u);
  EXPECT_EQ(tracer.e2e_grid(0).count(), 0u) << "nothing may be folded";
  // The live occupants still complete normally.
  tracer.stamp_fanin(second, 21);
  tracer.stamp_dequeue(second, 31);
  EXPECT_TRUE(tracer.complete(second, 11, 41, 0, nullptr));
}

TEST(StageTracer, IncoherentStampsAreDiscarded) {
  StageTracer tracer(1, 1, 4, trace_all());
  // Wrong offer cross-check (tag aliasing defense).
  std::uint64_t tag = tracer.maybe_begin(0, 0, 100);
  tracer.stamp_fanin(tag, 110);
  tracer.stamp_dequeue(tag, 120);
  EXPECT_FALSE(tracer.complete(tag, /*t_offer_expected=*/999, 130, 0,
                               nullptr));
  // Missing fan-in stamp.
  tag = tracer.maybe_begin(0, 0, 100);
  tracer.stamp_dequeue(tag, 120);
  EXPECT_FALSE(tracer.complete(tag, 100, 130, 0, nullptr));
  // Non-monotone: sent before dequeue.
  tag = tracer.maybe_begin(0, 0, 100);
  tracer.stamp_fanin(tag, 110);
  tracer.stamp_dequeue(tag, 120);
  EXPECT_FALSE(tracer.complete(tag, 100, /*t_sent=*/119, 0, nullptr));
  // Unknown interface.
  tag = tracer.maybe_begin(0, 0, 100);
  tracer.stamp_fanin(tag, 110);
  tracer.stamp_dequeue(tag, 120);
  EXPECT_FALSE(tracer.complete(tag, 100, 130, /*iface=*/7, nullptr));
  EXPECT_EQ(tracer.lost(), 4u);
  EXPECT_EQ(tracer.completed(), 0u);
}

// The record remembers the GLOBAL flow id it was claimed for.  Completion
// must hand it back, because by then the packet's own flow field has been
// rewritten to a shard-local scheduler id -- attributing the sample to a
// class via the packet would mis-account every multi-shard run.
TEST(StageTracer, CompleteReturnsTheFlowItWasClaimedFor) {
  StageTracer tracer(1, 1, /*max_flows=*/8, trace_all());
  const std::uint64_t tag = tracer.maybe_begin(0, /*flow=*/5, 100);
  ASSERT_NE(tag, 0u);
  tracer.stamp_fanin(tag, 110);
  tracer.stamp_dequeue(tag, 120);
  std::uint64_t e2e = 0;
  midrr::FlowId flow = midrr::kInvalidFlow;
  ASSERT_TRUE(tracer.complete(tag, 100, 130, 0, &e2e, &flow));
  EXPECT_EQ(flow, 5u);
  // A failed completion leaves the out-param untouched.
  flow = midrr::kInvalidFlow;
  EXPECT_FALSE(tracer.complete(tag, /*t_offer_expected=*/999, 130, 0,
                               nullptr, &flow));
  EXPECT_EQ(flow, midrr::kInvalidFlow);
}

TEST(StageTracer, DroppedSamplesAreCountedSeparately) {
  StageTracer tracer(1, 1, 4, trace_all());
  const std::uint64_t tag = tracer.maybe_begin(0, 0, 100);
  ASSERT_NE(tag, 0u);
  tracer.drop_sample(tag);  // the packet was shed before egress
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.lost(), 0u);
}

TEST(StageTracer, InFlightSlotsAreSkippedNotTrampled) {
  // One slot, default grace: while a sample is in flight the lane refuses
  // to recycle it -- a saturating producer must not starve completions of
  // the records they need (the adaptive shed loop reads windowed p99 from
  // exactly these histograms under exactly that overload).
  StageTracer tracer(1, 1, 4, trace_all(/*slots=*/1));
  const std::uint64_t first = tracer.maybe_begin(0, 0, 1000);
  ASSERT_NE(first, 0u);
  EXPECT_EQ(tracer.maybe_begin(0, 1, 1001), 0u) << "slot held: skip";
  EXPECT_EQ(tracer.maybe_begin(0, 2, 1002), 0u);
  EXPECT_EQ(tracer.skipped(), 2u);
  // Completion releases the record; the very next claim takes the slot.
  tracer.stamp_fanin(first, 1100);
  tracer.stamp_dequeue(first, 1200);
  ASSERT_TRUE(tracer.complete(first, 1000, 1300, 0, nullptr));
  const std::uint64_t second = tracer.maybe_begin(0, 3, 2000);
  EXPECT_NE(second, 0u);
  // Death releases it too.
  tracer.drop_sample(second);
  EXPECT_NE(tracer.maybe_begin(0, 0, 3000), 0u)
      << "sample_every=1: flow 0's next offer claims the freed slot";
  // A hold older than the grace is presumed leaked and recycled.
  const std::uint64_t grace = StageTracer::Options{}.reuse_grace_ns;
  const std::uint64_t stale = tracer.maybe_begin(0, 1, 5000);
  ASSERT_EQ(stale, 0u) << "slot still held by the previous claim";
  EXPECT_NE(tracer.maybe_begin(0, 2, 5000 + grace), 0u)
      << "past the grace the leaked record is trampled";
}

TEST(StageTracer, RegistersMetricsAndMirrorsSamples) {
  StageTracer tracer(1, 1, 4, trace_all());
  MetricsRegistry registry;
  tracer.register_metrics(registry, {"wifi"});
  const std::uint64_t tag = tracer.maybe_begin(0, 0, 100);
  tracer.stamp_fanin(tag, 110);
  tracer.stamp_dequeue(tag, 120);
  ASSERT_TRUE(tracer.complete(tag, 100, 130, 0, nullptr));
  const std::string page = midrr::telemetry::render_prometheus(registry);
  EXPECT_NE(page.find("midrr_stage_samples_total{outcome=\"completed\"} 1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("midrr_stage_latency_ns_count{iface=\"wifi\","
                      "stage=\"ring\"} 1"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("midrr_stage_reconciliation_error_ratio 0"),
            std::string::npos)
      << page;
}

}  // namespace
