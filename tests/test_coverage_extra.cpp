// Last-mile coverage: observer on plain DRR, scenario-text jitter knob,
// policy compiler on an empty world, and the bridge under UDP traffic.
#include <gtest/gtest.h>

#include "bridge/bridge.hpp"
#include "core/scenario_text.hpp"
#include "policy/compiler.hpp"
#include "sched/drr.hpp"
#include "sched/midrr.hpp"
#include "sched/observer.hpp"

namespace midrr {
namespace {

TEST(ObserverOnNaiveDrr, GrantsAndSendsButNeverSkips) {
  NaiveDrrScheduler s(1500);
  TraceRecorder trace;
  s.set_observer(&trace);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 10; ++i) {
    s.enqueue(Packet(a, 1000), 0);
    s.enqueue(Packet(b, 1000), 0);
  }
  for (int i = 0; i < 20; ++i) s.dequeue(j, 0);
  EXPECT_EQ(trace.sends(a, j) + trace.sends(b, j), 20u);
  EXPECT_EQ(trace.skips(a, j), 0u) << "naive DRR has no flags to skip on";
  EXPECT_EQ(trace.skips(b, j), 0u);
  // One 1500-byte quantum covers 1.5 of the 1000-byte packets, so ten
  // packets need about seven grants.
  EXPECT_GE(trace.grants(a, j), 6u);
}

TEST(ScenarioTextJitter, ParsedAndBounded) {
  const auto parsed = parse_scenario_text(R"(
[interface i]
rate = 1mbps
[flow f]
ifaces = i
[run]
jitter = 0.05
)");
  EXPECT_DOUBLE_EQ(parsed.run.options.link_jitter, 0.05);
  EXPECT_THROW(parse_scenario_text("[interface i]\nrate = 1mbps\n"
                                   "[flow f]\nifaces = i\n"
                                   "[run]\njitter = 1.5\n"),
               ScenarioParseError);
}

TEST(PolicyCompiler, NoInterfacesCompilesToEmpty) {
  policy::PreferenceCompiler c;
  const auto p = c.compile("anything");
  EXPECT_TRUE(p.willing.empty());
  EXPECT_DOUBLE_EQ(p.weight, 1.0);
}

TEST(PolicyCompiler, ReAddingInterfaceReplacesAttributes) {
  policy::PreferenceCompiler c;
  c.add_interface({"wifi", /*metered=*/false, 10 * kMillisecond, 0});
  c.add_interface({"wifi", /*metered=*/true, 10 * kMillisecond, 0});
  ASSERT_EQ(c.interfaces().size(), 1u);
  EXPECT_TRUE(c.interfaces()[0].metered);
}

TEST(BridgeUdp, DnsStyleTrafficSteersAndReturns) {
  using namespace midrr::bridge;
  using net::FrameBuilder;
  using net::Ipv4Address;
  using net::MacAddress;
  const Ipv4Address virt_ip(10, 200, 0, 1);
  VirtualBridge bridge(std::make_unique<MiDrrScheduler>(1500),
                       MacAddress::local(0), virt_ip);
  const IfaceId lte = bridge.add_physical(
      {"wwan0", MacAddress::local(2), Ipv4Address(100, 64, 3, 9)});
  const FlowId dns = bridge.add_flow({.weight = 1.0, .willing = {lte}, .name = "dns"});
  bridge.classifier().add_rule(
      {.proto = net::IpProto::kUdp, .dst_port = 53, .flow = dns});

  auto query = FrameBuilder()
                   .eth_src(MacAddress::local(0))
                   .eth_dst(MacAddress::local(9))
                   .ip_src(virt_ip)
                   .ip_dst(Ipv4Address(8, 8, 8, 8))
                   .udp(51000, 53)
                   .payload_size(32)
                   .build();
  ASSERT_EQ(bridge.send_from_app(std::move(query), 0), dns);
  const auto wire = bridge.next_frame(lte, 0);
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(wire->checksums_valid());
  const auto view = wire->parse();
  ASSERT_TRUE(view->udp.has_value());
  EXPECT_EQ(view->ip.src.to_string(), "100.64.3.9");

  auto answer = FrameBuilder()
                    .eth_src(MacAddress::local(9))
                    .eth_dst(MacAddress::local(2))
                    .ip_src(Ipv4Address(8, 8, 8, 8))
                    .ip_dst(view->ip.src)
                    .udp(53, view->udp->src_port)
                    .payload_size(64)
                    .build();
  const auto delivered = bridge.receive_from_network(lte, std::move(answer));
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->parse()->ip.dst, virt_ip);
  EXPECT_TRUE(delivered->checksums_valid());
}

TEST(BridgeQueueCap, DropsAccountedInStats) {
  using namespace midrr::bridge;
  using net::FrameBuilder;
  using net::Ipv4Address;
  using net::MacAddress;
  const Ipv4Address virt_ip(10, 200, 0, 1);
  VirtualBridge bridge(std::make_unique<MiDrrScheduler>(1500),
                       MacAddress::local(0), virt_ip);
  const IfaceId wifi = bridge.add_physical(
      {"wlan0", MacAddress::local(1), Ipv4Address(192, 168, 1, 2)});
  // Tiny queue: two ~550-byte frames fit, the third drops.
  const FlowId f = bridge.scheduler().add_flow({.weight = 1.0, .willing = {wifi}, .name = "f", .queue_capacity_bytes = 1200});
  bridge.classifier().set_default_flow(f);
  for (int i = 0; i < 3; ++i) {
    bridge.send_from_app(FrameBuilder()
                             .eth_src(MacAddress::local(0))
                             .eth_dst(MacAddress::local(9))
                             .ip_src(virt_ip)
                             .ip_dst(Ipv4Address(1, 1, 1, 1))
                             .tcp(1000, 80)
                             .payload_size(500)
                             .build(),
                         0);
  }
  EXPECT_EQ(bridge.stats().app_frames_dropped_queue, 1u);
  EXPECT_EQ(bridge.scheduler().backlog_packets(f), 2u);
}

}  // namespace
}  // namespace midrr
