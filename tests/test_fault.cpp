// Fault layer: JSON reader, FaultPlan schema validation, injector timeline
// compilation (down/up/flap/scale overlays), the stall/restart safe-point
// protocol, deterministic ingress sampling, pool-exhaust windows, and the
// Supervisor's link/worker state machines driven through a mock
// SupervisedRuntime (no threads, fully deterministic probes).  The
// end-to-end chaos runs against a live Runtime live in test_fault_e2e.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/adapt.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/json.hpp"
#include "fault/recorder.hpp"
#include "fault/supervisor.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace midrr {
namespace {

using fault::AdaptiveController;
using fault::AdaptOptions;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultPlanRecorder;
using fault::IngressAction;
using fault::JsonValue;
using fault::LinkState;
using fault::Supervisor;
using fault::SupervisorOptions;

// --- JSON reader ----------------------------------------------------------

TEST(FaultJson, ParsesNestedDocument) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "hi\n\"x\""}, "t": true, "n": null})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -300.0);
  const JsonValue* s = doc.find("b")->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->as_string(), "hi\n\"x\"");
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(FaultJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse("[1, 2,"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse(""), fault::JsonError);
  // Kind mismatches surface as runtime_error for schema-level reporting.
  const JsonValue doc = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW(doc.find("a")->as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.as_array(), std::runtime_error);
}

// --- FaultPlan parsing & validation ---------------------------------------

constexpr const char* kEveryKindPlan = R"({
  "seed": 42,
  "events": [
    {"at_ms": 2000, "kind": "iface_up",   "iface": 1},
    {"at_ms": 500,  "kind": "iface_down", "iface": 1},
    {"at_ms": 900,  "kind": "iface_flap", "iface": 1,
     "period_ms": 100, "duty": 0.25, "duration_ms": 600},
    {"at_ms": 300,  "kind": "iface_scale", "iface": 0, "scale": 0.25,
     "duration_ms": 400},
    {"at_ms": 400,  "kind": "worker_stall", "worker": 3,
     "duration_ms": 250},
    {"at_ms": 100,  "kind": "ingress_drop", "probability": 0.01,
     "duration_ms": 1000},
    {"at_ms": 100,  "kind": "ingress_dup", "probability": 0.5,
     "duration_ms": 1000},
    {"at_ms": 100,  "kind": "ingress_delay", "probability": 0.02,
     "delay_ms": 5, "duration_ms": 1000},
    {"at_ms": 600,  "kind": "pool_exhaust", "duration_ms": 200}
  ]
})";

TEST(FaultPlanParse, ParsesEveryKindAndSortsByTime) {
  const FaultPlan plan = FaultPlan::parse_json(kEveryKindPlan);
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 9u);
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at_ns, plan.events[i].at_ns);
  }
  const fault::FaultEvent& flap = plan.events[7];  // 900 ms
  EXPECT_EQ(flap.kind, FaultKind::kIfaceFlap);
  EXPECT_EQ(flap.iface, 1u);
  EXPECT_EQ(flap.period_ns, 100 * kMillisecond);
  EXPECT_DOUBLE_EQ(flap.duty, 0.25);
  EXPECT_EQ(flap.duration_ns, 600 * kMillisecond);
  const fault::FaultEvent& delay = plan.events[2];  // one of the 100 ms trio
  EXPECT_EQ(delay.kind, FaultKind::kIngressDelay);
  EXPECT_EQ(delay.delay_ns, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(delay.probability, 0.02);
  // A finite plan's horizon is the last instant any event is active.
  EXPECT_EQ(plan.horizon_ns(), 2 * kSecond);
}

TEST(FaultPlanParse, OpenEndedDownMakesTheHorizonUnbounded) {
  const FaultPlan plan = FaultPlan::parse_json(
      R"({"events": [{"at_ms": 100, "kind": "iface_down", "iface": 0}]})");
  EXPECT_EQ(plan.horizon_ns(), kSimTimeMax);
}

TEST(FaultPlanParse, RejectsSchemaViolationsLoudly) {
  const auto rejects = [](const char* text) {
    EXPECT_THROW(FaultPlan::parse_json(text), std::runtime_error) << text;
  };
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_melt", "iface": 0}]})");
  // A typo'd field must fail, not silently default.
  rejects(R"({"events": [{"at_ms": 1, "kind": "pool_exhaust",
              "duraton_ms": 5}]})");
  // Fields from OTHER kinds are unknown for this kind.
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_down", "iface": 0,
              "scale": 0.5}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_flap", "iface": 0,
              "duration_ms": 10}]})");  // missing period_ms
  rejects(R"({"events": [{"at_ms": -1, "kind": "iface_down", "iface": 0}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "ingress_drop",
              "probability": 1.5, "duration_ms": 10}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_flap", "iface": 0,
              "period_ms": 10, "duration_ms": 10, "duty": 1.0}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_scale", "iface": 0,
              "scale": 2.0, "duration_ms": 10}]})");
  rejects(R"({"seed": 1.5, "events": []})");
  rejects(R"({"seeds": 1, "events": []})");  // unknown top-level key
  rejects(R"({"seed": 1})");                 // missing events
}

// --- FaultPlan canonical serialization ------------------------------------

TEST(FaultPlanJson, RoundTripIsByteIdenticalForEveryKind) {
  // kEveryKindPlan covers every fault class the chaos CI plan uses (all 9
  // kinds).  Canonical form is a fixpoint: parse(to_json()).to_json() must
  // be byte-identical, per kind, with events stably time-sorted.
  const FaultPlan plan = FaultPlan::parse_json(kEveryKindPlan);
  const std::string canonical = plan.to_json();
  const FaultPlan reparsed = FaultPlan::parse_json(canonical);
  EXPECT_EQ(reparsed.to_json(), canonical);
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(reparsed.events[i].at_ns, plan.events[i].at_ns) << i;
    EXPECT_EQ(reparsed.events[i].duration_ns, plan.events[i].duration_ns)
        << i;
  }
  EXPECT_EQ(reparsed.seed, 42u);
  // Integral millisecond timestamps print as integers, so a hand-written
  // plan's "at_ms": 500 survives the round trip verbatim.
  EXPECT_NE(canonical.find("\"at_ms\": 500"), std::string::npos);
  EXPECT_EQ(canonical.find(".000000"), std::string::npos);
}

TEST(FaultPlanJson, FractionalMillisecondsSurviveTheRoundTrip) {
  const FaultPlan plan = FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0.25, "kind": "iface_scale", "iface": 0, "scale": 0.125,
       "duration_ms": 1.5}]})");
  EXPECT_EQ(plan.events[0].at_ns, 250 * kMicrosecond);
  EXPECT_EQ(plan.events[0].duration_ns, 1500 * kMicrosecond);
  const std::string canonical = plan.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical);
  EXPECT_NE(canonical.find("\"at_ms\": 0.25"), std::string::npos);
}

TEST(FaultPlanJson, ObservedNotesRoundTripAndStayReplayInert) {
  const char* text = R"({
    "seed": 3,
    "events": [{"at_ms": 100, "kind": "iface_down", "iface": 0}],
    "observed": [
      {"at_ms": 250, "note": "shed engaged watermark_bytes=8192"},
      {"at_ms": 120, "note": "second \"quoted\" note"}
    ]
  })";
  const FaultPlan plan = FaultPlan::parse_json(text);
  ASSERT_EQ(plan.observed.size(), 2u);
  // Stable-sorted by time, like events.
  EXPECT_EQ(plan.observed[0].at_ns, 120 * kMillisecond);
  EXPECT_EQ(plan.observed[1].note, "shed engaged watermark_bytes=8192");
  const std::string canonical = plan.to_json();
  const FaultPlan reparsed = FaultPlan::parse_json(canonical);
  EXPECT_EQ(reparsed.to_json(), canonical);
  ASSERT_EQ(reparsed.observed.size(), 2u);
  EXPECT_EQ(reparsed.observed[1].note, "shed engaged watermark_bytes=8192");
  // Replay-inert: the injector compiles the same timeline with or without
  // the annotations.
  FaultInjector inj(plan);
  inj.attach(1, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 200 * kMillisecond), 0.0);
  // Unknown fields inside an observed entry fail loudly, like events.
  EXPECT_THROW(FaultPlan::parse_json(
                   R"({"events": [], "observed": [
                       {"at_ms": 1, "note": "x", "extra": 2}]})"),
               std::runtime_error);
  EXPECT_THROW(FaultPlan::parse_json(
                   R"({"events": [], "observed": [{"at_ms": -1,
                       "note": "x"}]})"),
               std::runtime_error);
}

// --- FaultPlanRecorder ----------------------------------------------------

TEST(FaultRecorder, RecordedTransitionsReplayThroughAnInjector) {
  FaultPlanRecorder rec(7);
  rec.record_link_dead(1, 500 * kMillisecond);
  rec.record_link_revived(1, 900 * kMillisecond);
  rec.record_iface_scale(0, 300 * kMillisecond, 700 * kMillisecond, 0.5);
  rec.record_worker_stall(2, 100 * kMillisecond, 250 * kMillisecond);
  rec.note(600 * kMillisecond, "shed engaged watermark_bytes=4096");
  EXPECT_EQ(rec.event_count(), 4u);
  EXPECT_EQ(rec.note_count(), 1u);

  const FaultPlan plan = rec.plan();
  EXPECT_EQ(plan.seed, 7u);
  const std::string canonical = plan.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical)
      << "a recorded incident is itself a canonical plan";

  // The recorded plan drives an injector: the dead window is a scale-0
  // step, the droop a 0.5 overlay, both bounded exactly as observed.
  FaultInjector inj(FaultPlan::parse_json(canonical));
  inj.attach(2, 3);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 600 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 1000 * kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 400 * kMillisecond), 0.5);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 800 * kMillisecond), 1.0);
}

TEST(FaultRecorder, SubMillisecondEpisodesWidenToTheSchemaMinimum) {
  FaultPlanRecorder rec;
  rec.record_iface_scale(0, 100 * kMillisecond, 100 * kMillisecond, 0.4);
  rec.record_worker_stall(0, 0, 10);  // 10 ns observed freeze window
  const FaultPlan plan = rec.plan();
  ASSERT_EQ(plan.events.size(), 2u);
  for (const auto& event : plan.events) {
    EXPECT_GE(event.duration_ns, kMillisecond);
  }
  const std::string canonical = plan.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical);
}

// --- Injector: capacity timelines -----------------------------------------

TEST(FaultInjector, DownUpCompilesToAStepTimeline) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 500,  "kind": "iface_down", "iface": 1},
      {"at_ms": 2000, "kind": "iface_up",   "iface": 1}]})"));
  inj.attach(2, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 500 * kMillisecond - 1), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 500 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, kSecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 2 * kSecond), 1.0);
  // The untouched interface never leaves 1.0.
  EXPECT_EQ(inj.iface_timeline(0).size(), 1u);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, kSecond), 1.0);
}

TEST(FaultInjector, CursorWalkMatchesTheSnapshotForm) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 100, "kind": "iface_scale", "iface": 0, "scale": 0.5,
       "duration_ms": 200},
      {"at_ms": 400, "kind": "iface_down", "iface": 0},
      {"at_ms": 700, "kind": "iface_up", "iface": 0},
      {"at_ms": 800, "kind": "iface_flap", "iface": 0,
       "period_ms": 40, "duty": 0.5, "duration_ms": 200}]})"));
  inj.attach(1, 1);
  std::size_t cursor = 0;
  for (SimTime t = 0; t <= 1200 * kMillisecond; t += kMillisecond) {
    ASSERT_DOUBLE_EQ(inj.iface_scale(0, t, cursor), inj.iface_scale_at(0, t))
        << "at t = " << t;
  }
}

TEST(FaultInjector, FlapIsASquareWaveWithTheRequestedDuty) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 1000, "kind": "iface_flap", "iface": 0,
       "period_ms": 100, "duty": 0.5, "duration_ms": 400}]})"));
  inj.attach(1, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1020 * kMillisecond), 1.0);  // up half
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1070 * kMillisecond), 0.0);  // down
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1120 * kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1170 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1400 * kMillisecond), 1.0)
      << "flap over, base state restored";
}

TEST(FaultInjector, IfaceUpCancelsARunningOverlay) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 300, "kind": "iface_scale", "iface": 0, "scale": 0.25,
       "duration_ms": 1000},
      {"at_ms": 600, "kind": "iface_up", "iface": 0}]})"));
  inj.attach(1, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 400 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 700 * kMillisecond), 1.0)
      << "iface_up truncates the scale window";
}

TEST(FaultInjector, AttachValidatesTargetsAgainstTheTopology) {
  {
    FaultInjector inj(FaultPlan::parse_json(
        R"({"events": [{"at_ms": 1, "kind": "iface_down", "iface": 5}]})"));
    EXPECT_THROW(inj.attach(2, 1), std::runtime_error);
  }
  {
    FaultInjector inj(FaultPlan::parse_json(
        R"({"events": [{"at_ms": 1, "kind": "worker_stall", "worker": 2,
            "duration_ms": 10}]})"));
    EXPECT_THROW(inj.attach(2, 2), std::runtime_error);
  }
  {
    FaultInjector inj(FaultPlan::parse_json(R"({"events": []})"));
    inj.attach(1, 1);
    EXPECT_THROW(inj.attach(1, 1), std::runtime_error) << "attached twice";
  }
}

// --- Injector: ingress sampling & pool windows ----------------------------

TEST(FaultInjector, IngressSamplingIsDeterministicPerProducer) {
  const char* text = R"({"seed": 9, "events": [
      {"at_ms": 0, "kind": "ingress_drop", "probability": 0.3,
       "duration_ms": 1000},
      {"at_ms": 0, "kind": "ingress_delay", "probability": 0.3,
       "delay_ms": 7, "duration_ms": 1000}]})";
  FaultInjector a(FaultPlan::parse_json(text));
  FaultInjector b(FaultPlan::parse_json(text));
  a.attach(1, 1);
  b.attach(1, 1);
  Rng rng_a = a.fork_ingress_rng(0);
  Rng rng_b = b.fork_ingress_rng(0);
  Rng rng_other = a.fork_ingress_rng(1);
  bool producers_diverged = false;
  for (int i = 0; i < 256; ++i) {
    const SimTime now = i * kMillisecond;
    SimDuration d_a = 0, d_b = 0, d_o = 0;
    const IngressAction act_a = a.sample_ingress(now, rng_a, d_a);
    const IngressAction act_b = b.sample_ingress(now, rng_b, d_b);
    ASSERT_EQ(act_a, act_b) << "same plan + producer must replay identically";
    ASSERT_EQ(d_a, d_b);
    if (act_a == IngressAction::kDelay) {
      EXPECT_EQ(d_a, 7 * kMillisecond);
    }
    if (a.sample_ingress(now, rng_other, d_o) != act_b) {
      producers_diverged = true;
    }
  }
  EXPECT_TRUE(producers_diverged) << "producer streams must be independent";
  EXPECT_GT(a.ingress_drops(), 0u);
  EXPECT_GT(a.ingress_delays(), 0u);
}

TEST(FaultInjector, SamplingOutsideEveryWindowIsANoOp) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 100, "kind": "ingress_drop", "probability": 1.0,
       "duration_ms": 100}]})"));
  inj.attach(1, 1);
  EXPECT_TRUE(inj.has_ingress_faults());
  Rng rng = inj.fork_ingress_rng(0);
  SimDuration delay = 0;
  EXPECT_EQ(inj.sample_ingress(99 * kMillisecond, rng, delay),
            IngressAction::kNone);
  EXPECT_EQ(inj.sample_ingress(200 * kMillisecond, rng, delay),
            IngressAction::kNone);
  EXPECT_EQ(inj.sample_ingress(150 * kMillisecond, rng, delay),
            IngressAction::kDrop);
  EXPECT_EQ(inj.ingress_drops(), 1u);
}

TEST(FaultInjector, PoolExhaustWindowGatesAcquires) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 600, "kind": "pool_exhaust", "duration_ms": 200}]})"));
  inj.attach(1, 1);
  EXPECT_TRUE(inj.has_pool_faults());
  EXPECT_FALSE(inj.pool_exhausted(599 * kMillisecond));
  EXPECT_TRUE(inj.pool_exhausted(600 * kMillisecond));
  EXPECT_TRUE(inj.pool_exhausted(799 * kMillisecond));
  EXPECT_FALSE(inj.pool_exhausted(800 * kMillisecond));
  inj.note_pool_reject();
  inj.note_pool_reject();
  EXPECT_EQ(inj.pool_rejects(), 2u);
}

// --- Injector: stall / restart safe-point protocol ------------------------

/// Waits (bounded) until `worker` is provably parked at the safe point.
bool wait_for_stall(const FaultInjector& inj, std::uint32_t worker) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (inj.worker_in_stall(worker)) return true;
    std::this_thread::yield();
  }
  return false;
}

TEST(FaultInjector, StallWindowExpiresBackIntoTheLoop) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 30}]})"));
  inj.attach(1, 1);
  std::atomic<std::uint64_t> generation{0};
  EXPECT_EQ(inj.maybe_stall(0, kMillisecond, generation, 0),
            FaultInjector::StallOutcome::kResumed)
      << "parks for the remaining ~29 ms, then resumes naturally";
  EXPECT_EQ(inj.maybe_stall(0, 31 * kMillisecond, generation, 0),
            FaultInjector::StallOutcome::kNotStalled)
      << "window expired; cursor moves past it";
  EXPECT_EQ(inj.stalls_entered(), 1u);
}

TEST(FaultInjector, RestartSupersedesAParkedWorkerExactlyOnce) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 60000}]})"));
  inj.attach(1, 2);
  std::atomic<std::uint64_t> gen0{0};
  std::atomic<std::uint64_t> gen1{0};
  std::atomic<int> outcome{-1};
  std::thread parked([&] {
    outcome.store(static_cast<int>(inj.maybe_stall(0, kMillisecond, gen0, 0)),
                  std::memory_order_release);
  });
  ASSERT_TRUE(wait_for_stall(inj, 0));
  // A worker NOT at the safe point cannot be restarted.
  EXPECT_FALSE(inj.begin_restart(1, gen1));
  EXPECT_EQ(gen1.load(), 0u);
  // The parked one can: generation bumps, the thread exits superseded.
  EXPECT_TRUE(inj.begin_restart(0, gen0));
  parked.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(FaultInjector::StallOutcome::kSuperseded));
  EXPECT_EQ(gen0.load(), 1u);
  // The replacement must not re-enter the very window its predecessor was
  // killed out of (the restart advanced the slot's cursor past it).
  EXPECT_EQ(inj.maybe_stall(0, 2 * kMillisecond, gen0, 1),
            FaultInjector::StallOutcome::kNotStalled);
}

TEST(FaultInjector, ReleaseAllUnparksForShutdown) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 60000}]})"));
  inj.attach(1, 1);
  std::atomic<std::uint64_t> generation{0};
  std::atomic<int> outcome{-1};
  std::thread parked([&] {
    outcome.store(static_cast<int>(
                      inj.maybe_stall(0, kMillisecond, generation, 0)),
                  std::memory_order_release);
  });
  ASSERT_TRUE(wait_for_stall(inj, 0));
  inj.release_all();
  parked.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(FaultInjector::StallOutcome::kResumed));
  EXPECT_EQ(generation.load(), 0u) << "shutdown is not a restart";
}

// --- Supervisor (mock runtime; probes driven by hand) ---------------------

class MockRuntime : public fault::SupervisedRuntime {
 public:
  struct Link {
    std::string name;
    std::uint64_t sent_bytes = 0;
    double configured_bps = 8e6;
    double tokens = 0.0;
    std::uint64_t backlog = 0;
    std::uint64_t send_errors = 0;  ///< cumulative egress hard errors
    bool down = false;  ///< last actuation received
  };

  std::vector<Link> links;
  std::vector<std::uint64_t> heartbeats;
  SimTime now = 0;
  bool restart_result = false;
  std::vector<std::uint32_t> restart_calls;
  std::vector<std::pair<IfaceId, bool>> down_calls;

  std::size_t iface_count() const override { return links.size(); }
  std::size_t worker_count() const override { return heartbeats.size(); }
  SimTime now_ns() const override { return now; }
  std::string iface_name(IfaceId iface) const override {
    return links[iface].name;
  }
  std::uint64_t iface_sent_bytes(IfaceId iface) const override {
    return links[iface].sent_bytes;
  }
  double iface_configured_bps(IfaceId iface, SimTime) const override {
    return links[iface].configured_bps;
  }
  double iface_tokens(IfaceId iface) const override {
    return links[iface].tokens;
  }
  std::uint64_t iface_backlog_bytes(IfaceId iface) const override {
    return links[iface].backlog;
  }
  std::uint64_t worker_heartbeat(std::uint32_t worker) const override {
    return heartbeats[worker];
  }
  std::uint64_t iface_send_errors(IfaceId iface) const override {
    return links[iface].send_errors;
  }
  void set_iface_down(IfaceId iface, bool down) override {
    links[iface].down = down;
    down_calls.emplace_back(iface, down);
  }
  bool restart_worker(std::uint32_t worker) override {
    restart_calls.push_back(worker);
    return restart_result;
  }
};

SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.probe_interval_ns = kMillisecond;
  options.dead_after_probes = 3;
  options.healthy_after_probes = 2;
  options.worker_stall_probes = 4;
  options.replay_clustering = false;
  return options;
}

/// Advances the mock clock one probe interval and probes once.
void tick(MockRuntime& rt, Supervisor& sup) {
  rt.now += kMillisecond;
  sup.probe();
}

TEST(Supervisor, SilentLinkWithBacklogDiesAfterHysteresis) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();  // baseline: no verdict from a zero-length window
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);

  tick(rt, sup);  // silent probe 1 -> suspect
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  EXPECT_TRUE(sup.any_degraded());
  EXPECT_TRUE(rt.down_calls.empty());
  tick(rt, sup);  // 2
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  tick(rt, sup);  // 3 -> dead, one actuation
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  ASSERT_EQ(rt.down_calls.size(), 1u);
  EXPECT_EQ(rt.down_calls[0], (std::pair<IfaceId, bool>{0, true}));
  tick(rt, sup);  // stays dead without re-actuating
  EXPECT_EQ(rt.down_calls.size(), 1u);
  EXPECT_GE(sup.transitions(), 2u);  // healthy->suspect, suspect->dead
}

TEST(Supervisor, ProgressResetsTheDeathCountdown) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  tick(rt, sup);
  tick(rt, sup);  // two silent probes: one short of dead
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  rt.links[0].sent_bytes += 100'000;  // healthy drain resumes
  tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  for (int i = 0; i < 2; ++i) tick(rt, sup);  // silence again: not dead yet
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
      << "the countdown restarted from zero";
  EXPECT_TRUE(rt.down_calls.empty());
}

TEST(Supervisor, SustainedSendErrorsMarkTheLinkSuspectNotDead) {
  // The egress-error path: the pacer moves bytes every window (the link
  // is NOT silent), but the socket keeps reporting new hard transmit
  // failures.  Two consecutive erroring windows (send_error_probes) mark
  // the link suspect; it must never be killed on errors alone, and it
  // recovers through the usual hysteresis once the counter stops moving.
  MockRuntime rt;
  rt.links.push_back({.name = "wifi"});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());  // send_error_probes = 2 (default)
  sup.probe();                         // baseline
  const auto advance = [&](bool erroring) {
    rt.links[0].sent_bytes += 100'000;  // healthy drain: never silent
    if (erroring) rt.links[0].send_errors += 3;
    tick(rt, sup);
  };
  advance(true);  // one erroring window: not yet sustained
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  advance(true);  // two consecutive -> suspect
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  EXPECT_TRUE(sup.any_degraded());
  for (int i = 0; i < 4; ++i) advance(true);  // errors persist
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
      << "erroring links are degraded, never killed";
  EXPECT_TRUE(rt.down_calls.empty());
  advance(false);  // counter stops moving: streak resets, link recovers
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  EXPECT_FALSE(sup.any_degraded());
}

TEST(Supervisor, TokenMotionRevivesADeadLink) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 3; ++i) tick(rt, sup);
  ASSERT_EQ(sup.link_state(0), LinkState::kDead);
  // Dead links carry no traffic (their flows were re-steered away), so a
  // refilling token bucket is the recovery signal.
  rt.links[0].tokens = 2000.0;  // past revive_tokens (one MTU)
  tick(rt, sup);                // good probe 1 of 2
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  tick(rt, sup);  // 2 -> revived
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  ASSERT_EQ(rt.down_calls.size(), 2u);
  EXPECT_EQ(rt.down_calls.back(), (std::pair<IfaceId, bool>{0, false}));
}

TEST(Supervisor, FlappingTokensDoNotRevive) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 3; ++i) tick(rt, sup);
  ASSERT_EQ(sup.link_state(0), LinkState::kDead);
  // One good probe, then the radio dies again: hysteresis holds the
  // verdict, so the control plane never sees the blip.
  rt.links[0].tokens = 2000.0;
  tick(rt, sup);
  rt.links[0].tokens = 0.0;
  for (int i = 0; i < 8; ++i) tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  EXPECT_EQ(rt.down_calls.size(), 1u) << "exactly the original kill";
}

TEST(Supervisor, DegradedLinkIsFlaggedButNeverKilled) {
  MockRuntime rt;
  // Configured 80 Mb/s; moves ~8 KB per 1 ms probe = 64 Mb/s... make it
  // crawl instead: 100 bytes per probe = 0.8 Mb/s = 1% of configured.
  rt.links.push_back({.name = "lte", .configured_bps = 80e6,
                      .backlog = 50'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 10; ++i) {
    rt.links[0].sent_bytes += 100;
    tick(rt, sup);
    EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
        << "slow-but-alive: killing it would strictly reduce capacity";
  }
  EXPECT_TRUE(rt.down_calls.empty());
  // Full-rate drain clears the flag (10 KB per ms = 80 Mb/s).
  rt.links[0].sent_bytes += 10'000;
  tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
}

TEST(Supervisor, UnpacedAndIdleLinksAreNeverJudged) {
  MockRuntime rt;
  rt.links.push_back({.name = "unpaced", .configured_bps = 0.0,
                      .backlog = 10'000});
  rt.links.push_back({.name = "idle", .configured_bps = 8e6, .backlog = 0});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 10; ++i) tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy)
      << "no configured rate means no 'should be moving' baseline";
  EXPECT_EQ(sup.link_state(1), LinkState::kHealthy)
      << "an idle link (no backlog) is not silent, just unused";
  EXPECT_TRUE(rt.down_calls.empty());
}

TEST(Supervisor, FrozenHeartbeatTriggersOneRestartPerThreshold) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0, 0};  // both frozen from the start
  rt.restart_result = true;
  SupervisorOptions options = fast_options();
  options.worker_stall_probes = 3;
  Supervisor sup(rt, options);
  for (int i = 0; i < 3; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 2u) << "one per frozen worker";
  EXPECT_EQ(sup.restarts_succeeded(), 2u);
  EXPECT_EQ(rt.restart_calls.size(), 2u);
  // A live heartbeat resets the countdown: bump one worker, freeze probes.
  rt.heartbeats[0] = 8;
  for (int i = 0; i < 3; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 3u)
      << "only the still-frozen worker earns a second attempt";
}

TEST(Supervisor, RefusedRestartsAreCountedNotRetriedBlindly) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0};
  rt.restart_result = false;  // "not at the safe point"
  SupervisorOptions options = fast_options();
  options.worker_stall_probes = 2;
  Supervisor sup(rt, options);
  for (int i = 0; i < 4; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 2u);
  EXPECT_EQ(sup.restarts_refused(), 2u);
  EXPECT_EQ(sup.restarts_succeeded(), 0u);
  const auto log = sup.log();
  EXPECT_FALSE(log.empty());
}

// --- Supervisor: Theorem-2 replay on survivors ----------------------------

class StaticFairness : public telemetry::FairnessSource {
 public:
  telemetry::FairnessSample sample;
  telemetry::FairnessSample fairness_sample() override { return sample; }
};

TEST(Supervisor, ReplaysClusteringOnTheSurvivingInterfaceSet) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0", .configured_bps = 10e6});
  rt.links.push_back({.name = "if1", .configured_bps = 5e6,
                      .backlog = 10'000});
  rt.heartbeats = {0};

  StaticFairness fairness;
  fairness.sample.capacities_bps = {10e6, 5e6};
  fairness.sample.iface_sent_bytes = {0, 0};
  telemetry::FairnessFlowSample both;
  both.id = 0;
  both.name = "both";
  both.willing = {true, true};
  telemetry::FairnessFlowSample pinned;
  pinned.id = 1;
  pinned.name = "pinned";
  pinned.willing = {false, true};
  fairness.sample.flows = {both, pinned};

  SupervisorOptions options = fast_options();
  options.replay_clustering = true;
  Supervisor sup(rt, options, &fairness);
  sup.probe();
  // Keep if0 visibly healthy while if1 goes silent.
  for (int i = 0; i < 3; ++i) {
    rt.links[0].sent_bytes += 10'000;
    tick(rt, sup);
  }
  ASSERT_EQ(sup.link_state(1), LinkState::kDead);
  // The kill triggered one replay: "pinned" has no surviving willing
  // interface (quarantined, excluded), "both" gets all of if0 -- a
  // consistent single-interface max-min instance.
  EXPECT_EQ(sup.clustering_checks(), 1u);
  EXPECT_EQ(sup.clustering_violations(), 0u);
  EXPECT_EQ(sup.last_clustering_verdict(), "");
  const auto log = sup.log();
  bool saw_consistent = false;
  for (const auto& entry : log) {
    if (entry.what.find("clustering consistent") != std::string::npos) {
      saw_consistent = true;
    }
  }
  EXPECT_TRUE(saw_consistent);
}

// --- AdaptiveController (probes driven by hand) ---------------------------

/// MockRuntime plus the overload-control seams the adaptive loop drives.
class AdaptMockRuntime : public MockRuntime {
 public:
  std::uint64_t shed = 0;
  std::vector<std::uint64_t> set_shed_calls;
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> shard_of;  ///< per-iface; empty = all shard 0
  bool has_tracer = false;
  std::vector<std::uint64_t> e2e;  ///< cumulative bucket counts

  std::size_t shard_count() const override { return shards; }
  std::uint32_t iface_shard(IfaceId iface) const override {
    return iface < shard_of.size() ? shard_of[iface] : 0;
  }
  bool sample_e2e_buckets(std::vector<std::uint64_t>& out) const override {
    if (!has_tracer) return false;
    out = e2e;
    return true;
  }
  std::uint64_t shed_bytes() const override { return shed; }
  void set_shed_bytes(std::uint64_t bytes) override {
    shed = bytes;
    set_shed_calls.push_back(bytes);
  }
};

/// alpha = 1 makes the EWMA track the latest window exactly, so hysteresis
/// arithmetic in the tests stays integral.
AdaptOptions unit_options() {
  AdaptOptions options;
  options.ewma_alpha = 1.0;
  return options;
}

TEST(AdaptiveController, DroopEntersAndExitsThroughHysteresis) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "lte", .configured_bps = 8e6,
                      .backlog = 10'000});
  AdaptiveController adapt(rt, unit_options());
  const std::vector<LinkState> healthy = {LinkState::kHealthy};

  // Two low windows: inside the entry streak, capacity still believed.
  adapt.on_probe(kMillisecond, 1e-3, {4e6}, healthy);
  adapt.on_probe(2 * kMillisecond, 1e-3, {4e6}, healthy);
  EXPECT_FALSE(adapt.drooped(0));
  EXPECT_DOUBLE_EQ(adapt.effective_capacity_bps(0, 8e6), 8e6);
  EXPECT_DOUBLE_EQ(adapt.drift_ratio(0), 0.5);

  // Third consecutive low window crosses droop_enter_probes.
  adapt.on_probe(3 * kMillisecond, 1e-3, {4e6}, healthy);
  EXPECT_TRUE(adapt.drooped(0));
  EXPECT_EQ(adapt.droop_enters(), 1u);
  EXPECT_DOUBLE_EQ(adapt.effective_capacity_bps(0, 8e6), 4e6)
      << "fairness should believe the measured capacity while drooped";

  // Recovery: two high windows hold the droop, the third clears it.
  adapt.on_probe(4 * kMillisecond, 1e-3, {8e6}, healthy);
  adapt.on_probe(5 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_TRUE(adapt.drooped(0));
  adapt.on_probe(6 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_FALSE(adapt.drooped(0));
  EXPECT_EQ(adapt.droop_exits(), 1u);
  EXPECT_DOUBLE_EQ(adapt.effective_capacity_bps(0, 8e6), 8e6);
}

TEST(AdaptiveController, IdleAndMidBandWindowsBreakTheEntryStreak) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "lte", .configured_bps = 8e6,
                      .backlog = 10'000});
  AdaptiveController adapt(rt, unit_options());
  const std::vector<LinkState> healthy = {LinkState::kHealthy};
  adapt.on_probe(kMillisecond, 1e-3, {4e6}, healthy);
  adapt.on_probe(2 * kMillisecond, 1e-3, {4e6}, healthy);
  // An idle window (no backlog) is not capacity evidence: streak resets.
  rt.links[0].backlog = 0;
  adapt.on_probe(3 * kMillisecond, 1e-3, {0.0}, healthy);
  rt.links[0].backlog = 10'000;
  adapt.on_probe(4 * kMillisecond, 1e-3, {4e6}, healthy);
  adapt.on_probe(5 * kMillisecond, 1e-3, {4e6}, healthy);
  EXPECT_FALSE(adapt.drooped(0)) << "the idle window reset the countdown";
  // A window inside the hysteresis band (0.70..0.90) also resets it.
  adapt.on_probe(6 * kMillisecond, 1e-3, {6.4e6}, healthy);  // ratio 0.8
  adapt.on_probe(7 * kMillisecond, 1e-3, {4e6}, healthy);
  adapt.on_probe(8 * kMillisecond, 1e-3, {4e6}, healthy);
  EXPECT_FALSE(adapt.drooped(0));
  adapt.on_probe(9 * kMillisecond, 1e-3, {4e6}, healthy);
  EXPECT_TRUE(adapt.drooped(0));
}

TEST(AdaptiveController, DeadLinksAreTopologyNotDrift) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "a", .configured_bps = 8e6, .backlog = 5'000});
  rt.links.push_back({.name = "b", .configured_bps = 8e6, .backlog = 5'000});
  FaultPlanRecorder rec;
  AdaptiveController adapt(rt, unit_options());
  adapt.set_recorder(&rec);
  const std::vector<LinkState> healthy = {LinkState::kHealthy,
                                          LinkState::kHealthy};
  for (int i = 1; i <= 3; ++i) {
    adapt.on_probe(i * kMillisecond, 1e-3, {4e6, 4e6}, healthy);
  }
  ASSERT_TRUE(adapt.drooped(0));
  ASSERT_TRUE(adapt.drooped(1));
  // Link 1 dies: its open droop closes into the recorder (episodes must
  // not overlap the recorded iface_down window on replay).
  adapt.on_probe(4 * kMillisecond, 1e-3, {4e6, 0.0},
                 {LinkState::kHealthy, LinkState::kDead});
  EXPECT_TRUE(adapt.drooped(0));
  EXPECT_FALSE(adapt.drooped(1));
  EXPECT_EQ(rec.event_count(), 1u);
  // finalize() closes the remaining episode at shutdown.
  adapt.finalize(10 * kMillisecond);
  EXPECT_FALSE(adapt.drooped(0));
  const FaultPlan plan = rec.plan();
  ASSERT_EQ(plan.events.size(), 2u);
  for (const auto& event : plan.events) {
    EXPECT_EQ(event.kind, FaultKind::kIfaceScale);
    EXPECT_DOUBLE_EQ(event.scale, 0.5)
        << "the episode records its lowest measured drift ratio";
  }
  const std::string canonical = plan.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical);
}

TEST(AdaptiveController, WatermarkFollowsLittlesLawOnTheSlowestShard) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "a", .configured_bps = 8e6, .backlog = 1'000});
  rt.links.push_back({.name = "b", .configured_bps = 16e6, .backlog = 1'000});
  rt.shards = 2;
  rt.shard_of = {0, 1};
  AdaptOptions options = unit_options();
  options.target_p99_ns = 10 * kMillisecond;
  AdaptiveController adapt(rt, options);
  const std::vector<LinkState> healthy = {LinkState::kHealthy,
                                          LinkState::kHealthy};
  // No tracer wired: the correction stays at 1, so the watermark is the
  // pure Little's-law bound of the slowest shard: 8e6/8 * 10 ms = 10 kB.
  adapt.on_probe(kMillisecond, 1e-3, {8e6, 16e6}, healthy);
  EXPECT_EQ(rt.shed, 10'000u);
  EXPECT_EQ(adapt.current_shed_bytes(), 10'000u);
  EXPECT_DOUBLE_EQ(adapt.correction(), 1.0);
  EXPECT_FALSE(adapt.shed_active()) << "backlog sits below the watermark";

  // The slow shard droops to 4 Mb/s: the watermark halves with it.
  adapt.on_probe(2 * kMillisecond, 1e-3, {4e6, 16e6}, healthy);
  EXPECT_EQ(rt.shed, 5'000u);

  // A dead slow link leaves the fast shard as the binding one.
  adapt.on_probe(3 * kMillisecond, 1e-3, {0.0, 16e6},
                 {LinkState::kDead, LinkState::kHealthy});
  EXPECT_EQ(rt.shed, 20'000u);

  // Floor clamp: a millisecond-scale target cannot shed everything.
  adapt.set_target_p99_ns(kMillisecond / 1000);  // 1 us
  adapt.on_probe(4 * kMillisecond, 1e-3, {8e6, 16e6}, healthy);
  EXPECT_EQ(rt.shed, options.shed_floor_bytes);
  EXPECT_EQ(adapt.retunes(), 1u);

  // Target 0 disarms the shedding half without touching the watermark.
  adapt.set_target_p99_ns(0);
  const std::uint64_t before = rt.shed;
  adapt.on_probe(5 * kMillisecond, 1e-3, {8e6, 16e6}, healthy);
  EXPECT_EQ(rt.shed, before);
  EXPECT_FALSE(adapt.shed_active());
}

TEST(AdaptiveController, ShedEngageEdgesAreRecordedWithTheWatermark) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "a", .configured_bps = 8e6,
                      .backlog = 50'000});
  FaultPlanRecorder rec;
  AdaptOptions options = unit_options();
  options.target_p99_ns = 10 * kMillisecond;
  AdaptiveController adapt(rt, options);
  adapt.set_recorder(&rec);
  const std::vector<LinkState> healthy = {LinkState::kHealthy};
  // Backlog 50 kB >= watermark 10 kB: shedding arms, one engage edge.
  adapt.on_probe(kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_TRUE(adapt.shed_active());
  EXPECT_EQ(adapt.shed_engages(), 1u);
  adapt.on_probe(2 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_EQ(adapt.shed_engages(), 1u) << "edge-triggered, not per probe";
  rt.links[0].backlog = 1'000;
  adapt.on_probe(3 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_FALSE(adapt.shed_active());
  EXPECT_EQ(rec.note_count(), 2u) << "engage and disengage annotations";
  const FaultPlan plan = rec.plan();
  ASSERT_EQ(plan.observed.size(), 2u);
  EXPECT_NE(plan.observed[0].note.find("shed engaged watermark_bytes=10000"),
            std::string::npos)
      << plan.observed[0].note;
}

TEST(AdaptiveController, WindowedP99DrivesTheMultiplicativeCorrection) {
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "a", .configured_bps = 8e6, .backlog = 1'000});
  rt.has_tracer = true;
  rt.e2e.assign(LatencyHistogram::kBuckets, 0);
  AdaptOptions options = unit_options();
  options.target_p99_ns = 10 * kMillisecond;
  AdaptiveController adapt(rt, options);
  const std::vector<LinkState> healthy = {LinkState::kHealthy};

  // Window 1: 100 samples at ~1 ms, an order of magnitude under target.
  // The correction rises by exactly exp(gain * 1) (the log error clamps).
  rt.e2e[LatencyHistogram::index_of(kMillisecond)] = 100;
  adapt.on_probe(kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_GT(adapt.windowed_p99_ns(), 0.0);
  EXPECT_LT(adapt.windowed_p99_ns(), 2.0 * kMillisecond);
  const double risen = adapt.correction();
  EXPECT_NEAR(risen, std::exp(options.gain), 1e-9);

  // Window 2: no new samples -- too thin to judge, correction held.
  adapt.on_probe(2 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_DOUBLE_EQ(adapt.correction(), risen);

  // Window 3: 100 fresh samples at ~100 ms, far above target: backs off.
  rt.e2e[LatencyHistogram::index_of(100 * kMillisecond)] += 100;
  adapt.on_probe(3 * kMillisecond, 1e-3, {8e6}, healthy);
  EXPECT_LT(adapt.correction(), risen);
  EXPECT_GT(adapt.windowed_p99_ns(), 10.0 * kMillisecond);
}

// --- Supervisor feeds the controller + verdict sequence -------------------

TEST(Supervisor, MeasuredDrainFeedsDriftNotConfiguredCapacity) {
  // The probe window measures what the link actually moved.  A link
  // draining at half its configured rate must push the controller's drift
  // ratio toward 0.5 -- the estimate tracks the measured rate, never the
  // configured one (that is the entire point of re-lowering).
  AdaptMockRuntime rt;
  rt.links.push_back({.name = "lte", .configured_bps = 8e6,
                      .backlog = 50'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  AdaptOptions options = unit_options();
  AdaptiveController adapt(rt, options);
  sup.set_adaptive(&adapt);
  sup.probe();  // baseline window (zero-length: controller not fed)
  for (int i = 0; i < 4; ++i) {
    // 500 bytes per 1 ms probe window = 4 Mb/s against 8 Mb/s configured.
    rt.links[0].sent_bytes += 500;
    tick(rt, sup);
  }
  EXPECT_NEAR(adapt.drift_ratio(0), 0.5, 1e-9);
  EXPECT_TRUE(adapt.drooped(0)) << "three sub-0.70 windows entered a droop";
  EXPECT_EQ(adapt.updates(), 4u);
}

TEST(Supervisor, VerdictSequenceAndRecorderMirrorTerminalTransitions) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  FaultPlanRecorder rec(5);
  SupervisorOptions options = fast_options();
  // The mock's heartbeat never moves; keep the worker watchdog out of the
  // recorded plan so only the link edges land in it.
  options.worker_stall_probes = 1000;
  Supervisor sup(rt, options);
  sup.set_recorder(&rec);
  sup.probe();
  for (int i = 0; i < 3; ++i) tick(rt, sup);
  ASSERT_EQ(sup.link_state(0), LinkState::kDead);
  EXPECT_EQ(sup.verdict_sequence(),
            (std::vector<std::string>{"wifi:dead"}));
  rt.links[0].tokens = 2000.0;
  tick(rt, sup);
  tick(rt, sup);  // healthy_after_probes = 2
  ASSERT_EQ(sup.link_state(0), LinkState::kHealthy);
  EXPECT_EQ(sup.verdict_sequence(),
            (std::vector<std::string>{"wifi:dead", "wifi:revived"}));
  // The recorder holds the same two edges as a replayable plan.
  const FaultPlan plan = rec.plan();
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kIfaceDown);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kIfaceUp);
  EXPECT_LT(plan.events[0].at_ns, plan.events[1].at_ns);
  EXPECT_EQ(plan.seed, 5u);
  const std::string canonical = plan.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical);
}

// --- Metrics registration (names only; scrape correctness lives in the
// telemetry suite) ---------------------------------------------------------

TEST(FaultTelemetry, InjectorAndSupervisorSeriesAppearInTheRegistry) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "ingress_drop", "probability": 1.0,
       "duration_ms": 10}]})"));
  inj.attach(1, 1);
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());

  AdaptiveController adapt(rt, AdaptOptions{});

  telemetry::MetricsRegistry registry;
  inj.register_metrics(registry);
  sup.register_metrics(registry);
  adapt.register_metrics(registry);
  const std::string text = telemetry::render_prometheus(registry);
  for (const char* name :
       {"midrr_fault_ingress_total", "midrr_fault_pool_rejects_total",
        "midrr_fault_worker_stalls_total",
        "midrr_fault_iface_transitions_total",
        "midrr_supervisor_link_state",
        "midrr_supervisor_link_transitions_total",
        "midrr_supervisor_worker_restarts_total",
        "midrr_supervisor_clustering_checks_total",
        "midrr_supervisor_clustering_violations_total",
        "midrr_adapt_shed_bytes", "midrr_adapt_target_p99_ns",
        "midrr_adapt_windowed_p99_ns", "midrr_adapt_correction",
        "midrr_adapt_shedding_active", "midrr_adapt_updates_total",
        "midrr_adapt_retunes_total", "midrr_adapt_droop_events_total",
        "midrr_supervisor_capacity_drift_ratio"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace midrr
