// Fault layer: JSON reader, FaultPlan schema validation, injector timeline
// compilation (down/up/flap/scale overlays), the stall/restart safe-point
// protocol, deterministic ingress sampling, pool-exhaust windows, and the
// Supervisor's link/worker state machines driven through a mock
// SupervisedRuntime (no threads, fully deterministic probes).  The
// end-to-end chaos runs against a live Runtime live in test_fault_e2e.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/json.hpp"
#include "fault/supervisor.hpp"
#include "telemetry/fairness_drift.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace midrr {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::IngressAction;
using fault::JsonValue;
using fault::LinkState;
using fault::Supervisor;
using fault::SupervisorOptions;

// --- JSON reader ----------------------------------------------------------

TEST(FaultJson, ParsesNestedDocument) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "hi\n\"x\""}, "t": true, "n": null})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -300.0);
  const JsonValue* s = doc.find("b")->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->as_string(), "hi\n\"x\"");
  EXPECT_TRUE(doc.find("t")->as_bool());
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(FaultJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse("[1, 2,"), fault::JsonError);
  EXPECT_THROW(JsonValue::parse(""), fault::JsonError);
  // Kind mismatches surface as runtime_error for schema-level reporting.
  const JsonValue doc = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW(doc.find("a")->as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.as_array(), std::runtime_error);
}

// --- FaultPlan parsing & validation ---------------------------------------

constexpr const char* kEveryKindPlan = R"({
  "seed": 42,
  "events": [
    {"at_ms": 2000, "kind": "iface_up",   "iface": 1},
    {"at_ms": 500,  "kind": "iface_down", "iface": 1},
    {"at_ms": 900,  "kind": "iface_flap", "iface": 1,
     "period_ms": 100, "duty": 0.25, "duration_ms": 600},
    {"at_ms": 300,  "kind": "iface_scale", "iface": 0, "scale": 0.25,
     "duration_ms": 400},
    {"at_ms": 400,  "kind": "worker_stall", "worker": 3,
     "duration_ms": 250},
    {"at_ms": 100,  "kind": "ingress_drop", "probability": 0.01,
     "duration_ms": 1000},
    {"at_ms": 100,  "kind": "ingress_dup", "probability": 0.5,
     "duration_ms": 1000},
    {"at_ms": 100,  "kind": "ingress_delay", "probability": 0.02,
     "delay_ms": 5, "duration_ms": 1000},
    {"at_ms": 600,  "kind": "pool_exhaust", "duration_ms": 200}
  ]
})";

TEST(FaultPlanParse, ParsesEveryKindAndSortsByTime) {
  const FaultPlan plan = FaultPlan::parse_json(kEveryKindPlan);
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.events.size(), 9u);
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at_ns, plan.events[i].at_ns);
  }
  const fault::FaultEvent& flap = plan.events[7];  // 900 ms
  EXPECT_EQ(flap.kind, FaultKind::kIfaceFlap);
  EXPECT_EQ(flap.iface, 1u);
  EXPECT_EQ(flap.period_ns, 100 * kMillisecond);
  EXPECT_DOUBLE_EQ(flap.duty, 0.25);
  EXPECT_EQ(flap.duration_ns, 600 * kMillisecond);
  const fault::FaultEvent& delay = plan.events[2];  // one of the 100 ms trio
  EXPECT_EQ(delay.kind, FaultKind::kIngressDelay);
  EXPECT_EQ(delay.delay_ns, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(delay.probability, 0.02);
  // A finite plan's horizon is the last instant any event is active.
  EXPECT_EQ(plan.horizon_ns(), 2 * kSecond);
}

TEST(FaultPlanParse, OpenEndedDownMakesTheHorizonUnbounded) {
  const FaultPlan plan = FaultPlan::parse_json(
      R"({"events": [{"at_ms": 100, "kind": "iface_down", "iface": 0}]})");
  EXPECT_EQ(plan.horizon_ns(), kSimTimeMax);
}

TEST(FaultPlanParse, RejectsSchemaViolationsLoudly) {
  const auto rejects = [](const char* text) {
    EXPECT_THROW(FaultPlan::parse_json(text), std::runtime_error) << text;
  };
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_melt", "iface": 0}]})");
  // A typo'd field must fail, not silently default.
  rejects(R"({"events": [{"at_ms": 1, "kind": "pool_exhaust",
              "duraton_ms": 5}]})");
  // Fields from OTHER kinds are unknown for this kind.
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_down", "iface": 0,
              "scale": 0.5}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_flap", "iface": 0,
              "duration_ms": 10}]})");  // missing period_ms
  rejects(R"({"events": [{"at_ms": -1, "kind": "iface_down", "iface": 0}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "ingress_drop",
              "probability": 1.5, "duration_ms": 10}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_flap", "iface": 0,
              "period_ms": 10, "duration_ms": 10, "duty": 1.0}]})");
  rejects(R"({"events": [{"at_ms": 1, "kind": "iface_scale", "iface": 0,
              "scale": 2.0, "duration_ms": 10}]})");
  rejects(R"({"seed": 1.5, "events": []})");
  rejects(R"({"seeds": 1, "events": []})");  // unknown top-level key
  rejects(R"({"seed": 1})");                 // missing events
}

// --- Injector: capacity timelines -----------------------------------------

TEST(FaultInjector, DownUpCompilesToAStepTimeline) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 500,  "kind": "iface_down", "iface": 1},
      {"at_ms": 2000, "kind": "iface_up",   "iface": 1}]})"));
  inj.attach(2, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 500 * kMillisecond - 1), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 500 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, kSecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(1, 2 * kSecond), 1.0);
  // The untouched interface never leaves 1.0.
  EXPECT_EQ(inj.iface_timeline(0).size(), 1u);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, kSecond), 1.0);
}

TEST(FaultInjector, CursorWalkMatchesTheSnapshotForm) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 100, "kind": "iface_scale", "iface": 0, "scale": 0.5,
       "duration_ms": 200},
      {"at_ms": 400, "kind": "iface_down", "iface": 0},
      {"at_ms": 700, "kind": "iface_up", "iface": 0},
      {"at_ms": 800, "kind": "iface_flap", "iface": 0,
       "period_ms": 40, "duty": 0.5, "duration_ms": 200}]})"));
  inj.attach(1, 1);
  std::size_t cursor = 0;
  for (SimTime t = 0; t <= 1200 * kMillisecond; t += kMillisecond) {
    ASSERT_DOUBLE_EQ(inj.iface_scale(0, t, cursor), inj.iface_scale_at(0, t))
        << "at t = " << t;
  }
}

TEST(FaultInjector, FlapIsASquareWaveWithTheRequestedDuty) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 1000, "kind": "iface_flap", "iface": 0,
       "period_ms": 100, "duty": 0.5, "duration_ms": 400}]})"));
  inj.attach(1, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1020 * kMillisecond), 1.0);  // up half
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1070 * kMillisecond), 0.0);  // down
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1120 * kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1170 * kMillisecond), 0.0);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 1400 * kMillisecond), 1.0)
      << "flap over, base state restored";
}

TEST(FaultInjector, IfaceUpCancelsARunningOverlay) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 300, "kind": "iface_scale", "iface": 0, "scale": 0.25,
       "duration_ms": 1000},
      {"at_ms": 600, "kind": "iface_up", "iface": 0}]})"));
  inj.attach(1, 1);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 400 * kMillisecond), 0.25);
  EXPECT_DOUBLE_EQ(inj.iface_scale_at(0, 700 * kMillisecond), 1.0)
      << "iface_up truncates the scale window";
}

TEST(FaultInjector, AttachValidatesTargetsAgainstTheTopology) {
  {
    FaultInjector inj(FaultPlan::parse_json(
        R"({"events": [{"at_ms": 1, "kind": "iface_down", "iface": 5}]})"));
    EXPECT_THROW(inj.attach(2, 1), std::runtime_error);
  }
  {
    FaultInjector inj(FaultPlan::parse_json(
        R"({"events": [{"at_ms": 1, "kind": "worker_stall", "worker": 2,
            "duration_ms": 10}]})"));
    EXPECT_THROW(inj.attach(2, 2), std::runtime_error);
  }
  {
    FaultInjector inj(FaultPlan::parse_json(R"({"events": []})"));
    inj.attach(1, 1);
    EXPECT_THROW(inj.attach(1, 1), std::runtime_error) << "attached twice";
  }
}

// --- Injector: ingress sampling & pool windows ----------------------------

TEST(FaultInjector, IngressSamplingIsDeterministicPerProducer) {
  const char* text = R"({"seed": 9, "events": [
      {"at_ms": 0, "kind": "ingress_drop", "probability": 0.3,
       "duration_ms": 1000},
      {"at_ms": 0, "kind": "ingress_delay", "probability": 0.3,
       "delay_ms": 7, "duration_ms": 1000}]})";
  FaultInjector a(FaultPlan::parse_json(text));
  FaultInjector b(FaultPlan::parse_json(text));
  a.attach(1, 1);
  b.attach(1, 1);
  Rng rng_a = a.fork_ingress_rng(0);
  Rng rng_b = b.fork_ingress_rng(0);
  Rng rng_other = a.fork_ingress_rng(1);
  bool producers_diverged = false;
  for (int i = 0; i < 256; ++i) {
    const SimTime now = i * kMillisecond;
    SimDuration d_a = 0, d_b = 0, d_o = 0;
    const IngressAction act_a = a.sample_ingress(now, rng_a, d_a);
    const IngressAction act_b = b.sample_ingress(now, rng_b, d_b);
    ASSERT_EQ(act_a, act_b) << "same plan + producer must replay identically";
    ASSERT_EQ(d_a, d_b);
    if (act_a == IngressAction::kDelay) {
      EXPECT_EQ(d_a, 7 * kMillisecond);
    }
    if (a.sample_ingress(now, rng_other, d_o) != act_b) {
      producers_diverged = true;
    }
  }
  EXPECT_TRUE(producers_diverged) << "producer streams must be independent";
  EXPECT_GT(a.ingress_drops(), 0u);
  EXPECT_GT(a.ingress_delays(), 0u);
}

TEST(FaultInjector, SamplingOutsideEveryWindowIsANoOp) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 100, "kind": "ingress_drop", "probability": 1.0,
       "duration_ms": 100}]})"));
  inj.attach(1, 1);
  EXPECT_TRUE(inj.has_ingress_faults());
  Rng rng = inj.fork_ingress_rng(0);
  SimDuration delay = 0;
  EXPECT_EQ(inj.sample_ingress(99 * kMillisecond, rng, delay),
            IngressAction::kNone);
  EXPECT_EQ(inj.sample_ingress(200 * kMillisecond, rng, delay),
            IngressAction::kNone);
  EXPECT_EQ(inj.sample_ingress(150 * kMillisecond, rng, delay),
            IngressAction::kDrop);
  EXPECT_EQ(inj.ingress_drops(), 1u);
}

TEST(FaultInjector, PoolExhaustWindowGatesAcquires) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 600, "kind": "pool_exhaust", "duration_ms": 200}]})"));
  inj.attach(1, 1);
  EXPECT_TRUE(inj.has_pool_faults());
  EXPECT_FALSE(inj.pool_exhausted(599 * kMillisecond));
  EXPECT_TRUE(inj.pool_exhausted(600 * kMillisecond));
  EXPECT_TRUE(inj.pool_exhausted(799 * kMillisecond));
  EXPECT_FALSE(inj.pool_exhausted(800 * kMillisecond));
  inj.note_pool_reject();
  inj.note_pool_reject();
  EXPECT_EQ(inj.pool_rejects(), 2u);
}

// --- Injector: stall / restart safe-point protocol ------------------------

/// Waits (bounded) until `worker` is provably parked at the safe point.
bool wait_for_stall(const FaultInjector& inj, std::uint32_t worker) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (inj.worker_in_stall(worker)) return true;
    std::this_thread::yield();
  }
  return false;
}

TEST(FaultInjector, StallWindowExpiresBackIntoTheLoop) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 30}]})"));
  inj.attach(1, 1);
  std::atomic<std::uint64_t> generation{0};
  EXPECT_EQ(inj.maybe_stall(0, kMillisecond, generation, 0),
            FaultInjector::StallOutcome::kResumed)
      << "parks for the remaining ~29 ms, then resumes naturally";
  EXPECT_EQ(inj.maybe_stall(0, 31 * kMillisecond, generation, 0),
            FaultInjector::StallOutcome::kNotStalled)
      << "window expired; cursor moves past it";
  EXPECT_EQ(inj.stalls_entered(), 1u);
}

TEST(FaultInjector, RestartSupersedesAParkedWorkerExactlyOnce) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 60000}]})"));
  inj.attach(1, 2);
  std::atomic<std::uint64_t> gen0{0};
  std::atomic<std::uint64_t> gen1{0};
  std::atomic<int> outcome{-1};
  std::thread parked([&] {
    outcome.store(static_cast<int>(inj.maybe_stall(0, kMillisecond, gen0, 0)),
                  std::memory_order_release);
  });
  ASSERT_TRUE(wait_for_stall(inj, 0));
  // A worker NOT at the safe point cannot be restarted.
  EXPECT_FALSE(inj.begin_restart(1, gen1));
  EXPECT_EQ(gen1.load(), 0u);
  // The parked one can: generation bumps, the thread exits superseded.
  EXPECT_TRUE(inj.begin_restart(0, gen0));
  parked.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(FaultInjector::StallOutcome::kSuperseded));
  EXPECT_EQ(gen0.load(), 1u);
  // The replacement must not re-enter the very window its predecessor was
  // killed out of (the restart advanced the slot's cursor past it).
  EXPECT_EQ(inj.maybe_stall(0, 2 * kMillisecond, gen0, 1),
            FaultInjector::StallOutcome::kNotStalled);
}

TEST(FaultInjector, ReleaseAllUnparksForShutdown) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 60000}]})"));
  inj.attach(1, 1);
  std::atomic<std::uint64_t> generation{0};
  std::atomic<int> outcome{-1};
  std::thread parked([&] {
    outcome.store(static_cast<int>(
                      inj.maybe_stall(0, kMillisecond, generation, 0)),
                  std::memory_order_release);
  });
  ASSERT_TRUE(wait_for_stall(inj, 0));
  inj.release_all();
  parked.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(FaultInjector::StallOutcome::kResumed));
  EXPECT_EQ(generation.load(), 0u) << "shutdown is not a restart";
}

// --- Supervisor (mock runtime; probes driven by hand) ---------------------

class MockRuntime : public fault::SupervisedRuntime {
 public:
  struct Link {
    std::string name;
    std::uint64_t sent_bytes = 0;
    double configured_bps = 8e6;
    double tokens = 0.0;
    std::uint64_t backlog = 0;
    std::uint64_t send_errors = 0;  ///< cumulative egress hard errors
    bool down = false;  ///< last actuation received
  };

  std::vector<Link> links;
  std::vector<std::uint64_t> heartbeats;
  SimTime now = 0;
  bool restart_result = false;
  std::vector<std::uint32_t> restart_calls;
  std::vector<std::pair<IfaceId, bool>> down_calls;

  std::size_t iface_count() const override { return links.size(); }
  std::size_t worker_count() const override { return heartbeats.size(); }
  SimTime now_ns() const override { return now; }
  std::string iface_name(IfaceId iface) const override {
    return links[iface].name;
  }
  std::uint64_t iface_sent_bytes(IfaceId iface) const override {
    return links[iface].sent_bytes;
  }
  double iface_configured_bps(IfaceId iface, SimTime) const override {
    return links[iface].configured_bps;
  }
  double iface_tokens(IfaceId iface) const override {
    return links[iface].tokens;
  }
  std::uint64_t iface_backlog_bytes(IfaceId iface) const override {
    return links[iface].backlog;
  }
  std::uint64_t worker_heartbeat(std::uint32_t worker) const override {
    return heartbeats[worker];
  }
  std::uint64_t iface_send_errors(IfaceId iface) const override {
    return links[iface].send_errors;
  }
  void set_iface_down(IfaceId iface, bool down) override {
    links[iface].down = down;
    down_calls.emplace_back(iface, down);
  }
  bool restart_worker(std::uint32_t worker) override {
    restart_calls.push_back(worker);
    return restart_result;
  }
};

SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.probe_interval_ns = kMillisecond;
  options.dead_after_probes = 3;
  options.healthy_after_probes = 2;
  options.worker_stall_probes = 4;
  options.replay_clustering = false;
  return options;
}

/// Advances the mock clock one probe interval and probes once.
void tick(MockRuntime& rt, Supervisor& sup) {
  rt.now += kMillisecond;
  sup.probe();
}

TEST(Supervisor, SilentLinkWithBacklogDiesAfterHysteresis) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();  // baseline: no verdict from a zero-length window
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);

  tick(rt, sup);  // silent probe 1 -> suspect
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  EXPECT_TRUE(sup.any_degraded());
  EXPECT_TRUE(rt.down_calls.empty());
  tick(rt, sup);  // 2
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  tick(rt, sup);  // 3 -> dead, one actuation
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  ASSERT_EQ(rt.down_calls.size(), 1u);
  EXPECT_EQ(rt.down_calls[0], (std::pair<IfaceId, bool>{0, true}));
  tick(rt, sup);  // stays dead without re-actuating
  EXPECT_EQ(rt.down_calls.size(), 1u);
  EXPECT_GE(sup.transitions(), 2u);  // healthy->suspect, suspect->dead
}

TEST(Supervisor, ProgressResetsTheDeathCountdown) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  tick(rt, sup);
  tick(rt, sup);  // two silent probes: one short of dead
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  rt.links[0].sent_bytes += 100'000;  // healthy drain resumes
  tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  for (int i = 0; i < 2; ++i) tick(rt, sup);  // silence again: not dead yet
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
      << "the countdown restarted from zero";
  EXPECT_TRUE(rt.down_calls.empty());
}

TEST(Supervisor, SustainedSendErrorsMarkTheLinkSuspectNotDead) {
  // The egress-error path: the pacer moves bytes every window (the link
  // is NOT silent), but the socket keeps reporting new hard transmit
  // failures.  Two consecutive erroring windows (send_error_probes) mark
  // the link suspect; it must never be killed on errors alone, and it
  // recovers through the usual hysteresis once the counter stops moving.
  MockRuntime rt;
  rt.links.push_back({.name = "wifi"});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());  // send_error_probes = 2 (default)
  sup.probe();                         // baseline
  const auto advance = [&](bool erroring) {
    rt.links[0].sent_bytes += 100'000;  // healthy drain: never silent
    if (erroring) rt.links[0].send_errors += 3;
    tick(rt, sup);
  };
  advance(true);  // one erroring window: not yet sustained
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  advance(true);  // two consecutive -> suspect
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect);
  EXPECT_TRUE(sup.any_degraded());
  for (int i = 0; i < 4; ++i) advance(true);  // errors persist
  EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
      << "erroring links are degraded, never killed";
  EXPECT_TRUE(rt.down_calls.empty());
  advance(false);  // counter stops moving: streak resets, link recovers
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  EXPECT_FALSE(sup.any_degraded());
}

TEST(Supervisor, TokenMotionRevivesADeadLink) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 3; ++i) tick(rt, sup);
  ASSERT_EQ(sup.link_state(0), LinkState::kDead);
  // Dead links carry no traffic (their flows were re-steered away), so a
  // refilling token bucket is the recovery signal.
  rt.links[0].tokens = 2000.0;  // past revive_tokens (one MTU)
  tick(rt, sup);                // good probe 1 of 2
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  tick(rt, sup);  // 2 -> revived
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
  ASSERT_EQ(rt.down_calls.size(), 2u);
  EXPECT_EQ(rt.down_calls.back(), (std::pair<IfaceId, bool>{0, false}));
}

TEST(Supervisor, FlappingTokensDoNotRevive) {
  MockRuntime rt;
  rt.links.push_back({.name = "wifi", .backlog = 10'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 3; ++i) tick(rt, sup);
  ASSERT_EQ(sup.link_state(0), LinkState::kDead);
  // One good probe, then the radio dies again: hysteresis holds the
  // verdict, so the control plane never sees the blip.
  rt.links[0].tokens = 2000.0;
  tick(rt, sup);
  rt.links[0].tokens = 0.0;
  for (int i = 0; i < 8; ++i) tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kDead);
  EXPECT_EQ(rt.down_calls.size(), 1u) << "exactly the original kill";
}

TEST(Supervisor, DegradedLinkIsFlaggedButNeverKilled) {
  MockRuntime rt;
  // Configured 80 Mb/s; moves ~8 KB per 1 ms probe = 64 Mb/s... make it
  // crawl instead: 100 bytes per probe = 0.8 Mb/s = 1% of configured.
  rt.links.push_back({.name = "lte", .configured_bps = 80e6,
                      .backlog = 50'000});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 10; ++i) {
    rt.links[0].sent_bytes += 100;
    tick(rt, sup);
    EXPECT_EQ(sup.link_state(0), LinkState::kSuspect)
        << "slow-but-alive: killing it would strictly reduce capacity";
  }
  EXPECT_TRUE(rt.down_calls.empty());
  // Full-rate drain clears the flag (10 KB per ms = 80 Mb/s).
  rt.links[0].sent_bytes += 10'000;
  tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy);
}

TEST(Supervisor, UnpacedAndIdleLinksAreNeverJudged) {
  MockRuntime rt;
  rt.links.push_back({.name = "unpaced", .configured_bps = 0.0,
                      .backlog = 10'000});
  rt.links.push_back({.name = "idle", .configured_bps = 8e6, .backlog = 0});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());
  sup.probe();
  for (int i = 0; i < 10; ++i) tick(rt, sup);
  EXPECT_EQ(sup.link_state(0), LinkState::kHealthy)
      << "no configured rate means no 'should be moving' baseline";
  EXPECT_EQ(sup.link_state(1), LinkState::kHealthy)
      << "an idle link (no backlog) is not silent, just unused";
  EXPECT_TRUE(rt.down_calls.empty());
}

TEST(Supervisor, FrozenHeartbeatTriggersOneRestartPerThreshold) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0, 0};  // both frozen from the start
  rt.restart_result = true;
  SupervisorOptions options = fast_options();
  options.worker_stall_probes = 3;
  Supervisor sup(rt, options);
  for (int i = 0; i < 3; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 2u) << "one per frozen worker";
  EXPECT_EQ(sup.restarts_succeeded(), 2u);
  EXPECT_EQ(rt.restart_calls.size(), 2u);
  // A live heartbeat resets the countdown: bump one worker, freeze probes.
  rt.heartbeats[0] = 8;
  for (int i = 0; i < 3; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 3u)
      << "only the still-frozen worker earns a second attempt";
}

TEST(Supervisor, RefusedRestartsAreCountedNotRetriedBlindly) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0};
  rt.restart_result = false;  // "not at the safe point"
  SupervisorOptions options = fast_options();
  options.worker_stall_probes = 2;
  Supervisor sup(rt, options);
  for (int i = 0; i < 4; ++i) {
    rt.now += kMillisecond;
    sup.probe();
  }
  EXPECT_EQ(sup.restarts_attempted(), 2u);
  EXPECT_EQ(sup.restarts_refused(), 2u);
  EXPECT_EQ(sup.restarts_succeeded(), 0u);
  const auto log = sup.log();
  EXPECT_FALSE(log.empty());
}

// --- Supervisor: Theorem-2 replay on survivors ----------------------------

class StaticFairness : public telemetry::FairnessSource {
 public:
  telemetry::FairnessSample sample;
  telemetry::FairnessSample fairness_sample() override { return sample; }
};

TEST(Supervisor, ReplaysClusteringOnTheSurvivingInterfaceSet) {
  MockRuntime rt;
  rt.links.push_back({.name = "if0", .configured_bps = 10e6});
  rt.links.push_back({.name = "if1", .configured_bps = 5e6,
                      .backlog = 10'000});
  rt.heartbeats = {0};

  StaticFairness fairness;
  fairness.sample.capacities_bps = {10e6, 5e6};
  fairness.sample.iface_sent_bytes = {0, 0};
  telemetry::FairnessFlowSample both;
  both.id = 0;
  both.name = "both";
  both.willing = {true, true};
  telemetry::FairnessFlowSample pinned;
  pinned.id = 1;
  pinned.name = "pinned";
  pinned.willing = {false, true};
  fairness.sample.flows = {both, pinned};

  SupervisorOptions options = fast_options();
  options.replay_clustering = true;
  Supervisor sup(rt, options, &fairness);
  sup.probe();
  // Keep if0 visibly healthy while if1 goes silent.
  for (int i = 0; i < 3; ++i) {
    rt.links[0].sent_bytes += 10'000;
    tick(rt, sup);
  }
  ASSERT_EQ(sup.link_state(1), LinkState::kDead);
  // The kill triggered one replay: "pinned" has no surviving willing
  // interface (quarantined, excluded), "both" gets all of if0 -- a
  // consistent single-interface max-min instance.
  EXPECT_EQ(sup.clustering_checks(), 1u);
  EXPECT_EQ(sup.clustering_violations(), 0u);
  EXPECT_EQ(sup.last_clustering_verdict(), "");
  const auto log = sup.log();
  bool saw_consistent = false;
  for (const auto& entry : log) {
    if (entry.what.find("clustering consistent") != std::string::npos) {
      saw_consistent = true;
    }
  }
  EXPECT_TRUE(saw_consistent);
}

// --- Metrics registration (names only; scrape correctness lives in the
// telemetry suite) ---------------------------------------------------------

TEST(FaultTelemetry, InjectorAndSupervisorSeriesAppearInTheRegistry) {
  FaultInjector inj(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "ingress_drop", "probability": 1.0,
       "duration_ms": 10}]})"));
  inj.attach(1, 1);
  MockRuntime rt;
  rt.links.push_back({.name = "if0"});
  rt.heartbeats = {0};
  Supervisor sup(rt, fast_options());

  telemetry::MetricsRegistry registry;
  inj.register_metrics(registry);
  sup.register_metrics(registry);
  const std::string text = telemetry::render_prometheus(registry);
  for (const char* name :
       {"midrr_fault_ingress_total", "midrr_fault_pool_rejects_total",
        "midrr_fault_worker_stalls_total",
        "midrr_fault_iface_transitions_total",
        "midrr_supervisor_link_state",
        "midrr_supervisor_link_transitions_total",
        "midrr_supervisor_worker_restarts_total",
        "midrr_supervisor_clustering_checks_total",
        "midrr_supervisor_clustering_violations_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace midrr
