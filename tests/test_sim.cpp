// Unit tests for the discrete-event simulator, rate profiles and link
// transmitters.
#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"
#include "sim/rate_profile.hpp"
#include "sim/simulator.hpp"

namespace midrr {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(5, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 45);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), PreconditionError);
}

TEST(RateProfile, ConstantRate) {
  RateProfile p(mbps(5));
  EXPECT_DOUBLE_EQ(p.rate_at(0), 5e6);
  EXPECT_DOUBLE_EQ(p.rate_at(100 * kSecond), 5e6);
  EXPECT_EQ(p.next_change_after(0), kSimTimeMax);
}

TEST(RateProfile, Steps) {
  auto p = RateProfile::steps({{0, 1e6}, {10 * kSecond, 2e6},
                               {20 * kSecond, 0.0}});
  EXPECT_DOUBLE_EQ(p.rate_at(0), 1e6);
  EXPECT_DOUBLE_EQ(p.rate_at(10 * kSecond - 1), 1e6);
  EXPECT_DOUBLE_EQ(p.rate_at(10 * kSecond), 2e6);
  EXPECT_DOUBLE_EQ(p.rate_at(25 * kSecond), 0.0);
  EXPECT_EQ(p.next_change_after(0), 10 * kSecond);
  EXPECT_EQ(p.next_change_after(10 * kSecond), 20 * kSecond);
  EXPECT_EQ(p.next_change_after(20 * kSecond), kSimTimeMax);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 2e6);
}

TEST(RateProfile, ValidationErrors) {
  EXPECT_THROW(RateProfile::steps({}), PreconditionError);
  EXPECT_THROW(RateProfile::steps({{5, 1e6}}), PreconditionError);
  EXPECT_THROW(RateProfile::steps({{0, 1e6}, {0, 2e6}}), PreconditionError);
  EXPECT_THROW(RateProfile(-1.0), PreconditionError);
}

TEST(LinkTransmitter, TransmitsAtLineRate) {
  Simulator sim;
  int remaining = 10;
  std::vector<SimTime> departures;
  LinkTransmitter link(
      sim, 0, RateProfile(1e6),
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        if (remaining == 0) return std::nullopt;
        --remaining;
        return Packet(0, 1000);
      },
      [&](IfaceId, const Packet&, SimTime at) { departures.push_back(at); });
  link.notify_backlog();
  sim.run();
  // 1000 B at 1 Mb/s = 8 ms per packet; 10 packets back to back.
  ASSERT_EQ(departures.size(), 10u);
  EXPECT_EQ(departures.front(), 8 * kMillisecond);
  EXPECT_EQ(departures.back(), 80 * kMillisecond);
  EXPECT_EQ(link.bytes_sent(), 10'000u);
  EXPECT_EQ(link.busy_time(), 80 * kMillisecond);
}

TEST(LinkTransmitter, DownLinkWaitsForProfileChange) {
  Simulator sim;
  int remaining = 1;
  std::vector<SimTime> departures;
  auto profile = RateProfile::steps({{0, 0.0}, {kSecond, 1e6}});
  LinkTransmitter link(
      sim, 0, profile,
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        if (remaining == 0) return std::nullopt;
        --remaining;
        return Packet(0, 1000);
      },
      [&](IfaceId, const Packet&, SimTime at) { departures.push_back(at); });
  link.notify_backlog();
  sim.run();
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_EQ(departures.front(), kSecond + 8 * kMillisecond);
}

TEST(LinkTransmitter, DisabledLinkSendsNothing) {
  Simulator sim;
  bool asked = false;
  LinkTransmitter link(
      sim, 0, RateProfile(1e6),
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        asked = true;
        return std::nullopt;
      },
      nullptr);
  link.set_enabled(false);
  link.notify_backlog();
  sim.run();
  EXPECT_FALSE(asked);
  EXPECT_EQ(link.packets_sent(), 0u);
}

TEST(LinkTransmitter, ReenableResumesService) {
  Simulator sim;
  int remaining = 2;
  LinkTransmitter link(
      sim, 0, RateProfile(1e6),
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        if (remaining == 0) return std::nullopt;
        --remaining;
        return Packet(0, 1000);
      },
      nullptr);
  link.set_enabled(false);
  link.notify_backlog();
  sim.run();
  EXPECT_EQ(link.packets_sent(), 0u);
  link.set_enabled(true);  // kicks the transmitter
  sim.run();
  EXPECT_EQ(link.packets_sent(), 2u);
}

TEST(LinkTransmitter, ProviderPulledLazily) {
  // The provider must only be asked when the link can actually send,
  // and exactly once per transmission slot.
  Simulator sim;
  int pulls = 0;
  int remaining = 3;
  LinkTransmitter link(
      sim, 0, RateProfile(1e6),
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        ++pulls;
        if (remaining == 0) return std::nullopt;
        --remaining;
        return Packet(0, 1000);
      },
      nullptr);
  link.notify_backlog();
  // Repeated notifications while busy must not trigger extra pulls.
  link.notify_backlog();
  link.notify_backlog();
  sim.run();
  EXPECT_EQ(pulls, 4);  // 3 packets + 1 final empty pull
}


TEST(RateProfile, GilbertElliottChannel) {
  const auto p = RateProfile::gilbert_elliott(
      mbps(10), mbps(1), 2 * kSecond, 500 * kMillisecond, 60 * kSecond, 7);
  // Starts in the GOOD state, alternates, and only ever takes the two
  // configured rates.
  EXPECT_DOUBLE_EQ(p.rate_at(0), 10e6);
  int good_samples = 0;
  int bad_samples = 0;
  for (SimTime t = 0; t < 60 * kSecond; t += 100 * kMillisecond) {
    const double r = p.rate_at(t);
    EXPECT_TRUE(r == 10e6 || r == 1e6);
    (r == 10e6 ? good_samples : bad_samples)++;
  }
  // Mean sojourns 2 s vs 0.5 s -> roughly 80/20 time split.
  EXPECT_GT(good_samples, 2 * bad_samples);
  EXPECT_GT(bad_samples, 20);
  // Deterministic per seed.
  const auto q = RateProfile::gilbert_elliott(
      mbps(10), mbps(1), 2 * kSecond, 500 * kMillisecond, 60 * kSecond, 7);
  EXPECT_EQ(p.points().size(), q.points().size());
  const auto r2 = RateProfile::gilbert_elliott(
      mbps(10), mbps(1), 2 * kSecond, 500 * kMillisecond, 60 * kSecond, 8);
  EXPECT_NE(p.points().size(), r2.points().size());
}

TEST(RateProfile, GilbertElliottDrivesScheduler) {
  // End to end: a flow on a fading link tracks the channel.
  const auto channel = RateProfile::gilbert_elliott(
      mbps(8), 0.0, kSecond, 300 * kMillisecond, 30 * kSecond, 3);
  Simulator sim;
  int remaining = 100000;
  std::uint64_t sent = 0;
  LinkTransmitter link(
      sim, 0, channel,
      [&](IfaceId, SimTime) -> std::optional<Packet> {
        if (remaining == 0) return std::nullopt;
        --remaining;
        return Packet(0, 1500);
      },
      [&](IfaceId, const Packet& p, SimTime) { sent += p.size_bytes; });
  link.notify_backlog();
  sim.run_until(30 * kSecond);
  const double mean_rate = static_cast<double>(sent) * 8.0 / 30.0 / 1e6;
  // GOOD ~77% of the time at 8 Mb/s, outage otherwise: ~6.2 Mb/s expected.
  EXPECT_GT(mean_rate, 4.0);
  EXPECT_LT(mean_rate, 8.0);
}

}  // namespace
}  // namespace midrr
