// Fuzz-style robustness tests: the wire-format parsers must never crash,
// hang or read out of bounds on arbitrary byte soup -- they either parse,
// return nullopt, or throw BufferOverrun.  (Deterministic seeds; thousands
// of inputs per shape.)
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario_text.hpp"
#include "http/message.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "util/rng.hpp"

namespace midrr {
namespace {

net::ByteBuffer random_bytes(Rng& rng, std::size_t max_len) {
  net::ByteBuffer buf(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len))));
  for (auto& b : buf) {
    b = static_cast<net::Byte>(rng.uniform_int(0, 255));
  }
  return buf;
}

TEST(FuzzParse, RandomBytesNeverCrashFrameParse) {
  Rng rng(0xF00D);
  int parsed = 0;
  int rejected = 0;
  int overrun = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    net::Frame frame(random_bytes(rng, 128));
    try {
      const auto view = frame.parse();
      if (view) {
        ++parsed;
        // A successfully parsed view must be self-consistent.
        EXPECT_LE(view->payload_offset + view->payload_length, frame.size());
        EXPECT_GE(view->l4_offset, view->l3_offset + 20);
      } else {
        ++rejected;
      }
    } catch (const net::BufferOverrun&) {
      ++overrun;
    }
  }
  // Random bytes overwhelmingly fail to parse; the split just documents
  // that all three outcomes occur and none is a crash.
  EXPECT_GT(rejected + overrun, 19'000);
}

TEST(FuzzParse, MutatedValidFramesNeverCrash) {
  Rng rng(0xBEEF);
  const net::Frame valid = net::FrameBuilder()
                               .eth_src(net::MacAddress::local(1))
                               .eth_dst(net::MacAddress::local(2))
                               .ip_src(net::Ipv4Address(10, 0, 0, 1))
                               .ip_dst(net::Ipv4Address(10, 0, 0, 2))
                               .tcp(1000, 2000)
                               .payload_size(64)
                               .build();
  int checksum_caught = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    net::ByteBuffer bytes(valid.bytes().begin(), valid.bytes().end());
    // Flip 1-4 random bytes.
    const auto flips = rng.uniform_int(1, 4);
    for (std::int64_t f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<net::Byte>(rng.uniform_int(1, 255));
    }
    net::Frame frame(std::move(bytes));
    try {
      const auto view = frame.parse();
      if (view && !frame.checksums_valid()) ++checksum_caught;
    } catch (const net::BufferOverrun&) {
      // Truncation-style corruption; fine.
    }
  }
  EXPECT_GT(checksum_caught, 1000)
      << "checksums should catch most payload corruption";
}

TEST(FuzzParse, HttpMessagesNeverCrash) {
  Rng rng(0xCAFE);
  const char charset[] =
      "GET /abc HTTP/1.1\r\n: =-0123456789bytes\nRange Content";
  for (int trial = 0; trial < 20'000; ++trial) {
    std::string text;
    const auto len = rng.uniform_int(0, 120);
    for (std::int64_t i = 0; i < len; ++i) {
      text += charset[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sizeof(charset)) - 2))];
    }
    (void)http::HttpRequest::parse(text);
    (void)http::HttpResponse::parse_head(text);
    (void)http::ByteRange::parse_range_header(text);
    (void)http::ByteRange::parse_content_range(text);
  }
  SUCCEED();
}

TEST(FuzzParse, ScenarioTextNeverCrashes) {
  Rng rng(0xD00F);
  const char charset[] =
      "[]=interface flow run rate ifaces source mbps s 0123456789.,:#\n";
  for (int trial = 0; trial < 10'000; ++trial) {
    std::string text;
    const auto len = rng.uniform_int(0, 200);
    for (std::int64_t i = 0; i < len; ++i) {
      text += charset[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sizeof(charset)) - 2))];
    }
    try {
      (void)parse_scenario_text(text);
    } catch (const ScenarioParseError&) {
      // expected for garbage
    } catch (const PreconditionError&) {
      // deep validation (e.g. RateProfile) may fire first; also fine
    }
  }
  SUCCEED();
}

TEST(FuzzParse, PcapReaderNeverCrashes) {
  Rng rng(0xFEED);
  for (int trial = 0; trial < 10'000; ++trial) {
    const auto bytes = random_bytes(rng, 200);
    std::string s(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    std::istringstream in(s);
    (void)net::read_pcap(in);
  }
  SUCCEED();
}

}  // namespace
}  // namespace midrr
