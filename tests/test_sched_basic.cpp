// White-box unit tests of the scheduler mechanics: rings, deficit counters,
// quanta, service flags, preference enforcement, and topology churn.
#include <gtest/gtest.h>

#include "sched/drr.hpp"
#include "sched/midrr.hpp"
#include "sched/observer.hpp"
#include "sched/round_robin.hpp"
#include "sched/wfq.hpp"

namespace midrr {
namespace {

Packet pkt(FlowId flow, std::uint32_t size) { return Packet(flow, size); }

TEST(SchedulerRegistry, AddRemoveFlowAndInterface) {
  MiDrrScheduler s(1500);
  const IfaceId wifi = s.add_interface("wifi");
  const IfaceId lte = s.add_interface("lte");
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {wifi, lte}, .name = "video"});
  EXPECT_TRUE(s.preferences().willing(f, wifi));
  EXPECT_TRUE(s.preferences().willing(f, lte));
  EXPECT_EQ(s.preferences().flow_name(f), "video");
  s.remove_flow(f);
  EXPECT_FALSE(s.preferences().flow_exists(f));
  s.remove_interface(lte);
  EXPECT_FALSE(s.preferences().iface_exists(lte));
}

TEST(SchedulerRegistry, RejectsNonPositiveWeight) {
  MiDrrScheduler s;
  s.add_interface();
  EXPECT_THROW(s.add_flow({.weight = 0.0, .willing = {0}}), PreconditionError);
  EXPECT_THROW(s.add_flow({.weight = -1.0, .willing = {0}}), PreconditionError);
}

TEST(SchedulerRegistry, RejectsUnknownInterfaceInWillingList) {
  MiDrrScheduler s;
  EXPECT_THROW(s.add_flow({.weight = 1.0, .willing = {7}}), PreconditionError);
}

TEST(SchedulerDataPath, DequeueEmptyInterfaceReturnsNothing) {
  MiDrrScheduler s;
  const IfaceId j = s.add_interface();
  EXPECT_FALSE(s.dequeue(j, 0).has_value());
  EXPECT_FALSE(s.has_eligible(j));
}

TEST(SchedulerDataPath, NeverViolatesInterfacePreference) {
  // Flow only willing on iface 0; iface 1 must never receive its packets.
  MiDrrScheduler s;
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j0}});
  s.enqueue(pkt(f, 100), 0);
  s.enqueue(pkt(f, 100), 0);
  EXPECT_FALSE(s.dequeue(j1, 0).has_value());
  const auto p = s.dequeue(j0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, f);
}

TEST(SchedulerDataPath, FifoWithinFlow) {
  MiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p(f, 100, i);
    s.enqueue(std::move(p), 0);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto p = s.dequeue(j, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(SchedulerDataPath, EnqueueReportsBackloggedTransition) {
  MiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  auto r1 = s.enqueue(pkt(f, 100), 0);
  EXPECT_TRUE(r1.accepted);
  EXPECT_TRUE(r1.became_backlogged);
  auto r2 = s.enqueue(pkt(f, 100), 0);
  EXPECT_TRUE(r2.accepted);
  EXPECT_FALSE(r2.became_backlogged);
}

TEST(Drr, EqualWeightsAlternateByBytes) {
  // Two flows, same weight, same packet size: service alternates turns and
  // long-run byte counts stay equal.
  NaiveDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 200; ++i) {
    s.enqueue(pkt(a, 1000), 0);
    s.enqueue(pkt(b, 1000), 0);
  }
  for (int i = 0; i < 300; ++i) s.dequeue(j, 0);
  const auto sa = s.sent_bytes(a);
  const auto sb = s.sent_bytes(b);
  EXPECT_NEAR(static_cast<double>(sa), static_cast<double>(sb), 3000.0);
}

TEST(Drr, WeightsGiveProportionalService) {
  NaiveDrrScheduler s(1000);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 2.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 600; ++i) {
    s.enqueue(pkt(a, 500), 0);
    s.enqueue(pkt(b, 500), 0);
  }
  for (int i = 0; i < 600; ++i) s.dequeue(j, 0);
  const double ratio = static_cast<double>(s.sent_bytes(a)) /
                       static_cast<double>(s.sent_bytes(b));
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Drr, MixedPacketSizesStillFairInBytes) {
  // DRR's whole point vs packet round robin: fairness in bytes even when
  // one flow sends large packets and the other small ones.
  NaiveDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId big = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId small = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 200; ++i) s.enqueue(pkt(big, 1500), 0);
  for (int i = 0; i < 3000; ++i) s.enqueue(pkt(small, 100), 0);
  std::uint64_t served = 0;
  while (served < 200'000) {
    const auto p = s.dequeue(j, 0);
    if (!p) break;
    served += p->size_bytes;
  }
  const double ratio = static_cast<double>(s.sent_bytes(big)) /
                       static_cast<double>(s.sent_bytes(small));
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Drr, DeficitBoundLemma3) {
  // After any dequeue, every flow's deficit stays within [0, MaxSize).
  NaiveDrrScheduler s(300);  // quantum smaller than packets
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 100; ++i) {
    s.enqueue(pkt(a, 1000), 0);
    s.enqueue(pkt(b, 700), 0);
  }
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(s.dequeue(j, 0).has_value());
    EXPECT_GE(s.deficit_of(a, j), 0);
    EXPECT_GE(s.deficit_of(b, j), 0);
    // While backlogged, DC < max packet size after a served turn: the
    // paper's Lemma 3 bound (deficit can exceed packet size transiently
    // mid-turn only when quantum > packet, not here).
    EXPECT_LT(s.deficit_of(a, j), 1000 + 300);
    EXPECT_LT(s.deficit_of(b, j), 700 + 300);
  }
}

TEST(Drr, DeficitResetWhenFlowDrains) {
  NaiveDrrScheduler s(5000);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(pkt(a, 1000), 0);
  ASSERT_TRUE(s.dequeue(j, 0).has_value());
  EXPECT_EQ(s.deficit_of(a, j), 0) << "deficit must reset on drain";
}

TEST(MiDrr, ServiceFlagSetForOtherInterfacesOnly) {
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const IfaceId j2 = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j0, j1, j2}});
  s.enqueue(pkt(f, 100), 0);
  s.enqueue(pkt(f, 100), 0);
  ASSERT_TRUE(s.dequeue(j1, 0).has_value());
  EXPECT_TRUE(s.service_flag(f, j0));
  EXPECT_FALSE(s.service_flag(f, j1));
  EXPECT_TRUE(s.service_flag(f, j2));
}

TEST(MiDrr, FlagClearedWhenSkipped) {
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j1}});
  for (int i = 0; i < 4; ++i) {
    s.enqueue(pkt(a, 1000), 0);
    s.enqueue(pkt(b, 1000), 0);
  }
  // j0 serves a -> flag at j1 set.
  ASSERT_TRUE(s.dequeue(j0, 0).has_value());
  ASSERT_TRUE(s.service_flag(a, j1));
  // j1 now walks: skips a (clearing its flag) and serves b.
  const auto p = s.dequeue(j1, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, b);
  EXPECT_FALSE(s.service_flag(a, j1));
}

TEST(MiDrr, SoleFlowWithSetFlagIsStillServed) {
  // Work conservation: a set flag must not idle an interface whose only
  // backlogged flow it belongs to.
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  for (int i = 0; i < 4; ++i) s.enqueue(pkt(a, 1000), 0);
  ASSERT_TRUE(s.dequeue(j0, 0).has_value());  // sets flag at j1
  ASSERT_TRUE(s.service_flag(a, j1));
  const auto p = s.dequeue(j1, 0);  // must clear and serve anyway
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, a);
}

TEST(MiDrr, SharedDeficitAllowsAggregation) {
  // One flow on two interfaces: both serve it; total service is the sum.
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  for (int i = 0; i < 100; ++i) s.enqueue(pkt(a, 1000), 0);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(s.dequeue(j0, 0).has_value());
    ASSERT_TRUE(s.dequeue(j1, 0).has_value());
  }
  EXPECT_GT(s.sent_bytes(a, j0), 0u);
  EXPECT_GT(s.sent_bytes(a, j1), 0u);
  EXPECT_EQ(s.sent_bytes(a), 60'000u);
}

TEST(MiDrr, QuantumScalesWithWeight) {
  MiDrrScheduler s(1000);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 2.5, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  EXPECT_EQ(s.quantum_of(a), 2500);
  EXPECT_EQ(s.quantum_of(b), 1000);
  // Quanta are normalized by the minimum live weight: the smallest-weight
  // flow always gets quantum_base, never a sub-MTU quantum.
  s.set_weight(b, 0.5);
  EXPECT_EQ(s.quantum_of(b), 1000);
  EXPECT_EQ(s.quantum_of(a), 5000);
}

TEST(Wfq, SingleInterfaceWeightedFairness) {
  PerIfaceWfqScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 3.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 800; ++i) {
    s.enqueue(pkt(a, 500), 0);
    s.enqueue(pkt(b, 500), 0);
  }
  for (int i = 0; i < 800; ++i) s.dequeue(j, 0);
  const double ratio = static_cast<double>(s.sent_bytes(a)) /
                       static_cast<double>(s.sent_bytes(b));
  EXPECT_NEAR(ratio, 3.0, 0.15);
}

TEST(RoundRobin, AlternatesPackets) {
  RoundRobinScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 10; ++i) {
    s.enqueue(pkt(a, 100), 0);
    s.enqueue(pkt(b, 2000), 0);
  }
  // Packet RR alternates regardless of size: equal packet counts.
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = s.dequeue(j, 0);
    ASSERT_TRUE(p.has_value());
    (p->flow == a ? count_a : count_b)++;
  }
  EXPECT_EQ(count_a, 5u);
  EXPECT_EQ(count_b, 5u);
}

TEST(SchedulerChurn, RemoveInterfaceMidstream) {
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  for (int i = 0; i < 10; ++i) s.enqueue(pkt(a, 1000), 0);
  ASSERT_TRUE(s.dequeue(j0, 0).has_value());
  s.remove_interface(j0);
  // Remaining backlog drains through j1.
  int drained = 0;
  while (s.dequeue(j1, 0).has_value()) ++drained;
  EXPECT_EQ(drained, 9);
}

TEST(SchedulerChurn, SetWillingFalseStopsService) {
  MiDrrScheduler s(1500);
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  for (int i = 0; i < 4; ++i) s.enqueue(pkt(a, 1000), 0);
  s.set_willing(a, j0, false);
  EXPECT_FALSE(s.dequeue(j0, 0).has_value());
  EXPECT_TRUE(s.dequeue(j1, 0).has_value());
  // And re-enabling restores service.
  s.set_willing(a, j0, true);
  EXPECT_TRUE(s.dequeue(j0, 0).has_value());
}

TEST(SchedulerChurn, RemoveFlowDiscardsBacklog) {
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 4; ++i) {
    s.enqueue(pkt(a, 1000), 0);
    s.enqueue(pkt(b, 1000), 0);
  }
  s.remove_flow(a);
  int from_b = 0;
  while (auto p = s.dequeue(j, 0)) {
    EXPECT_EQ(p->flow, b);
    ++from_b;
  }
  EXPECT_EQ(from_b, 4);
}

TEST(SchedulerChurn, TurnCountersTrackGrants) {
  MiDrrScheduler s(1500);
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 3; ++i) s.enqueue(pkt(a, 1500), 0);
  s.dequeue(j, 0);
  EXPECT_GE(s.turns(a, j), 1u);
}

// --- dequeue_burst ---------------------------------------------------------

/// Builds a three-interface, four-flow workload with mixed weights, packet
/// sizes and preferences on a freshly constructed scheduler.
void load_burst_workload(Scheduler& s) {
  const IfaceId j0 = s.add_interface("j0");
  const IfaceId j1 = s.add_interface("j1");
  const IfaceId j2 = s.add_interface("j2");
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  const FlowId b = s.add_flow({.weight = 2.0, .willing = {j1}});
  const FlowId c = s.add_flow({.weight = 0.5, .willing = {j0, j1, j2}});
  const FlowId d = s.add_flow({.weight = 3.0, .willing = {j2}});
  const std::uint32_t sizes[] = {1500, 700, 40, 1500, 300, 1000};
  int k = 0;
  for (const FlowId f : {a, b, c, d}) {
    for (int i = 0; i < 12; ++i) {
      s.enqueue(Packet(f, sizes[static_cast<std::size_t>(k++ % 6)]), 0);
    }
  }
}

/// dequeue_burst must produce exactly the packets that the same number of
/// repeated single dequeues would, for every policy: the burst path is an
/// amortization, never a different scheduling discipline.
TEST(DequeueBurst, MatchesRepeatedSingleDequeueAcrossPolicies) {
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq,
        Policy::kRoundRobin, Policy::kFifo, Policy::kStrictPriority}) {
    SCOPED_TRACE(to_string(policy));
    auto burst_sched = make_scheduler(policy);
    auto single_sched = make_scheduler(policy);
    load_burst_workload(*burst_sched);
    load_burst_workload(*single_sched);

    for (IfaceId j = 0; j < 3u; ++j) {
      // Alternate budgets so bursts start and stop at varied ring positions.
      for (const std::uint64_t budget : {4000u, 1u, 2500u, 100000u}) {
        std::vector<Packet> burst;
        burst_sched->dequeue_burst(j, budget, 0, burst);
        for (const Packet& got : burst) {
          const auto want = single_sched->dequeue(j, 0);
          ASSERT_TRUE(want.has_value());
          EXPECT_EQ(got.flow, want->flow);
          EXPECT_EQ(got.size_bytes, want->size_bytes);
        }
        if (budget >= 100000u) {
          // The big budget drained everything eligible; the single-step
          // scheduler must agree there is nothing left.
          EXPECT_EQ(burst_sched->has_eligible(j), single_sched->has_eligible(j));
        }
      }
    }
  }
}

TEST(DequeueBurst, StopsAtBudgetWithLastPacketOvershoot) {
  MiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 10; ++i) s.enqueue(pkt(f, 1000), 0);

  std::vector<Packet> out;
  // 2500 bytes of budget: 1000 + 1000 < 2500, so a third packet starts
  // (bursts never waste the tail of an opportunity on a partial fit).
  EXPECT_EQ(s.dequeue_burst(j, 2500, 0, out), 3u);
  EXPECT_EQ(out.size(), 3u);

  out.clear();
  EXPECT_EQ(s.dequeue_burst(j, 0, 0, out), 0u) << "zero budget sends nothing";
  EXPECT_TRUE(out.empty());

  out.clear();
  EXPECT_EQ(s.dequeue_burst(j, 1, 0, out), 1u)
      << "any positive budget sends at least the head packet";
}

// --- enqueue_batch ---------------------------------------------------------

/// enqueue_batch must be an amortization of repeated enqueue() calls, never
/// a different admission or scheduling discipline: same accept/drop
/// decisions, and the drained packet sequence must match packet for packet
/// across every policy (mirrors DequeueBurst.MatchesRepeatedSingleDequeue).
TEST(EnqueueBatch, MatchesLoopOfSingleEnqueueAcrossPolicies) {
  for (const Policy policy :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq,
        Policy::kRoundRobin, Policy::kFifo, Policy::kStrictPriority}) {
    SCOPED_TRACE(to_string(policy));
    auto batch_sched = make_scheduler(policy);
    auto loop_sched = make_scheduler(policy);
    std::vector<FlowId> flows[2];
    int k = 0;
    for (Scheduler* s : {batch_sched.get(), loop_sched.get()}) {
      const IfaceId j0 = s->add_interface("j0");
      const IfaceId j1 = s->add_interface("j1");
      flows[k].push_back(s->add_flow({.weight = 1.0, .willing = {j0}}));
      flows[k].push_back(s->add_flow({.weight = 2.0, .willing = {j0, j1}}));
      flows[k].push_back(s->add_flow({.weight = 0.5, .willing = {j1}}));
      ++k;
    }

    // Interleaved multi-flow batch with varied sizes and arrival stamps.
    const std::uint32_t sizes[] = {1500, 700, 40, 1500, 300, 1000};
    std::vector<Packet> batch;
    for (int i = 0; i < 24; ++i) {
      Packet p(flows[0][static_cast<std::size_t>(i) % 3],
               sizes[static_cast<std::size_t>(i) % 6]);
      p.enqueued_at = static_cast<SimTime>(i);
      batch.push_back(p);
    }
    std::vector<Packet> singles = batch;  // same content, loop path
    for (std::size_t i = 0; i < singles.size(); ++i) {
      singles[i].flow = flows[1][i % 3];  // translate to loop_sched's ids
    }

    const EnqueueBatchResult result =
        batch_sched->enqueue_batch(std::span<Packet>(batch), /*now=*/0);
    EnqueueBatchResult looped;
    for (Packet& p : singles) {
      // Mirror the batch contract: single enqueue stamps enqueued_at = now,
      // so pass each packet's own arrival time as `now`.
      const SimTime stamp = p.enqueued_at;
      if (loop_sched->enqueue(std::move(p), stamp).accepted) ++looped.accepted;
      else ++looped.dropped;
    }
    EXPECT_EQ(result.accepted, looped.accepted);
    EXPECT_EQ(result.dropped, looped.dropped);

    for (IfaceId j = 0; j < 2u; ++j) {
      for (;;) {
        const auto got = batch_sched->dequeue(j, 0);
        const auto want = loop_sched->dequeue(j, 0);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (!got.has_value()) break;
        EXPECT_EQ(got->size_bytes, want->size_bytes);
        EXPECT_EQ(got->enqueued_at, want->enqueued_at)
            << "batch path must preserve per-packet arrival stamps";
      }
    }
  }
}

TEST(EnqueueBatch, TailDropsMatchSingleEnqueueOnBoundedQueues) {
  for (const Policy policy : {Policy::kMiDrr, Policy::kNaiveDrr}) {
    SCOPED_TRACE(to_string(policy));
    auto batch_sched = make_scheduler(policy);
    auto loop_sched = make_scheduler(policy);
    FlowId bf = 0, lf = 0;
    for (Scheduler* s : {batch_sched.get(), loop_sched.get()}) {
      const IfaceId j = s->add_interface();
      const FlowId f = s->add_flow(
          {.weight = 1.0, .willing = {j}, .queue_capacity_bytes = 3000});
      (s == batch_sched.get() ? bf : lf) = f;
    }
    std::vector<Packet> batch;
    for (int i = 0; i < 6; ++i) batch.emplace_back(bf, 1000u);
    const EnqueueBatchResult result =
        batch_sched->enqueue_batch(std::span<Packet>(batch), 0);
    EnqueueBatchResult looped;
    for (int i = 0; i < 6; ++i) {
      if (loop_sched->enqueue(Packet(lf, 1000u), 0).accepted) ++looped.accepted;
      else ++looped.dropped;
    }
    EXPECT_EQ(result.accepted, looped.accepted);
    EXPECT_EQ(result.dropped, looped.dropped);
    EXPECT_EQ(result.accepted, 3u);  // 3000-byte bound, 1000-byte packets
    EXPECT_EQ(result.dropped, 3u);
  }
}

TEST(EnqueueBatch, UnknownFlowIsAPreconditionErrorLikeSingleEnqueue) {
  // The runtime's fan-in stage translates flow ids and drops strays BEFORE
  // batching, so an unknown flow inside a batch is a caller bug -- and it
  // must fail the same way the single-packet path fails.
  MiDrrScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId f = s.add_flow({.weight = 1.0, .willing = {j}});
  std::vector<Packet> batch;
  batch.emplace_back(f + 100, 500u);  // never registered
  EXPECT_THROW(s.enqueue(Packet(f + 100, 500u), 0), PreconditionError);
  EXPECT_THROW(s.enqueue_batch(std::span<Packet>(batch), 0),
               PreconditionError);
}

TEST(EnqueueBatch, EmptySpanIsANoOp) {
  MiDrrScheduler s;
  s.add_interface();
  std::vector<Packet> none;
  const EnqueueBatchResult result =
      s.enqueue_batch(std::span<Packet>(none), 0);
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(result.dropped, 0u);
}

TEST(DequeueBurst, CountsBytesAndEmitsObserverEvents) {
  TraceRecorder trace;
  auto s = make_scheduler(Policy::kMiDrr, {.observer = &trace});
  const IfaceId j = s->add_interface();
  const FlowId f = s->add_flow({.weight = 1.0, .willing = {j}});
  for (int i = 0; i < 3; ++i) s->enqueue(pkt(f, 500), 0);

  std::vector<Packet> out;
  EXPECT_EQ(s->dequeue_burst(j, 100000, 0, out), 3u);
  EXPECT_EQ(s->sent_bytes(f), 1500u);
  EXPECT_EQ(s->sent_bytes(f, j), 1500u);
  EXPECT_EQ(trace.sends(f, j), 3u)
      << "base-path dequeues must reach the observer";
}

}  // namespace
}  // namespace midrr
