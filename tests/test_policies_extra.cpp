// Tests for the additional baselines (FIFO, strict priority) and the
// Section 3 global-knowledge oracle; plus the headline comparison: the
// oracle and miDRR agree on the paper's scenarios.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sched/fifo.hpp"
#include "sched/oracle.hpp"
#include "sched/priority.hpp"

namespace midrr {
namespace {

TEST(Fifo, ServesInArrivalOrderAcrossFlows) {
  FifoScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId a = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId b = s.add_flow({.weight = 1.0, .willing = {j}});
  s.enqueue(Packet(a, 100, 0), 0);
  s.enqueue(Packet(b, 100, 1), 0);
  s.enqueue(Packet(a, 100, 2), 0);
  std::vector<FlowId> order;
  while (auto p = s.dequeue(j, 0)) order.push_back(p->flow);
  EXPECT_EQ(order, (std::vector<FlowId>{a, b, a}));
}

TEST(Fifo, SkipsUnwillingFlowsWithoutStalling) {
  FifoScheduler s;
  const IfaceId j0 = s.add_interface();
  const IfaceId j1 = s.add_interface();
  const FlowId pinned = s.add_flow({.weight = 1.0, .willing = {j0}});
  const FlowId both = s.add_flow({.weight = 1.0, .willing = {j0, j1}});
  s.enqueue(Packet(pinned, 100), 0);  // oldest, but j1-unwilling
  s.enqueue(Packet(both, 100), 0);
  const auto p = s.dequeue(j1, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, both);
  // j0 still serves the pinned packet first (it is the global oldest).
  const auto q = s.dequeue(j0, 0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->flow, pinned);
}

TEST(Fifo, HeavyFlowStarvesLightOne) {
  // The motivating failure: FIFO gives bandwidth proportional to arrival
  // volume, not to user preference.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(2)));
  ScenarioFlowSpec heavy;
  heavy.name = "heavy";
  heavy.ifaces = {"if1"};
  heavy.make_source = [] {
    return std::make_unique<BackloggedSource>(SizeDistribution::fixed(1500),
                                              0, /*depth=*/64);
  };
  sc.flow(std::move(heavy));
  ScenarioFlowSpec light;
  light.name = "light";
  light.ifaces = {"if1"};
  light.make_source = [] {
    return std::make_unique<BackloggedSource>(SizeDistribution::fixed(1500),
                                              0, /*depth=*/1);
  };
  sc.flow(std::move(light));
  ScenarioRunner runner(sc, Policy::kFifo);
  const auto result = runner.run(20 * kSecond);
  const double heavy_rate =
      result.flow_named("heavy").mean_rate_mbps(5 * kSecond, 20 * kSecond);
  const double light_rate =
      result.flow_named("light").mean_rate_mbps(5 * kSecond, 20 * kSecond);
  EXPECT_GT(heavy_rate, 10 * light_rate)
      << "FIFO should reflect queue pressure, not fairness";
}

TEST(StrictPriority, HeaviestFlowMonopolizes) {
  StrictPriorityScheduler s;
  const IfaceId j = s.add_interface();
  const FlowId low = s.add_flow({.weight = 1.0, .willing = {j}});
  const FlowId high = s.add_flow({.weight = 2.0, .willing = {j}});
  for (int i = 0; i < 3; ++i) {
    s.enqueue(Packet(low, 100), 0);
    s.enqueue(Packet(high, 100), 0);
  }
  // All high-priority packets go first.
  for (int i = 0; i < 3; ++i) {
    const auto p = s.dequeue(j, 0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->flow, high);
  }
  EXPECT_EQ(s.dequeue(j, 0)->flow, low);
}

TEST(StrictPriority, LightFlowLivesOnItsOwnInterface) {
  StrictPriorityScheduler s;
  const IfaceId shared = s.add_interface();
  const IfaceId own = s.add_interface();
  const FlowId heavy = s.add_flow({.weight = 5.0, .willing = {shared}});
  const FlowId light = s.add_flow({.weight = 1.0, .willing = {shared, own}});
  s.enqueue(Packet(heavy, 100), 0);
  s.enqueue(Packet(light, 100), 0);
  EXPECT_EQ(s.dequeue(shared, 0)->flow, heavy);
  EXPECT_EQ(s.dequeue(own, 0)->flow, light);
}

TEST(Oracle, MatchesReferenceOnFig1c) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.interface("if2", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"if1", "if2"});
  sc.backlogged_flow("b", 1.0, {"if2"});
  ScenarioRunner runner(sc, Policy::kOracle);
  const SimTime dur = 30 * kSecond;
  const auto result = runner.run(dur);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(dur / 2, dur), 1.0, 0.05);
  EXPECT_NEAR(result.flow_named("b").mean_rate_mbps(dur / 2, dur), 1.0, 0.05);
}

TEST(Oracle, MatchesReferenceOnFig6PhaseOne) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(3)));
  sc.interface("if2", RateProfile(mbps(10)));
  sc.backlogged_flow("a", 1.0, {"if1"});
  sc.backlogged_flow("b", 2.0, {"if1", "if2"});
  sc.backlogged_flow("c", 1.0, {"if2"});
  ScenarioRunner runner(sc, Policy::kOracle);
  const SimTime dur = 30 * kSecond;
  const auto result = runner.run(dur);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(10 * kSecond, dur), 3.0,
              0.15);
  EXPECT_NEAR(result.flow_named("b").mean_rate_mbps(10 * kSecond, dur), 6.67,
              0.30);
  EXPECT_NEAR(result.flow_named("c").mean_rate_mbps(10 * kSecond, dur), 3.33,
              0.20);
}

TEST(Oracle, HandlesDeepSuppressionThatSaturatesMiDrrsFlag) {
  // The seed-16 shape from the property tests: the aggregator must take
  // only ~28% of a shared interface.  miDRR's one-bit flag cannot express
  // that (it lands near 50%); the oracle, which exchanges exact rates, can.
  Scenario sc;
  sc.interface("if0", RateProfile(mbps(8.533)));
  sc.interface("if1", RateProfile(mbps(4.995)));
  sc.interface("if2", RateProfile(mbps(9.977)));
  sc.backlogged_flow("f0", 1.0, {"if1"});
  sc.backlogged_flow("f1", 0.5, {"if0"});
  sc.backlogged_flow("agg", 1.0, {"if0", "if1", "if2"});
  ScenarioRunner runner(sc, Policy::kOracle);
  const SimTime dur = 40 * kSecond;
  const auto result = runner.run(dur);
  EXPECT_NEAR(result.flow_named("f1").mean_rate_mbps(15 * kSecond, dur),
              6.17, 0.35);
  EXPECT_NEAR(result.flow_named("agg").mean_rate_mbps(15 * kSecond, dur),
              12.34, 0.60);
}

TEST(Oracle, ReportsRecomputationCost) {
  // The price of global knowledge: the oracle re-solves the max-min
  // program many times; miDRR solves it zero times.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(5)));
  sc.backlogged_flow("a", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kOracle);
  runner.run(10 * kSecond);
  auto* oracle = dynamic_cast<OracleMaxMinScheduler*>(&runner.scheduler());
  ASSERT_NE(oracle, nullptr);
  EXPECT_GT(oracle->recomputations(), 100u);
}

TEST(Oracle, AdaptsToCapacityChanges) {
  Scenario sc;
  sc.interface("if1",
               RateProfile::steps({{0, mbps(2)}, {10 * kSecond, mbps(6)}}));
  sc.backlogged_flow("a", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kOracle);
  const auto result = runner.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(3 * kSecond, 9 * kSecond),
              2.0, 0.15);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(15 * kSecond,
                                                    30 * kSecond),
              6.0, 0.30);
}

TEST(Factory, OracleRequiresProvider) {
  EXPECT_THROW(make_scheduler(Policy::kOracle), PreconditionError);
}

TEST(Factory, AllOtherPoliciesConstruct) {
  for (const Policy p :
       {Policy::kMiDrr, Policy::kNaiveDrr, Policy::kPerIfaceWfq,
        Policy::kRoundRobin, Policy::kFifo, Policy::kStrictPriority}) {
    const auto s = make_scheduler(p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->policy_name(), to_string(p));
  }
}

TEST(DelayTracking, QuantumLatencyTradeoff) {
  // Larger quanta -> longer uninterrupted turns for the bulk flow -> a
  // sparse real-time flow waits longer behind them.  (Its own queue stays
  // shallow, so its per-packet delay directly measures turn blocking.)
  double p99_small = 0.0;
  double p99_large = 0.0;
  for (const std::uint32_t quantum : {1500u, 30000u}) {
    Scenario sc;
    sc.interface("if1", RateProfile(mbps(2)));
    ScenarioFlowSpec voip;
    voip.name = "voip";
    voip.ifaces = {"if1"};
    voip.make_source = [] {
      return std::make_unique<CbrSource>(mbps(0.1), 200);
    };
    sc.flow(std::move(voip));
    sc.backlogged_flow("bulk", 1.0, {"if1"});
    RunnerOptions opt;
    opt.quantum_base = quantum;
    ScenarioRunner runner(sc, Policy::kMiDrr, opt);
    const auto result = runner.run(20 * kSecond);
    const auto& delay = result.flow_named("voip").delay_ns;
    ASSERT_FALSE(delay.empty());
    (quantum == 1500u ? p99_small : p99_large) = delay.quantile(0.99);
  }
  EXPECT_GT(p99_large, 2.0 * p99_small)
      << "p99 voip delay should grow with the bulk flow's quantum";
}

}  // namespace
}  // namespace midrr
