// Unit + integration tests for the virtual-interface bridge (the kernel
// module analog): classification, steering with header rewriting, the
// return path, and end-to-end fairness through the bridge on the simulator.
#include <gtest/gtest.h>

#include "bridge/bridge.hpp"
#include "sched/midrr.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace midrr::bridge {
namespace {

using net::Frame;
using net::FrameBuilder;
using net::Ipv4Address;
using net::MacAddress;

const Ipv4Address kVirtIp(10, 200, 0, 1);
const MacAddress kVirtMac = MacAddress::local(1000);

Frame app_frame(std::uint16_t src_port, std::uint16_t dst_port,
                std::size_t payload = 400,
                Ipv4Address dst = Ipv4Address(93, 184, 216, 34)) {
  return FrameBuilder()
      .eth_src(kVirtMac)
      .eth_dst(MacAddress::local(1))  // gateway
      .ip_src(kVirtIp)
      .ip_dst(dst)
      .tcp(src_port, dst_port)
      .payload_size(payload)
      .build();
}

struct BridgeFixture {
  VirtualBridge bridge{std::make_unique<MiDrrScheduler>(1500), kVirtMac,
                       kVirtIp};
  IfaceId wifi;
  IfaceId lte;

  BridgeFixture() {
    wifi = bridge.add_physical({"wlan0", MacAddress::local(1),
                                Ipv4Address(192, 168, 1, 50)});
    lte = bridge.add_physical({"wwan0", MacAddress::local(2),
                               Ipv4Address(100, 64, 3, 9)});
  }
};

TEST(Classifier, RuleOrderAndPinning) {
  FlowClassifier c;
  c.add_rule({.proto = net::IpProto::kTcp, .dst_port = 443, .flow = 1});
  c.add_rule({.proto = net::IpProto::kTcp, .flow = 2});
  c.set_default_flow(3);

  FiveTuple https{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 5000, 443,
                  net::IpProto::kTcp};
  FiveTuple other_tcp = https;
  other_tcp.dst_port = 80;
  FiveTuple udp = https;
  udp.proto = net::IpProto::kUdp;

  EXPECT_EQ(c.classify(https), 1u);
  EXPECT_EQ(c.classify(other_tcp), 2u);
  EXPECT_EQ(c.classify(udp), 3u);

  c.pin(https, 9);
  EXPECT_EQ(c.classify(https), 9u);
  c.remove_flow(9);
  EXPECT_EQ(c.classify(https), 1u);
}

TEST(Classifier, DefaultIsDrop) {
  FlowClassifier c;
  FiveTuple t{Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2,
              net::IpProto::kTcp};
  EXPECT_EQ(c.classify(t), kInvalidFlow);
}

TEST(Bridge, SteersAndRewritesSource) {
  BridgeFixture fx;
  const FlowId video =
      fx.bridge.add_flow({.weight = 1.0, .willing = {fx.wifi, fx.lte}, .name = "video"});
  fx.bridge.classifier().add_rule({.dst_port = 443, .flow = video});

  ASSERT_EQ(fx.bridge.send_from_app(app_frame(40000, 443), 0), video);
  ASSERT_TRUE(fx.bridge.has_traffic(fx.wifi));

  const auto wire = fx.bridge.next_frame(fx.wifi, 0);
  ASSERT_TRUE(wire.has_value());
  const auto view = wire->parse();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ip.src.to_string(), "192.168.1.50")
      << "source must be the physical interface's address";
  EXPECT_EQ(view->eth.src, MacAddress::local(1));
  EXPECT_TRUE(wire->checksums_valid());
  // Application payload untouched.
  EXPECT_EQ(view->tcp->dst_port, 443);
}

TEST(Bridge, UnclassifiedTrafficDropped) {
  BridgeFixture fx;
  EXPECT_EQ(fx.bridge.send_from_app(app_frame(1, 2), 0), std::nullopt);
  EXPECT_EQ(fx.bridge.stats().app_frames_dropped_unclassified, 1u);
  EXPECT_FALSE(fx.bridge.has_traffic(fx.wifi));
}

TEST(Bridge, InterfacePreferenceEnforced) {
  BridgeFixture fx;
  const FlowId wifi_only = fx.bridge.add_flow({.weight = 1.0, .willing = {fx.wifi}, .name = "wifi-only"});
  fx.bridge.classifier().set_default_flow(wifi_only);
  fx.bridge.send_from_app(app_frame(1111, 80), 0);
  EXPECT_FALSE(fx.bridge.next_frame(fx.lte, 0).has_value());
  EXPECT_TRUE(fx.bridge.next_frame(fx.wifi, 0).has_value());
}

TEST(Bridge, ReturnPathRestoresVirtualAddress) {
  BridgeFixture fx;
  const FlowId flow = fx.bridge.add_flow({.weight = 1.0, .willing = {fx.lte}, .name = "f"});
  fx.bridge.classifier().set_default_flow(flow);
  fx.bridge.send_from_app(app_frame(50123, 80), 0);
  const auto wire = fx.bridge.next_frame(fx.lte, 0);
  ASSERT_TRUE(wire.has_value());

  // Craft the server's reply to the REWRITTEN source.
  const auto sent = wire->parse();
  Frame reply = FrameBuilder()
                    .eth_src(MacAddress::local(99))
                    .eth_dst(MacAddress::local(2))
                    .ip_src(sent->ip.dst)
                    .ip_dst(sent->ip.src)
                    .tcp(sent->tcp->dst_port, sent->tcp->src_port)
                    .payload_size(600)
                    .build();

  const auto delivered = fx.bridge.receive_from_network(fx.lte, reply);
  ASSERT_TRUE(delivered.has_value());
  const auto view = delivered->parse();
  EXPECT_EQ(view->ip.dst, kVirtIp) << "app must see the virtual address";
  EXPECT_EQ(view->eth.dst, kVirtMac);
  EXPECT_TRUE(delivered->checksums_valid());
}

TEST(Bridge, UnknownInboundDropped) {
  BridgeFixture fx;
  Frame stray = FrameBuilder()
                    .eth_src(MacAddress::local(9))
                    .eth_dst(MacAddress::local(2))
                    .ip_src(Ipv4Address(4, 4, 4, 4))
                    .ip_dst(Ipv4Address(100, 64, 3, 9))
                    .tcp(80, 55555)
                    .payload_size(10)
                    .build();
  EXPECT_FALSE(fx.bridge.receive_from_network(fx.lte, stray).has_value());
  EXPECT_EQ(fx.bridge.stats().frames_received_unmatched, 1u);
}

TEST(BridgeIntegration, Fig1cFairnessThroughTheFullStack) {
  // End-to-end: application frames -> classifier -> miDRR -> header rewrite
  // -> simulated 1 Mb/s links.  Flow a willing on both, flow b wifi-only...
  // mirrored so b is lte-only: expect ~1 Mb/s each (the paper's Fig 1(c)).
  BridgeFixture fx;
  Simulator sim;
  const FlowId a = fx.bridge.add_flow({.weight = 1.0, .willing = {fx.wifi, fx.lte}, .name = "a"});
  const FlowId b = fx.bridge.add_flow({.weight = 1.0, .willing = {fx.lte}, .name = "b"});
  fx.bridge.classifier().add_rule({.dst_port = 443, .flow = a});
  fx.bridge.classifier().add_rule({.dst_port = 80, .flow = b});

  std::vector<std::uint64_t> sent_bytes(2, 0);
  std::vector<std::unique_ptr<LinkTransmitter>> links;
  for (const IfaceId iface : {fx.wifi, fx.lte}) {
    links.push_back(std::make_unique<LinkTransmitter>(
        sim, iface, RateProfile(mbps(1)),
        [&fx](IfaceId j, SimTime now) -> std::optional<Packet> {
          auto frame = fx.bridge.next_frame(j, now);
          if (!frame) return std::nullopt;
          Packet p(0, static_cast<std::uint32_t>(frame->size()));
          const auto view = frame->parse();
          p.flow = (view->tcp->dst_port == 443) ? 0u : 1u;
          return p;
        },
        [&sent_bytes](IfaceId, const Packet& p, SimTime) {
          sent_bytes[p.flow] += p.size_bytes;
        }));
  }

  // Keep both flows topped up with app frames.
  const auto top_up = [&] {
    while (fx.bridge.scheduler().backlog_packets(a) < 8) {
      fx.bridge.send_from_app(app_frame(40000, 443, 1400), sim.now());
    }
    while (fx.bridge.scheduler().backlog_packets(b) < 8) {
      fx.bridge.send_from_app(app_frame(40001, 80, 1400), sim.now());
    }
    for (auto& link : links) link->notify_backlog();
  };
  top_up();
  for (int tick = 1; tick <= 200; ++tick) {
    sim.run_until(tick * 100 * kMillisecond);
    top_up();
  }

  const double rate_a =
      static_cast<double>(sent_bytes[0]) * 8.0 / to_seconds(sim.now()) / 1e6;
  const double rate_b =
      static_cast<double>(sent_bytes[1]) * 8.0 / to_seconds(sim.now()) / 1e6;
  EXPECT_NEAR(rate_a, 1.0, 0.08);
  EXPECT_NEAR(rate_b, 1.0, 0.08);
  EXPECT_EQ(fx.bridge.stats().frames_steered,
            fx.bridge.scheduler().queue_stats(a).dequeued_packets +
                fx.bridge.scheduler().queue_stats(b).dequeued_packets);
}

}  // namespace
}  // namespace midrr::bridge
