// Exhaustive verification on small topologies: enumerate EVERY interface
// preference matrix Pi for n flows x m interfaces (n <= 3, m <= 2, unit
// weights) and check miDRR's long-run allocation against the reference
// max-min solver.  Unlike the randomized property tests this leaves no
// corner of the small-instance space unexplored.
//
// Links run with 10% service-time jitter: perfectly deterministic service
// phase-locks the service-flag dynamics in ways no physical link would
// (DESIGN.md section 8).  Even jittered, instances where a multi-homed flow
// needs only a small fractional top-up from a shared interface settle
// slightly above it (the flag's minimum-service-share floor), so the
// per-flow tolerance here is 16%; the aggregate throughput check is exact.
//
// Also sweeps the weighted variants of the 2x2 instances and verifies the
// solver against hand-computable closed forms.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"

namespace midrr {
namespace {

struct SmallCase {
  std::size_t flows;
  std::size_t ifaces;
  unsigned mask;  // bit (i*m + j) set => flow i willing on iface j
};

std::vector<SmallCase> all_cases(std::size_t n, std::size_t m) {
  std::vector<SmallCase> cases;
  const unsigned bits = static_cast<unsigned>(n * m);
  for (unsigned mask = 0; mask < (1u << bits); ++mask) {
    cases.push_back({n, m, mask});
  }
  return cases;
}

class ExhaustiveSmallTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExhaustiveSmallTest, MiDrrMatchesSolverOnEveryPiMatrix) {
  const auto n = static_cast<std::size_t>(std::get<0>(GetParam()));
  const auto m = static_cast<std::size_t>(std::get<1>(GetParam()));
  // Distinct capacities so interface identity matters.
  std::vector<double> caps;
  for (std::size_t j = 0; j < m; ++j) caps.push_back(mbps(2.0 + 3.0 * static_cast<double>(j)));

  std::size_t checked = 0;
  for (const SmallCase& c : all_cases(n, m)) {
    fair::MaxMinInput input;
    input.capacities_bps = caps;
    Scenario sc;
    for (std::size_t j = 0; j < m; ++j) {
      sc.interface("if" + std::to_string(j), RateProfile(caps[j]));
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<bool> row(m);
      std::vector<std::string> willing;
      for (std::size_t j = 0; j < m; ++j) {
        row[j] = (c.mask >> (i * m + j)) & 1u;
        if (row[j]) willing.push_back("if" + std::to_string(j));
      }
      input.weights.push_back(1.0);
      input.willing.push_back(row);
      sc.backlogged_flow("f" + std::to_string(i), 1.0, willing);
    }

    const auto reference = fair::solve_max_min(input);
    RunnerOptions opt;
    opt.link_jitter = 0.10;
    ScenarioRunner runner(sc, Policy::kMiDrr, opt);
    const SimTime dur = 20 * kSecond;
    const auto result = runner.run(dur);
    double cap_total = 0.0;
    for (double v : caps) cap_total += v;
    double rate_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double rate =
          result.flows[i].mean_rate_mbps(8 * kSecond, dur) * 1e6;
      rate_total += rate;
      const double tol =
          std::max(0.16 * reference.rates_bps[i], 0.015 * cap_total);
      ASSERT_NEAR(rate, reference.rates_bps[i], tol)
          << "flow " << i << " mask=" << c.mask << " (" << n << "x" << m
          << ")";
    }
    // Work conservation is exact: max-min is Pareto efficient, so the
    // totals must agree tightly even where individual flows drift.
    ASSERT_NEAR(rate_total, reference.total_rate_bps(),
                0.02 * (reference.total_rate_bps() + 1.0))
        << "mask=" << c.mask;
    ++checked;
  }
  // 2^(n*m) matrices, all checked.
  EXPECT_EQ(checked, 1u << (n * m));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExhaustiveSmallTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 1),
                      std::make_tuple(2, 2), std::make_tuple(3, 1),
                      std::make_tuple(3, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::to_string(std::get<0>(info.param)) + "flows_" +
             std::to_string(std::get<1>(info.param)) + "ifaces";
    });


class ExhaustiveOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExhaustiveOracleTest, OracleMatchesSolverOnEveryPiMatrix) {
  // Same exhaustive sweep, but for the global-knowledge oracle: it has no
  // one-bit limitation, so the tolerance is tight on every instance.
  const auto n = static_cast<std::size_t>(std::get<0>(GetParam()));
  const auto m = static_cast<std::size_t>(std::get<1>(GetParam()));
  std::vector<double> caps;
  for (std::size_t j = 0; j < m; ++j) {
    caps.push_back(mbps(2.0 + 3.0 * static_cast<double>(j)));
  }
  for (const SmallCase& c : all_cases(n, m)) {
    fair::MaxMinInput input;
    input.capacities_bps = caps;
    Scenario sc;
    for (std::size_t j = 0; j < m; ++j) {
      sc.interface("if" + std::to_string(j), RateProfile(caps[j]));
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<bool> row(m);
      std::vector<std::string> willing;
      for (std::size_t j = 0; j < m; ++j) {
        row[j] = (c.mask >> (i * m + j)) & 1u;
        if (row[j]) willing.push_back("if" + std::to_string(j));
      }
      input.weights.push_back(1.0);
      input.willing.push_back(row);
      sc.backlogged_flow("f" + std::to_string(i), 1.0, willing);
    }
    const auto reference = fair::solve_max_min(input);
    ScenarioRunner runner(sc, Policy::kOracle);
    const SimTime dur = 15 * kSecond;
    const auto result = runner.run(dur);
    double cap_total = 0.0;
    for (double v : caps) cap_total += v;
    for (std::size_t i = 0; i < n; ++i) {
      const double rate =
          result.flows[i].mean_rate_mbps(6 * kSecond, dur) * 1e6;
      ASSERT_NEAR(rate, reference.rates_bps[i],
                  std::max(0.06 * reference.rates_bps[i], 0.015 * cap_total))
          << "flow " << i << " mask=" << c.mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExhaustiveOracleTest,
    ::testing::Values(std::make_tuple(2, 2), std::make_tuple(3, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::to_string(std::get<0>(info.param)) + "flows_" +
             std::to_string(std::get<1>(info.param)) + "ifaces";
    });

TEST(ExhaustiveWeighted, TwoByTwoWeightSweep) {
  // The full-willingness 2x2 instance under a weight sweep: closed form is
  // piecewise -- proportional shares until the heavy flow saturates what it
  // can reach, then the leftover spills.
  for (const double w : {1.0, 1.5, 2.0, 3.0, 5.0, 8.0}) {
    fair::MaxMinInput input;
    input.capacities_bps = {mbps(2), mbps(4)};
    input.weights = {w, 1.0};
    input.willing = {{true, true}, {true, true}};
    const auto solved = fair::solve_max_min(input);
    // Both flows willing everywhere: pure weighted split of 6 Mb/s.
    EXPECT_NEAR(solved.rates_bps[0], mbps(6) * w / (w + 1.0), 1e3) << w;
    EXPECT_NEAR(solved.rates_bps[1], mbps(6) * 1.0 / (w + 1.0), 1e3) << w;
  }
  for (const double w : {1.0, 2.0, 4.0}) {
    // Restricted heavy flow: a (weight w) only on if1 (2 Mb/s), b on both.
    fair::MaxMinInput input;
    input.capacities_bps = {mbps(2), mbps(4)};
    input.weights = {w, 1.0};
    input.willing = {{true, false}, {true, true}};
    const auto solved = fair::solve_max_min(input);
    // a's share of if1 under weighted sharing with b is w/(w+1)*2 at most,
    // but b prefers if2 whenever its level there is higher; with if2 = 4
    // alone, b's level 4 >= a's cap 2 always, so a takes all of if1.
    EXPECT_NEAR(solved.rates_bps[0], mbps(2), 1e4) << w;
    EXPECT_NEAR(solved.rates_bps[1], mbps(4), 1e4) << w;
  }
}

TEST(ExhaustiveWeighted, ThreeFlowLineTopologyClosedForm) {
  // f0 -- if0 -- f1 -- if1 -- f2 with capacities c0 <= c1: classic chain.
  // f1 balances across both; levels: f0 shares if0, f2 shares if1.
  fair::MaxMinInput input;
  input.capacities_bps = {mbps(2), mbps(10)};
  input.weights = {1.0, 1.0, 1.0};
  input.willing = {{true, false}, {true, true}, {false, true}};
  const auto solved = fair::solve_max_min(input);
  // f1 and f2 split if1's 10 while f1 ignores tiny if0? Max-min: f0's best
  // is if0 shared or alone. Level math: f1 gets 5 on if1; f0 gets all of
  // if0 = 2 (f1 unwilling to waste its higher share).
  EXPECT_NEAR(solved.rates_bps[0], mbps(2), 1e4);
  EXPECT_NEAR(solved.rates_bps[1], mbps(5), 1e4);
  EXPECT_NEAR(solved.rates_bps[2], mbps(5), 1e4);
}

}  // namespace
}  // namespace midrr
