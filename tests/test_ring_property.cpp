// Randomized cross-check of the intrusive index-linked FlowRing against a
// naive reference ring built on std::list -- the representation the ring
// used before the flat-array rewrite.  Any divergence in current(),
// round-robin order, membership, size, or turn state over long random
// operation sequences is a bug in the intrusive links.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "sched/ring.hpp"
#include "util/rng.hpp"

namespace midrr {
namespace {

/// Reference semantics, deliberately written the slow and obvious way.
class ReferenceRing {
 public:
  bool empty() const { return flows_.empty(); }
  std::size_t size() const { return flows_.size(); }
  bool contains(FlowId flow) const {
    return std::find(flows_.begin(), flows_.end(), flow) != flows_.end();
  }
  bool turn_open() const { return turn_open_; }
  void open_turn() { turn_open_ = true; }

  FlowId current() const { return *current_; }

  FlowId advance() {
    ++current_;
    if (current_ == flows_.end()) current_ = flows_.begin();
    return *current_;
  }

  void insert(FlowId flow) {
    if (flows_.empty()) {
      flows_.push_back(flow);
      current_ = flows_.begin();
      turn_open_ = false;
    } else {
      // Before the current position: visited last in the current round.
      flows_.insert(current_, flow);
    }
  }

  void remove(FlowId flow) {
    auto it = std::find(flows_.begin(), flows_.end(), flow);
    if (it == current_) {
      current_ = flows_.erase(it);
      if (current_ == flows_.end()) current_ = flows_.begin();
      turn_open_ = false;
    } else {
      flows_.erase(it);
    }
    if (flows_.empty()) turn_open_ = false;
  }

  /// Round-robin order starting at the current position.
  std::vector<FlowId> rotation() const {
    std::vector<FlowId> order;
    std::list<FlowId>::const_iterator it = current_;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      order.push_back(*it);
      ++it;
      if (it == flows_.end()) it = flows_.begin();
    }
    return order;
  }

 private:
  std::list<FlowId> flows_;
  std::list<FlowId>::iterator current_ = flows_.end();
  bool turn_open_ = false;
};

/// Full-state comparison: scalar state plus one complete rotation.
void expect_same(const FlowRing& ring, const ReferenceRing& ref,
                 std::uint64_t step) {
  ASSERT_EQ(ring.size(), ref.size()) << "step " << step;
  ASSERT_EQ(ring.empty(), ref.empty()) << "step " << step;
  ASSERT_EQ(ring.turn_open(), ref.turn_open()) << "step " << step;
  if (ref.empty()) return;
  ASSERT_EQ(ring.current(), ref.current()) << "step " << step;
  // Walk one full round on a copy (FlowRing copies are value-semantic:
  // plain index vectors).  The reference reports its order directly.
  FlowRing ring_copy = ring;
  std::vector<FlowId> ring_order{ring_copy.current()};
  for (std::size_t i = 1; i < ref.size(); ++i) {
    ring_order.push_back(ring_copy.advance());
  }
  ASSERT_EQ(ring_order, ref.rotation()) << "step " << step;
}

TEST(FlowRingProperty, RandomOpsMatchReference) {
  constexpr int kSequences = 20;
  constexpr int kStepsPerSequence = 2000;
  constexpr FlowId kUniverse = 48;  // flows 0..47

  for (int seq = 0; seq < kSequences; ++seq) {
    Rng rng(static_cast<std::uint64_t>(seq) * 7919 + 1);
    FlowRing ring;
    ReferenceRing ref;
    std::vector<FlowId> members;

    for (int step = 0; step < kStepsPerSequence; ++step) {
      const auto op = rng.uniform_int(0, 3);
      if (op == 0) {  // insert a random non-member
        std::vector<FlowId> candidates;
        for (FlowId f = 0; f < kUniverse; ++f) {
          if (!ref.contains(f)) candidates.push_back(f);
        }
        if (!candidates.empty()) {
          const FlowId f = candidates[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(candidates.size()) - 1))];
          ring.insert(f);
          ref.insert(f);
          members.push_back(f);
        }
      } else if (op == 1) {  // remove a random member
        if (!members.empty()) {
          const std::size_t pick = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(members.size()) - 1));
          const FlowId f = members[pick];
          members.erase(members.begin() +
                        static_cast<std::ptrdiff_t>(pick));
          ring.remove(f);
          ref.remove(f);
        }
      } else if (op == 2) {  // advance
        if (!members.empty()) {
          ASSERT_EQ(ring.advance(), ref.advance()) << "step " << step;
        }
      } else {  // open the current turn
        if (!members.empty()) {
          ring.open_turn();
          ref.open_turn();
        }
      }
      expect_same(ring, ref, static_cast<std::uint64_t>(step));
      ASSERT_FALSE(ring.contains(kUniverse + 5))
          << "membership probe past the slot arrays must be false";
    }
  }
}

TEST(FlowRingProperty, ChurnNeverLeaksSlots) {
  // Insert/remove the same ids many times: slot arrays must keep working
  // (ids are marked free with the invalid sentinel, never erased).
  FlowRing ring;
  for (int round = 0; round < 1000; ++round) {
    ring.insert(3);
    ring.insert(1);
    ring.insert(2);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.current(), 3u) << "first insert holds the position";
    ring.remove(3);
    EXPECT_EQ(ring.current(), 1u) << "successor inherits the position";
    ring.remove(1);
    ring.remove(2);
    EXPECT_TRUE(ring.empty());
  }
}

}  // namespace
}  // namespace midrr
