// Dynamic behaviour: the paper's "use new capacity" property (Section 2,
// property 4) plus failure injection -- interfaces dying and reviving,
// flows arriving late and leaving, capacity changes mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "fairness/maxmin.hpp"

namespace midrr {
namespace {

TEST(Dynamics, LateFlowGetsItsFairShare) {
  // One flow owns a 2 Mb/s interface; a second equal-weight flow arrives at
  // t = 10 s; both converge to 1 Mb/s.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(2)));
  sc.backlogged_flow("early", 1.0, {"if1"});
  sc.backlogged_flow("late", 1.0, {"if1"}, 0, 1500, 10 * kSecond);
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(40 * kSecond);
  EXPECT_NEAR(result.flow_named("early").mean_rate_mbps(2 * kSecond,
                                                        9 * kSecond),
              2.0, 0.1);
  EXPECT_NEAR(result.flow_named("early").mean_rate_mbps(20 * kSecond,
                                                        40 * kSecond),
              1.0, 0.07);
  EXPECT_NEAR(result.flow_named("late").mean_rate_mbps(20 * kSecond,
                                                       40 * kSecond),
              1.0, 0.07);
}

TEST(Dynamics, NewInterfaceCapacityIsUsed) {
  // An interface that is down until t = 15 s comes up; the flow willing to
  // use it should absorb the new capacity (property 4).
  Scenario sc;
  sc.interface("always", RateProfile(mbps(1)));
  sc.interface("later", RateProfile::steps({{0, 0.0}, {15 * kSecond, mbps(2)}}));
  sc.backlogged_flow("a", 1.0, {"always", "later"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(40 * kSecond);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(5 * kSecond, 14 * kSecond),
              1.0, 0.07);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(20 * kSecond, 40 * kSecond),
              3.0, 0.15);
}

TEST(Dynamics, InterfaceOutageRedistributesLoad) {
  // Two interfaces; flow "both" can use either, flow "pinned" only if2.
  // During if1's outage, both flows share if2.
  Scenario sc;
  sc.interface_with_outage("if1", RateProfile(mbps(2)), 10 * kSecond,
                           20 * kSecond);
  sc.interface("if2", RateProfile(mbps(2)));
  sc.backlogged_flow("both", 1.0, {"if1", "if2"});
  sc.backlogged_flow("pinned", 1.0, {"if2"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(35 * kSecond);
  // Before outage: both=2 (if1), pinned=2 (if2).
  EXPECT_NEAR(result.flow_named("both").mean_rate_mbps(3 * kSecond,
                                                       9 * kSecond),
              2.0, 0.15);
  EXPECT_NEAR(result.flow_named("pinned").mean_rate_mbps(3 * kSecond,
                                                         9 * kSecond),
              2.0, 0.15);
  // During outage: they share if2 at 1 each.
  EXPECT_NEAR(result.flow_named("both").mean_rate_mbps(13 * kSecond,
                                                       19 * kSecond),
              1.0, 0.12);
  EXPECT_NEAR(result.flow_named("pinned").mean_rate_mbps(13 * kSecond,
                                                         19 * kSecond),
              1.0, 0.12);
  // After recovery both return to 2.
  EXPECT_NEAR(result.flow_named("both").mean_rate_mbps(25 * kSecond,
                                                       34 * kSecond),
              2.0, 0.15);
}

TEST(Dynamics, InterfaceChurnReconvergesToTheReducedMaxMin) {
  // Interface churn in two waves -- if2 dies at 10 s, then if1 degrades
  // 3 -> 1 Mb/s at 20 s -- and after each wave the system must re-converge
  // to the weighted max-min allocation OF THE REDUCED TOPOLOGY, computed
  // here by the reference solver rather than hand-derived numbers.
  Scenario sc;
  sc.interface("if0",
               RateProfile::steps({{0, mbps(4)}, {20 * kSecond, mbps(2)}}));
  sc.interface("if1",
               RateProfile::steps({{0, mbps(2)}, {10 * kSecond, 0.0}}));
  sc.interface("if2", RateProfile(mbps(2)));
  sc.backlogged_flow("a", 1.0, {"if0"});
  sc.backlogged_flow("b", 1.0, {"if0", "if1"});
  sc.backlogged_flow("c", 1.0, {"if1", "if2"});
  sc.backlogged_flow("d", 1.0, {"if2"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(30 * kSecond);

  const std::vector<std::string> names = {"a", "b", "c", "d"};
  fair::MaxMinInput input;
  input.weights = {1.0, 1.0, 1.0, 1.0};
  input.willing = {{true, false, false},
                   {true, true, false},
                   {false, true, true},
                   {false, false, true}};
  struct Epoch {
    const char* label;
    std::vector<double> capacities_bps;
    SimTime t0, t1;
  };
  const std::vector<Epoch> epochs = {
      {"full topology", {mbps(4), mbps(2), mbps(2)}, 4 * kSecond,
       9 * kSecond},
      {"if1 dead", {mbps(4), 0.0, mbps(2)}, 14 * kSecond, 19 * kSecond},
      {"if1 dead, if0 degraded", {mbps(2), 0.0, mbps(2)}, 24 * kSecond,
       30 * kSecond},
  };
  for (const Epoch& epoch : epochs) {
    input.capacities_bps = epoch.capacities_bps;
    const auto reference = fair::solve_max_min(input);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const double want = to_mbps(reference.rates_bps[i]);
      EXPECT_NEAR(result.flow_named(names[i]).mean_rate_mbps(epoch.t0,
                                                             epoch.t1),
                  want, std::max(0.12, want * 0.08))
          << "flow " << names[i] << " during \"" << epoch.label << '"';
    }
  }
}

TEST(Dynamics, FlowCompletionFreesCapacityForCluster) {
  // Equal flows on one interface; when one completes the other doubles.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(2)));
  sc.backlogged_flow("short", 1.0, {"if1"}, 1'250'000);  // 10 s at 1 Mb/s
  sc.backlogged_flow("long", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(30 * kSecond);
  const auto& short_flow = result.flow_named("short");
  ASSERT_TRUE(short_flow.completed_at.has_value());
  EXPECT_NEAR(to_seconds(*short_flow.completed_at), 10.0, 1.0);
  EXPECT_NEAR(result.flow_named("long").mean_rate_mbps(15 * kSecond,
                                                       30 * kSecond),
              2.0, 0.1);
}

TEST(Dynamics, CapacityIncreaseRaisesWholeCluster) {
  Scenario sc;
  sc.interface("if1",
               RateProfile::steps({{0, mbps(2)}, {10 * kSecond, mbps(6)}}));
  sc.backlogged_flow("x", 1.0, {"if1"});
  sc.backlogged_flow("y", 2.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(30 * kSecond);
  // Weighted 1:2 split of 2 Mb/s then of 6 Mb/s.
  EXPECT_NEAR(result.flow_named("x").mean_rate_mbps(3 * kSecond, 9 * kSecond),
              0.667, 0.07);
  EXPECT_NEAR(result.flow_named("y").mean_rate_mbps(3 * kSecond, 9 * kSecond),
              1.333, 0.10);
  EXPECT_NEAR(result.flow_named("x").mean_rate_mbps(15 * kSecond, 30 * kSecond),
              2.0, 0.12);
  EXPECT_NEAR(result.flow_named("y").mean_rate_mbps(15 * kSecond, 30 * kSecond),
              4.0, 0.20);
}

TEST(Dynamics, ArrivalProcessFlowsCoexistWithBacklogged) {
  // A 0.5 Mb/s CBR flow (not backlogged) under miDRR keeps its arrival rate
  // while a backlogged flow soaks up the rest of a 2 Mb/s link.
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(2)));
  ScenarioFlowSpec cbr;
  cbr.name = "voip";
  cbr.weight = 1.0;
  cbr.ifaces = {"if1"};
  cbr.make_source = [] { return std::make_unique<CbrSource>(mbps(0.5), 200); };
  sc.flow(std::move(cbr));
  sc.backlogged_flow("bulk", 1.0, {"if1"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("voip").mean_rate_mbps(5 * kSecond,
                                                       30 * kSecond),
              0.5, 0.05);
  EXPECT_NEAR(result.flow_named("bulk").mean_rate_mbps(5 * kSecond,
                                                       30 * kSecond),
              1.5, 0.08);
}

TEST(Dynamics, ZeroCapacityInterfaceNeverBlocksOthers) {
  Scenario sc;
  sc.interface("dead", RateProfile(0.0));
  sc.interface("live", RateProfile(mbps(1)));
  sc.backlogged_flow("a", 1.0, {"dead", "live"});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(20 * kSecond);
  EXPECT_NEAR(result.flow_named("a").mean_rate_mbps(5 * kSecond, 20 * kSecond),
              1.0, 0.06);
  EXPECT_EQ(result.flow_named("a").bytes_per_iface[0], 0u);
}

TEST(Dynamics, FlowWithNoInterfacesStaysIdle) {
  Scenario sc;
  sc.interface("if1", RateProfile(mbps(1)));
  sc.backlogged_flow("connected", 1.0, {"if1"});
  sc.backlogged_flow("stranded", 1.0, {});
  ScenarioRunner runner(sc, Policy::kMiDrr);
  const auto result = runner.run(10 * kSecond);
  EXPECT_EQ(result.flow_named("stranded").bytes_sent, 0u);
  EXPECT_NEAR(result.flow_named("connected").mean_rate_mbps(2 * kSecond,
                                                            10 * kSecond),
              1.0, 0.06);
}

}  // namespace
}  // namespace midrr
