// UringBackend's submission/completion logic against a scripted UringApi:
// one submit per burst, CQE verdict classification (success / short write /
// transient / hard errno), internal retry with the SAME sequence number
// (never a phantom receiver gap), SQ-full and slot-exhaustion pushback
// (unstamped, no seq consumed), CQE overflow surfacing, the SEND_ZC
// two-CQE slot lifetime (frame pinned until the buffer-release
// notification), and the registered-buffer fixed path sending straight
// from PacketPool slab memory (pointer identity -- zero payload copies).
// The runtime-level tests close the extended conservation identity
//   dequeued == sent + io_drops + io_pending + io_inflight
// through a clean run, a transient/hard-error chaos run, and a shutdown
// where the "kernel" swallows completions and reclaim must close the
// ledger.  All of it runs without io_uring support on the host -- that is
// the point of the seam.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "io/uring_api.hpp"
#include "io/uring_backend.hpp"
#include "io/wire.hpp"
#include "net/frame_pool.hpp"
#include "net/packet.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"

namespace midrr::io {
namespace {

bool wait_for(double seconds, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

/// Sockets are only opened/closed by the uring backend (sends go through
/// the ring); a stub is all the tests need.
class StubSocketApi final : public SocketApi {
 public:
  int open_udp() override { return next_fd_++; }
  int bind_source(int, const sockaddr*, socklen_t) override { return 0; }
  int bind_to_device(int, const std::string&) override { return 0; }
  int send_many(int, mmsghdr*, unsigned int) override {
    errno = ENOSYS;
    return -1;  // the uring backend must never fall back to sendmmsg
  }
  int close_fd(int) override { return 0; }

 private:
  int next_fd_ = 300;
};

/// One accepted op as the "kernel" saw it at success-CQE time.
struct CapturedSend {
  UringOp::Kind kind = UringOp::Kind::kSendmsg;
  const void* buf = nullptr;       ///< kSendZcFixed: registered-range start
  std::uint16_t buf_index = 0;
  std::size_t wire_bytes = 0;
  WireHeader header;
};

/// UringApi whose completions follow a scripted plan.  Each op submitted
/// consumes one Verdict (an empty plan accepts everything): `res` is the
/// CQE result (kOk = the op's full wire length), ZC ops post the result
/// CQE (F_MORE) plus a notification that can be parked until the test
/// calls release_notifs(), and `swallow` produces NO CQE at all (the
/// reclaim-at-shutdown scenario).
class MockUringApi final : public UringApi {
 public:
  static constexpr std::int32_t kOk = std::numeric_limits<std::int32_t>::max();

  struct Verdict {
    std::int32_t res = kOk;
    bool defer_notif = false;   ///< ZC only: park the F_NOTIF CQE
    bool more_on_error = false; ///< ZC only: failed result still posts F_MORE
    bool swallow = false;       ///< no CQE ever (slot left unanswered)
  };

  std::deque<Verdict> plan;  // guarded by mu_ (worker threads submit)
  std::size_t sq_capacity = 1024;
  bool zerocopy = true;
  int register_result = 0;
  int register_fail_at = -1;  ///< fail the Nth register_buffer call (0-based)
  bool mark_zc_copied = false;
  std::uint64_t overflows = 0;

  int ring_create(unsigned, unsigned) override {
    std::lock_guard<std::mutex> lock(mu_);
    return rings_created_++;
  }
  void ring_destroy(int) override {}

  int register_buffer(int, unsigned index, void* base,
                      std::size_t len) override {
    std::lock_guard<std::mutex> lock(mu_);
    const int call = register_calls_++;
    if (register_result != 0) return register_result;
    if (call == register_fail_at) return -ENOMEM;
    registered_.push_back({index, base, len});
    return 0;
  }

  bool supports_zerocopy(int) override { return zerocopy; }

  bool push(int, const UringOp& op) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (pushed_.size() >= sq_capacity) return false;
    pushed_.push_back(op);
    return true;
  }

  int submit(int) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++submits_;
    const int n = static_cast<int>(pushed_.size());
    for (const UringOp& op : pushed_) complete(op);
    pushed_.clear();
    return n;
  }

  int reap(int, UringCqe* out, unsigned max, std::uint64_t) override {
    std::lock_guard<std::mutex> lock(mu_);
    unsigned n = 0;
    while (n < max && !ready_.empty()) {
      out[n++] = ready_.front();
      ready_.pop_front();
    }
    return static_cast<int>(n);
  }

  std::uint64_t overflow_count(int) override {
    std::lock_guard<std::mutex> lock(mu_);
    return overflows;
  }

  std::uint64_t syscalls() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return submits_;
  }

  /// Moves every parked F_NOTIF CQE into the ready queue.
  void release_notifs() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const UringCqe& cqe : deferred_notifs_) ready_.push_back(cqe);
    deferred_notifs_.clear();
  }

  std::vector<CapturedSend> captured() const {
    std::lock_guard<std::mutex> lock(mu_);
    return captured_;
  }
  std::uint64_t submits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return submits_;
  }
  struct Registered {
    unsigned index;
    void* base;
    std::size_t len;
  };
  std::vector<Registered> registered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return registered_;
  }

 private:
  static std::size_t wire_len_of(const UringOp& op) {
    if (op.kind == UringOp::Kind::kSendZcFixed) return op.len;
    std::size_t total = 0;
    for (std::size_t k = 0; k < op.msg->msg_iovlen; ++k) {
      total += op.msg->msg_iov[k].iov_len;
    }
    return total;
  }

  void complete(const UringOp& op) {
    Verdict verdict;
    if (!plan.empty()) {
      verdict = plan.front();
      plan.pop_front();
    }
    if (verdict.swallow) return;
    const std::size_t wire = wire_len_of(op);
    const std::int32_t res =
        verdict.res == kOk ? static_cast<std::int32_t>(wire) : verdict.res;
    const bool zc_op = op.kind != UringOp::Kind::kSendmsg;
    const bool post_notif =
        zc_op && (res >= 0 || verdict.more_on_error);
    UringCqe result;
    result.user_data = op.user_data;
    result.res = res;
    result.more = post_notif;
    ready_.push_back(result);
    if (post_notif) {
      UringCqe notif;
      notif.user_data = op.user_data;
      notif.notif = true;
      notif.zc_copied = mark_zc_copied;
      if (verdict.defer_notif) {
        deferred_notifs_.push_back(notif);
      } else {
        ready_.push_back(notif);
      }
    }
    if (res == static_cast<std::int32_t>(wire)) capture(op, wire);
  }

  void capture(const UringOp& op, std::size_t wire) {
    std::vector<net::Byte> bytes;
    if (op.kind == UringOp::Kind::kSendZcFixed) {
      const auto* base = static_cast<const net::Byte*>(op.buf);
      bytes.assign(base, base + op.len);
    } else {
      for (std::size_t k = 0; k < op.msg->msg_iovlen; ++k) {
        const auto* base =
            static_cast<const net::Byte*>(op.msg->msg_iov[k].iov_base);
        bytes.insert(bytes.end(), base, base + op.msg->msg_iov[k].iov_len);
      }
    }
    CapturedSend send;
    send.kind = op.kind;
    send.buf = op.buf;
    send.buf_index = op.buf_index;
    send.wire_bytes = wire;
    const auto header = WireHeader::decode(bytes);
    ASSERT_TRUE(header.has_value()) << "backend emitted an unparsable header";
    send.header = *header;
    captured_.push_back(send);
  }

  mutable std::mutex mu_;
  int rings_created_ = 0;
  int register_calls_ = 0;
  std::uint64_t submits_ = 0;
  std::vector<UringOp> pushed_;
  std::deque<UringCqe> ready_;
  std::vector<UringCqe> deferred_notifs_;
  std::vector<CapturedSend> captured_;
  std::vector<Registered> registered_;
};

UringBackendOptions mock_options(MockUringApi& api, StubSocketApi& sockets) {
  UringBackendOptions options;
  options.base_port = 21000;
  options.api = &api;
  options.sockets = &sockets;
  return options;
}

/// Drains poll_completions for a fixed number of rounds.  Fixed, not
/// until-quiet: each poll reaps BEFORE resubmitting internal retries, so
/// a round that stages no completion may still have made progress (the
/// retried op's CQE becomes reapable only on the NEXT round).
std::vector<EgressCompletion> drain(UringBackend& backend, IfaceId iface) {
  std::vector<EgressCompletion> out;
  for (int round = 0; round < 8; ++round) {
    backend.poll_completions(iface, out);
  }
  return out;
}

// --- Submission batching and completion verdicts ---------------------------

TEST(UringBackend, OneSubmitPerBurstAndCompletionsResolveSent) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst;
  for (std::uint32_t i = 0; i < 8; ++i) burst.emplace_back(3, 500);
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_FALSE(result.clean) << "fates are deferred, dispositions are truth";
  EXPECT_EQ(result.inflight, 8u);
  EXPECT_EQ(result.sent, 0u) << "nothing is 'sent' until its CQE says so";
  ASSERT_EQ(dispositions.size(), 8u);
  for (const SendDisposition d : dispositions) {
    EXPECT_EQ(d, SendDisposition::kInflight);
  }
  EXPECT_EQ(api.submits(), 1u) << "the whole burst amortizes to ONE enter";

  const auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 8u);
  for (const EgressCompletion& c : done) {
    EXPECT_EQ(c.verdict, SendDisposition::kSent);
  }
  EXPECT_EQ(backend.inflight_packets(0), 0u);
  EXPECT_EQ(backend.sent_datagrams(0), 8u);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 8u);
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(captured[m].header.seq, m) << "per-flow sequence advances";
    EXPECT_EQ(captured[m].header.size_bytes, 500u);
  }
}

TEST(UringBackend, ShortWriteCqeIsTerminalDrop) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.res = 10});  // header is 24 bytes: short
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(1, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  const auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kDropped);
  EXPECT_EQ(backend.short_writes(0), 1u);
  EXPECT_EQ(backend.error_drops(0), 1u);
  EXPECT_EQ(backend.sent_datagrams(0), 0u);
  EXPECT_EQ(backend.inflight_packets(0), 0u);
}

TEST(UringBackend, TransientCqeRetriesInternallyWithSameSequence) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.res = -EAGAIN});
  api.plan.push_back({.res = -ENOBUFS});  // retried op fails once more
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(7, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(dispositions[0], SendDisposition::kInflight)
      << "a transient CQE is never handed back to the runtime";

  const auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kSent);
  EXPECT_EQ(backend.cqe_requeues(0), 2u);
  EXPECT_EQ(backend.send_errors(0), 0u) << "transient pushback is not an error";

  // The retry reused the serialized slot: exactly one datagram on the
  // wire, sequence 0 -- and the NEXT packet takes sequence 1.  No gap, no
  // reuse: the receiver ledger stays exact through the retry storm.
  std::vector<Packet> next = {Packet(7, 100)};
  backend.send_burst(0, next, 0, dispositions);
  drain(backend, 0);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].header.seq, 0u);
  EXPECT_EQ(captured[1].header.seq, 1u);
}

TEST(UringBackend, HardErrnoCqeCountsAndKeepsConsumedSequence) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.res = -EPERM});
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(9, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  const auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kDropped);
  EXPECT_EQ(backend.send_errors(0), 1u);
  EXPECT_EQ(backend.error_drops(0), 1u);

  // The dropped packet consumed seq 0; the receiver-side gap IS the loss.
  std::vector<Packet> next = {Packet(9, 100)};
  backend.send_burst(0, next, 0, dispositions);
  drain(backend, 0);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].header.seq, 1u);
}

// --- Submission-time pushback ----------------------------------------------

TEST(UringBackend, SqFullSuffixIsRequeuedUnstampedWithoutSequenceGap) {
  MockUringApi api;
  StubSocketApi sockets;
  api.sq_capacity = 2;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst;
  for (std::uint32_t i = 0; i < 5; ++i) burst.emplace_back(4, 100);
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(result.inflight, 2u);
  EXPECT_EQ(result.requeued, 3u);
  EXPECT_EQ(dispositions[0], SendDisposition::kInflight);
  EXPECT_EQ(dispositions[1], SendDisposition::kInflight);
  EXPECT_EQ(dispositions[2], SendDisposition::kRequeued);
  EXPECT_EQ(dispositions[4], SendDisposition::kRequeued);
  drain(backend, 0);

  // The runtime's stash retries the suffix as the next burst (re-offering
  // the still-requeued tail each pass, exactly like the drain loop does);
  // sequences must be continuous because pushed-back packets never
  // consumed one.
  std::vector<Packet> retry(burst.begin() + 2, burst.end());
  for (int round = 0; round < 8 && !retry.empty(); ++round) {
    const EgressResult r = backend.send_burst(0, retry, 0, dispositions);
    drain(backend, 0);
    retry.erase(retry.begin(),
                retry.begin() +
                    static_cast<std::ptrdiff_t>(retry.size() - r.requeued));
  }
  ASSERT_TRUE(retry.empty()) << "the tail never fit into the tiny SQ";
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 5u);
  for (std::uint64_t m = 0; m < 5; ++m) {
    EXPECT_EQ(captured[m].header.seq, m) << "datagram " << m;
  }
  EXPECT_EQ(backend.fallback_sends(0), 5u)
      << "path counters tick once per ring-ACCEPTED SQE, not per attempt";
}

TEST(UringBackend, SlotArenaExhaustionRequeuesSuffix) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackendOptions options = mock_options(api, sockets);
  options.inflight_limit = 2;
  UringBackend backend(options);
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst;
  for (std::uint32_t i = 0; i < 5; ++i) burst.emplace_back(1, 100);
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(result.inflight, 2u);
  EXPECT_EQ(result.requeued, 3u);
  EXPECT_EQ(backend.inflight_packets(0), 2u);
  drain(backend, 0);
  EXPECT_EQ(backend.inflight_packets(0), 0u)
      << "completions free the arena for the next burst";
}

TEST(UringBackend, OversizeDatagramDroppedUpfront) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackendOptions options = mock_options(api, sockets);
  options.max_payload_bytes = 70000;
  UringBackend backend(options);
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(2, 66000)};
  burst[0].frame =
      std::make_shared<const net::Frame>(net::ByteBuffer(66000, net::Byte{1}));
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(dispositions[0], SendDisposition::kDropped);
  EXPECT_EQ(backend.oversize_drops(0), 1u);
  EXPECT_EQ(api.captured().size(), 0u) << "never offered to the kernel";
  EXPECT_EQ(api.submits(), 0u) << "an empty burst must not pay a syscall";
}

TEST(UringBackend, CqOverflowCountSurfaces) {
  MockUringApi api;
  StubSocketApi sockets;
  api.overflows = 7;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});
  EXPECT_EQ(backend.cq_overflows(), 7u);
}

// --- Zero-copy: registered buffers and the two-CQE slot lifetime ------------

net::FramePool headroom_pool() {
  PacketPoolOptions options;
  options.buffer_bytes = 512;
  options.slab_slots = 16;
  options.max_slabs = 1;
  options.precarve = true;  // freeze the slab directory for registration
  return net::FramePool(options, kWireScratchBytes);
}

TEST(UringBackend, RegisteredPoolFrameSendsZeroCopyFromSlabMemory) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});
  EXPECT_TRUE(backend.zerocopy_active());

  net::FramePool pool = headroom_pool();
  ASSERT_TRUE(backend.register_frame_pool(pool));
  EXPECT_EQ(backend.registered_buffers(), 1u);
  const auto regions = api.registered();
  ASSERT_EQ(regions.size(), 1u);

  auto frame = pool.make_filled(64, net::Byte{0x5A});
  const net::Byte* payload_ptr = frame->bytes().data();
  std::vector<Packet> burst = {Packet(6, 64)};
  burst[0].frame = std::move(frame);  // sole ownership: fixed path eligible

  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  const auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kSent);
  EXPECT_EQ(backend.fixed_sends(0), 1u);
  EXPECT_EQ(backend.fallback_sends(0), 0u);
  EXPECT_EQ(backend.zc_notifs(0), 1u);

  // Pointer identity is the zero-copy proof: the op's buffer IS the slab
  // memory (header written into the frame's headroom, immediately before
  // the payload), tagged with the registered table index -- no user-space
  // copy of the payload exists anywhere.
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].kind, UringOp::Kind::kSendZcFixed);
  EXPECT_EQ(captured[0].buf, payload_ptr - WireHeader::kSize);
  EXPECT_EQ(captured[0].buf_index, regions[0].index);
  EXPECT_EQ(captured[0].wire_bytes, WireHeader::kSize + 64u);
  EXPECT_EQ(captured[0].header.flow, 6u);
  EXPECT_EQ(captured[0].header.payload_bytes, 64u);
  const auto* base = static_cast<const net::Byte*>(captured[0].buf);
  EXPECT_EQ(base[WireHeader::kSize], net::Byte{0x5A})
      << "payload bytes untouched by the in-place header";
}

TEST(UringBackend, ZcSlotPinsFrameUntilBufferReleaseNotification) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.defer_notif = true});
  api.mark_zc_copied = true;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  net::FramePool pool = headroom_pool();
  ASSERT_TRUE(backend.register_frame_pool(pool));
  auto frame = pool.make_filled(64, net::Byte{1});
  std::weak_ptr<const net::Frame> watch = frame;
  std::vector<Packet> burst = {Packet(1, 64)};
  burst[0].frame = std::move(frame);

  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  burst.clear();  // the runtime's burst scratch is gone after the call
  auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kSent)
      << "the packet resolves on the result CQE, before the notif";
  done.clear();  // the runtime dropped its completion copy

  // The kernel may still be reading the slab bytes: the slot must keep
  // the frame alive until the F_NOTIF buffer release arrives.
  EXPECT_FALSE(watch.expired())
      << "slab slot freed while the send was still in flight";
  EXPECT_EQ(backend.zc_notifs(0), 0u);

  api.release_notifs();
  drain(backend, 0);
  EXPECT_TRUE(watch.expired()) << "notif must release the frame reference";
  EXPECT_EQ(backend.zc_notifs(0), 1u);
  EXPECT_EQ(backend.zc_copied(0), 1u) << "loopback honesty signal recorded";
}

TEST(UringBackend, TransientZcResultRetriesAfterNotification) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back(
      {.res = -ENOBUFS, .defer_notif = true, .more_on_error = true});
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  net::FramePool pool = headroom_pool();
  ASSERT_TRUE(backend.register_frame_pool(pool));
  auto frame = pool.make_filled(64, net::Byte{1});
  std::vector<Packet> burst = {Packet(2, 64)};
  burst[0].frame = std::move(frame);

  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  auto done = drain(backend, 0);
  EXPECT_TRUE(done.empty())
      << "a transient ZC failure must wait for its notif, then retry";
  EXPECT_EQ(backend.cqe_requeues(0), 1u);

  api.release_notifs();  // buffer released: the slot may resubmit now
  done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].verdict, SendDisposition::kSent);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].header.seq, 0u) << "same sequence, no phantom gap";
}

TEST(UringBackend, SharedFrameTakesCopyingFallback) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  net::FramePool pool = headroom_pool();
  ASSERT_TRUE(backend.register_frame_pool(pool));
  auto frame = pool.make_filled(64, net::Byte{1});
  std::vector<Packet> burst = {Packet(1, 64)};
  burst[0].frame = frame;  // the test still holds a reference: shared

  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  drain(backend, 0);
  EXPECT_EQ(backend.fixed_sends(0), 0u)
      << "a shared frame's headroom must not be scribbled on";
  EXPECT_EQ(backend.fallback_sends(0), 1u);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].kind, UringOp::Kind::kSendmsg);
}

TEST(UringBackend, RegisterFramePoolRefusalsAreNonFatal) {
  {
    // No SEND_ZC support: registration declines, fallback path serves.
    MockUringApi api;
    StubSocketApi sockets;
    api.zerocopy = false;
    UringBackend backend(mock_options(api, sockets));
    backend.attach_topology({0});
    backend.attach({"if0"});
    net::FramePool pool = headroom_pool();
    EXPECT_FALSE(backend.register_frame_pool(pool));
    EXPECT_FALSE(backend.zerocopy_active());
  }
  {
    // No headroom: the contiguous [header|payload] trick cannot work.
    MockUringApi api;
    StubSocketApi sockets;
    UringBackend backend(mock_options(api, sockets));
    backend.attach_topology({0});
    backend.attach({"if0"});
    PacketPoolOptions options;
    options.precarve = true;
    options.max_slabs = 1;
    net::FramePool pool(options, 0);
    EXPECT_FALSE(backend.register_frame_pool(pool));
  }
  {
    // Kernel rejects the registration (memlock): slab takes the fallback.
    MockUringApi api;
    StubSocketApi sockets;
    api.register_result = -ENOMEM;
    UringBackend backend(mock_options(api, sockets));
    backend.attach_topology({0});
    backend.attach({"if0"});
    net::FramePool pool = headroom_pool();
    EXPECT_FALSE(backend.register_frame_pool(pool));
    EXPECT_EQ(backend.registered_buffers(), 0u);
  }
}

TEST(UringBackend, PartialBufferRegistrationBurnsTableIndex) {
  MockUringApi api;
  StubSocketApi sockets;
  api.register_fail_at = 1;  // slab A registers on ring 0, fails on ring 1
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0, 1});  // two workers -> two rings
  backend.attach({"if0", "if1"});

  PacketPoolOptions options;
  options.buffer_bytes = 512;
  options.slab_slots = 4;
  options.max_slabs = 2;
  options.precarve = true;
  net::FramePool pool(options, kWireScratchBytes);

  EXPECT_TRUE(backend.register_frame_pool(pool));
  EXPECT_EQ(backend.registered_buffers(), 1u) << "only the clean slab";
  // Slab A's partial registration left table index 0 occupied on ring 0;
  // slab B must take a FRESH index on both rings, never silently replace
  // the half-registered one.
  const auto regs = api.registered();
  ASSERT_EQ(regs.size(), 3u);
  EXPECT_EQ(regs[0].index, 0u) << "slab A on ring 0 (before the failure)";
  EXPECT_EQ(regs[1].index, 1u) << "slab B burns past the poisoned index";
  EXPECT_EQ(regs[2].index, 1u) << "slab B, same index on the second ring";
  EXPECT_EQ(regs[1].base, regs[2].base);
  EXPECT_NE(regs[1].base, regs[0].base);
}

// --- Shutdown reclaim -------------------------------------------------------

TEST(UringBackend, ReclaimForceDropsUnansweredSlots) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.swallow = true});
  api.plan.push_back({.swallow = true});
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(1, 100), Packet(1, 100),
                               Packet(2, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  drain(backend, 0);
  EXPECT_EQ(backend.inflight_packets(0), 2u) << "two CQEs never arrived";

  backend.flush(0);
  std::vector<EgressCompletion> out;
  const std::size_t reclaimed = backend.reclaim_inflight(0, out);
  EXPECT_EQ(reclaimed, 2u);
  ASSERT_EQ(out.size(), 2u);
  for (const EgressCompletion& c : out) {
    EXPECT_EQ(c.verdict, SendDisposition::kDropped);
  }
  EXPECT_EQ(backend.inflight_packets(0), 0u)
      << "reclaim must close the in-flight term of the identity";
  EXPECT_EQ(backend.error_drops(0), 2u);
}

TEST(UringBackend, FlushClassifiesWaitedForCompletions) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackendOptions options = mock_options(api, sockets);
  options.submit_coalesce_polls = 4;  // hold the doorbell past send_burst
  UringBackend backend(options);
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(1, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(api.submits(), 0u) << "coalescing deferred the submit";

  // flush submits the straggler and then waits for its CQE.  The waited-
  // for completion must be CLASSIFIED, not merely consumed: a discarded
  // CQE leaves the slot kInflight and reclaim would misreport the sent
  // packet as a drop.
  backend.flush(0);
  std::vector<EgressCompletion> out;
  const std::size_t n = backend.reclaim_inflight(0, out);
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, SendDisposition::kSent);
  EXPECT_EQ(backend.sent_datagrams(0), 1u);
  EXPECT_EQ(backend.error_drops(0), 0u) << "nothing was force-dropped";
  EXPECT_EQ(backend.inflight_packets(0), 0u);
}

TEST(UringBackend, ReclaimDoesNotResubmitParkedRetries) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.res = -ENOBUFS});
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(3, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);  // transient CQE parks a retry
  EXPECT_EQ(backend.cqe_requeues(0), 1u);

  // Shutdown reclaim must turn the parked retry into a forced drop, not
  // a fresh SQE: resubmitting here would free the slot with a completion
  // still owed by the kernel, landing the late CQE on a recycled slot.
  std::vector<EgressCompletion> out;
  const std::size_t n = backend.reclaim_inflight(0, out);
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].verdict, SendDisposition::kDropped);
  EXPECT_EQ(api.submits(), 1u) << "reclaim must not ring the doorbell";
  EXPECT_EQ(backend.inflight_packets(0), 0u);
  EXPECT_EQ(backend.error_drops(0), 1u);
}

TEST(UringBackend, LateNotifAfterReclaimRetiresSlotSilently) {
  MockUringApi api;
  StubSocketApi sockets;
  api.plan.push_back({.defer_notif = true});
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});

  net::FramePool pool = headroom_pool();
  ASSERT_TRUE(backend.register_frame_pool(pool));
  auto frame = pool.make_filled(64, net::Byte{1});
  std::vector<Packet> burst = {Packet(1, 64)};
  burst[0].frame = std::move(frame);
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  auto done = drain(backend, 0);
  ASSERT_EQ(done.size(), 1u) << "resolved; only the ZC notif is missing";

  std::vector<EgressCompletion> out;
  EXPECT_EQ(backend.reclaim_inflight(0, out), 0u);
  EXPECT_TRUE(out.empty()) << "the packet was already handed back";

  // The buffer-release notification lands AFTER reclaim parked the slot:
  // it must retire the slot silently, not trip the slot-state asserts or
  // stage a bogus completion.
  api.release_notifs();
  out.clear();
  EXPECT_EQ(backend.poll_completions(0, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(UringBackend, RegistersUringMetricsSeries) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackend backend(mock_options(api, sockets));
  backend.attach_topology({0});
  backend.attach({"if0"});
  telemetry::MetricsRegistry registry;
  backend.register_metrics(registry);
  std::vector<Packet> burst = {Packet(1, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  drain(backend, 0);
  const std::string text = telemetry::render_prometheus(registry);
  EXPECT_NE(text.find("midrr_io_uring_sqe_batch"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_cqe_batch"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_inflight_packets"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_fixed_sends_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_zc_notifs_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_cq_overflows_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_syscalls_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_uring_registered_buffers"), std::string::npos);
}

// --- Runtime integration: the extended conservation identity ----------------

using rt::IngressPort;
using rt::Runtime;
using rt::RuntimeOptions;
using rt::RuntimeStats;

TEST(RuntimeUring, CleanRunClosesIdentityWithInflightTerm) {
  MockUringApi api;
  StubSocketApi sockets;
  UringBackend backend(mock_options(api, sockets));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 200; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().sent == 200; }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.dequeued, 200u);
  EXPECT_EQ(stats.sent, 200u);
  EXPECT_EQ(stats.io_drops, 0u);
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_inflight, 0u) << "quiescence drains the in-flight term";
  EXPECT_EQ(stats.dequeued,
            stats.sent + stats.io_drops + stats.io_pending + stats.io_inflight);
  // Wire ledger: one datagram per dequeued packet, contiguous sequences.
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 200u);
  for (std::uint64_t m = 0; m < captured.size(); ++m) {
    EXPECT_EQ(captured[m].header.seq, m);
  }
}

TEST(RuntimeUring, TransientAndHardErrorChaosStillClosesIdentity) {
  MockUringApi api;
  StubSocketApi sockets;
  // A hostile kernel: bursts of transient pushback with scattered hard
  // failures.  Every packet must end as exactly one of sent / io_drops.
  for (int i = 0; i < 40; ++i) {
    api.plan.push_back({.res = -ENOBUFS});
    api.plan.push_back({});
    if (i % 8 == 3) api.plan.push_back({.res = -ECONNREFUSED});
    if (i % 8 == 6) api.plan.push_back({.res = -EAGAIN});
  }
  UringBackend backend(mock_options(api, sockets));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 300; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.dequeued == 300 && s.sent + s.io_drops == 300;
  }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.dequeued, 300u);
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops);
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_inflight, 0u);
  EXPECT_GT(backend.cqe_requeues(0), 0u) << "the storm actually happened";
  EXPECT_GT(stats.io_send_errors, 0u) << "the hard errors actually happened";
  // Exact wire ledger modulo drops: every consumed sequence reaches the
  // wire AT MOST once (internal retries keep the same seq, so a retry can
  // reorder but never duplicate), drawn from exactly the 300 stamped
  // values; hard drops leave gaps, which the receiver counts as loss.
  const auto captured = api.captured();
  EXPECT_EQ(captured.size(), stats.sent);
  std::set<std::uint64_t> seqs;
  for (const CapturedSend& send : captured) {
    EXPECT_TRUE(seqs.insert(send.header.seq).second)
        << "sequence " << send.header.seq << " hit the wire twice";
    EXPECT_LT(send.header.seq, 300u);
  }
}

TEST(RuntimeUring, SwallowedCompletionsAreReclaimedAsCountedDropsAtStop) {
  MockUringApi api;
  StubSocketApi sockets;
  for (int i = 0; i < 5; ++i) api.plan.push_back({.swallow = true});
  UringBackend backend(mock_options(api, sockets));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 50; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.dequeued == 50 && s.sent == 45;
  }));
  EXPECT_EQ(runtime.stats().io_inflight, 5u)
      << "unanswered slots show up in the in-flight gauge";
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sent, 45u);
  EXPECT_EQ(stats.io_drops, 5u) << "reclaimed, counted, never silent";
  EXPECT_EQ(stats.io_inflight, 0u);
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops);
}

}  // namespace
}  // namespace midrr::io
