// End-to-end fault tolerance against a live Runtime: injected ingress
// faults with exact loss accounting, pool exhaustion, backpressure and
// weight-aware overload shedding, watchdog-driven worker restarts, the
// remove-during-drain straggler contract, quarantine semantics, and the
// headline kill -> flap -> revive chaos run with a Supervisor closing the
// loop.  Every test asserts the conservation identity at quiescence:
//
//   offered  == dequeued + fanin_drops + tail_drops + shed_drops
//               + straggler_drops
//   dequeued == sent + io_drops + io_pending   (egress split; under the
//               sim backend used here sent == dequeued and the rest are 0)
//
// i.e. any packet the runtime accepted is either delivered or shows up in
// exactly one named drop counter -- zero silent loss, even mid-chaos.
// test_io_e2e.cpp re-runs the headline chaos plan with the UDP backend,
// where the egress split carries real socket outcomes.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "fairness/maxmin.hpp"
#include "fault/adapt.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recorder.hpp"
#include "fault/supervisor.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/runtime.hpp"
#include "util/time.hpp"

namespace midrr::rt {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::LinkState;
using fault::Supervisor;
using fault::SupervisorOptions;

// The post-recovery rate check is a wall-clock throughput claim; under a
// sanitizer the whole process runs 2-15x slow and measurement windows
// catch pacer burst boundaries, so only the conservation/supervision
// invariants stay strict there and the rate tolerance widens.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kRateTolerance = 0.40;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kRateTolerance = 0.40;
#else
constexpr double kRateTolerance = 0.15;
#endif
#else
constexpr double kRateTolerance = 0.15;
#endif

/// Polls `done` until it returns true or `seconds` elapse.
bool wait_for(double seconds, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

std::uint64_t accounted(const RuntimeStats& s) {
  return s.dequeued + s.fanin_drops + s.tail_drops + s.shed_drops +
         s.straggler_drops;
}

double jain(const std::vector<double>& xs) {
  double sum = 0.0, sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  return sq > 0.0 ? sum * sum / (static_cast<double>(xs.size()) * sq) : 1.0;
}

// --- Injected ingress faults ----------------------------------------------

TEST(FaultE2E, InjectedDropsAreInjectorCountedNeverOffered) {
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "ingress_drop", "probability": 1.0,
       "duration_ms": 600000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow({.willing = {0}});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(port.offer(f, 1000)) << "the producer believes it sent";
    }
    EXPECT_EQ(port.offered(), 0u) << "nothing actually entered a ring";
  }
  runtime.stop();
  EXPECT_EQ(injector.ingress_drops(), 100u);
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, 0u);
  EXPECT_EQ(stats.dequeued, 0u);
}

TEST(FaultE2E, InjectedDupsDeliverBothCopies) {
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "ingress_dup", "probability": 1.0,
       "duration_ms": 600000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(port.offer(f, 1000));
    EXPECT_EQ(port.offered(), 100u) << "each offer landed twice";
  }
  ASSERT_TRUE(wait_for(5.0, [&] { return runtime.stats().dequeued >= 100; }));
  runtime.stop();
  EXPECT_EQ(injector.ingress_dups(), 50u);
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, 100u);
  EXPECT_EQ(stats.dequeued, 100u);
  EXPECT_EQ(runtime.sent_bytes(f), 100'000u);
}

TEST(FaultE2E, InjectedDelaysDeliverEventuallyWithNoLoss) {
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "ingress_delay", "probability": 1.0,
       "delay_ms": 50, "duration_ms": 600000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(port.offer(f, 1000));
    // Held packets are flushed as their delay expires on later offers, and
    // force-flushed when the port dies -- either way nothing is lost.
  }
  ASSERT_TRUE(wait_for(5.0, [&] { return runtime.stats().dequeued >= 40; }));
  runtime.stop();
  EXPECT_EQ(injector.ingress_delays(), 40u);
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, 40u);
  EXPECT_EQ(stats.dequeued, 40u);
}

TEST(FaultE2E, PoolExhaustionStopsTheGeneratorCold) {
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "pool_exhaust", "duration_ms": 600000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  Runtime runtime(options);
  runtime.add_interface("if0");
  runtime.control().add_flow({.willing = {0}});
  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();
  ASSERT_TRUE(wait_for(5.0, [&] { return injector.pool_rejects() > 100; }));
  generator.stop();
  runtime.stop();
  EXPECT_EQ(runtime.stats().offered, 0u)
      << "every acquire failed inside the exhaustion window";
  EXPECT_EQ(generator.offered(), 0u);
  EXPECT_GE(generator.rejected(), injector.pool_rejects());
}

// --- Overload control ------------------------------------------------------

TEST(FaultE2E, BackpressureWatermarkRefusesOffersUnderBacklog) {
  RuntimeOptions options;
  options.backpressure_bytes = 20'000;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(8e5));  // 100 bytes/ms: a trickle
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  IngressPort port = runtime.port(0);
  // Keep offering until the shard's backlog crosses the watermark and the
  // port refuses us.  The pacing sleep lets fan-in move ring contents into
  // the scheduler, where they count against the watermark.
  bool rejected = false;
  for (int i = 0; i < 2000 && !rejected; ++i) {
    rejected = !port.offer(f, 1000);
    if ((i & 0xf) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_TRUE(rejected) << "offers past the watermark must be refused";
  port.flush_counters();
  runtime.stop();
  EXPECT_GT(runtime.stats().backpressure_rejects, 0u);
}

TEST(FaultE2E, OverloadSheddingKeepsJainHighUnderTwoXLoad) {
  RuntimeOptions options;
  options.shed_bytes = 128 * 1024;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(mbps(20)));
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(runtime.control().add_flow(
        {.willing = {0}, .name = "f" + std::to_string(i)}));
  }
  runtime.start();
  LoadGeneratorOptions load;
  load.packet_bytes = 1000;  // unthrottled: far past 2x the link rate
  LoadGenerator generator(runtime, load);
  generator.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warm up
  std::vector<std::uint64_t> before;
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  std::vector<double> rates;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(
        static_cast<double>(runtime.sent_bytes(flows[i]) - before[i]));
  }
  generator.stop();
  runtime.stop();
  EXPECT_GT(runtime.stats().shed_drops, 0u)
      << "the watermark must have engaged under 2x+ overload";
  EXPECT_GE(jain(rates), 0.9) << "shedding is weight-aware, so equal flows "
                                 "keep near-equal goodput";
}

// --- Straggler & quarantine contracts -------------------------------------

TEST(FaultE2E, RemoveDuringDrainDeliversOrCountsEveryPacket) {
  RuntimeOptions options;
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(8e5));  // slow enough to backlog
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 300; ++i) ASSERT_TRUE(port.offer(f, 1000));
  }
  // Let the drain get properly underway, then yank the flow mid-flight.
  ASSERT_TRUE(wait_for(5.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.enqueued >= 200 && s.dequeued >= 10;
  }));
  runtime.control().remove_flow(f);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_GT(stats.straggler_drops, 0u)
      << "packets queued in the scheduler at removal are counted losses";
  EXPECT_EQ(stats.offered, accounted(stats))
      << "delivered or counted, never silently gone";
  EXPECT_EQ(stats.tail_drops, 0u);
  EXPECT_EQ(stats.shed_drops, 0u);
}

TEST(FaultE2E, QuarantinedFlowOffersAreRejectedAndCounted) {
  Runtime runtime(RuntimeOptions{});
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow({.willing = {0}});
  runtime.start();
  IngressPort port = runtime.port(0);
  ASSERT_TRUE(port.offer(f, 1000));
  // Let the first packet drain before the kill -- otherwise it would be
  // discarded as a straggler by the re-steer, which is a different test.
  ASSERT_TRUE(wait_for(5.0, [&] { return runtime.stats().dequeued >= 1; }));
  // The flow's only interface goes administratively dead: preferences are
  // kept, shards dropped, and every offer is refused WITH a count.
  runtime.control().set_iface_down(0, true);
  EXPECT_FALSE(port.offer(f, 1000));
  EXPECT_FALSE(port.offer(f, 1000));
  runtime.control().set_iface_down(0, false);
  EXPECT_TRUE(port.offer(f, 1000)) << "revive re-steers the flow back";
  port.flush_counters();
  ASSERT_TRUE(wait_for(5.0, [&] { return runtime.stats().dequeued >= 2; }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.quarantine_rejects, 2u);
  EXPECT_GE(stats.ring_rejects, 2u) << "quarantine rejects are rejects too";
  EXPECT_EQ(stats.offered, 2u);
}

// --- Watchdog restart ------------------------------------------------------

TEST(FaultE2E, WatchdogRestartsAStalledWorkerWithoutLosingPackets) {
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 0, "kind": "worker_stall", "worker": 0,
       "duration_ms": 30000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();

  SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 2 * kMillisecond;
  sup_options.worker_stall_probes = 3;
  sup_options.replay_clustering = false;
  Supervisor supervisor(runtime, sup_options);
  supervisor.start();

  // The lone worker is parked at the injector's safe point from its first
  // loop iteration; only a successful restart lets anything drain.
  std::uint64_t sent = 0;
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 200; ++i) {
      if (port.offer(f, 1000)) ++sent;
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] { return supervisor.restarts_succeeded() >= 1; }))
      << "the watchdog must supersede the parked thread";
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().dequeued >= sent; }))
      << "the replacement thread owns the shard and drains it";
  supervisor.stop();
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_GE(stats.worker_restarts, 1u);
  EXPECT_EQ(stats.dequeued, sent);
  EXPECT_EQ(stats.offered, accounted(stats));
  EXPECT_EQ(injector.stalls_entered(), 1u)
      << "the replacement must not re-enter the window it was spawned for";
}

// --- The headline chaos run: kill -> flap -> revive ------------------------

TEST(FaultE2E, KillFlapReviveConservesPacketsAndRecoversFairness) {
  FaultInjector injector(FaultPlan::parse_json(R"({"seed": 11, "events": [
      {"at_ms": 300,  "kind": "iface_down", "iface": 1},
      {"at_ms": 900,  "kind": "iface_up",   "iface": 1},
      {"at_ms": 1200, "kind": "iface_flap", "iface": 1,
       "period_ms": 60, "duty": 0.5, "duration_ms": 300}]})"));
  RuntimeOptions options;
  options.workers = 2;
  options.shards = 1;  // exact paper semantics across both interfaces
  options.fault = &injector;
  // Deep buckets: on an oversubscribed host a drain thread can be starved
  // for hundreds of milliseconds; with the default 256 KiB depth the
  // bucket caps and link capacity is silently lost, skewing the rate
  // check below.  One full second of the fastest link fits in 4 MiB, so
  // any starvation inside the pacer's catch-up clamp costs nothing.
  options.pacer_depth_bytes = 4 * 1024 * 1024;
  Runtime runtime(options);
  // Symmetric capacities keep the optimum in a single uniform cluster
  // (level 20 for all three flows), which is the regime where Theorem 2
  // guarantees miDRR reaches the max-min allocation exactly -- with
  // asymmetric links the spanning flow "b" legitimately siphons some of
  // "c"'s interface and the reference check would measure the known
  // miDRR-vs-optimal gap instead of recovery.
  runtime.add_interface("if0", RateProfile(mbps(30)));
  runtime.add_interface("if1", RateProfile(mbps(30)));
  const FlowId a = runtime.control().add_flow({.willing = {0}, .name = "a"});
  const FlowId b =
      runtime.control().add_flow({.willing = {0, 1}, .name = "b"});
  const FlowId c = runtime.control().add_flow({.willing = {1}, .name = "c"});
  runtime.start();

  // Probe slowly enough that a worker starved by an oversubscribed host
  // (single-core CI running tests in parallel) is not mistaken for a dead
  // link: a false kill needs 80 ms of continuous drain silence, while the
  // injected 600 ms outage is still detected well inside its window.
  SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 10 * kMillisecond;
  sup_options.dead_after_probes = 8;
  sup_options.healthy_after_probes = 3;
  Supervisor supervisor(runtime, sup_options, &runtime);
  supervisor.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();

  // Ride through the kill window: the supervisor must notice the silent
  // link and quarantine "c" (its whole Pi row is dead), so its offers are
  // rejected-with-count instead of disappearing into a dead queue.
  ASSERT_TRUE(wait_for(10.0, [&] {
    return supervisor.link_state(1) == LinkState::kDead;
  })) << "silence against backlog must be detected";
  EXPECT_TRUE(runtime.control().iface_down(1));
  ASSERT_TRUE(
      wait_for(10.0, [&] { return runtime.stats().quarantine_rejects > 0; }));

  // Ride through the revive and the flap storm; hysteresis must eventually
  // settle the link back to healthy and un-quarantine "c".
  ASSERT_TRUE(wait_for(15.0, [&] {
    return runtime.now_ns() > 1600 * kMillisecond &&
           supervisor.link_state(1) == LinkState::kHealthy &&
           !runtime.control().iface_down(1);
  })) << "token motion after the flap must revive the link";

  // Post-recovery: measure against the weighted max-min reference on the
  // full (recovered) topology: a = b = c = 20 Mb/s, with b drawing
  // 10 Mb/s from each interface.
  fair::MaxMinInput input;
  input.capacities_bps = {mbps(30), mbps(30)};
  input.weights = {1.0, 1.0, 1.0};
  input.willing = {{true, false}, {true, true}, {false, true}};
  const auto reference = fair::solve_max_min(input);

  // The rate check is wall-clock sensitive: on an oversubscribed host
  // (single-core CI, parallel ctest) one window can catch a scheduler
  // time-slice artifact or a spurious supervisor transition, so take up
  // to five windows, discard any window dirtied by a link-state change,
  // and keep the last.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // settle
  std::vector<double> measured;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const std::uint64_t transitions_before = supervisor.transitions();
    const std::vector<std::uint64_t> before = {runtime.sent_bytes(a),
                                               runtime.sent_bytes(b),
                                               runtime.sent_bytes(c)};
    const SimTime t0 = runtime.now_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    const SimTime t1 = runtime.now_ns();
    measured = {rate_bps(runtime.sent_bytes(a) - before[0], t1 - t0),
                rate_bps(runtime.sent_bytes(b) - before[1], t1 - t0),
                rate_bps(runtime.sent_bytes(c) - before[2], t1 - t0)};
    if (supervisor.transitions() != transitions_before ||
        supervisor.link_state(1) != LinkState::kHealthy ||
        runtime.control().iface_down(1)) {
      continue;  // window dirtied by a (possibly spurious) link event
    }
    bool all_near = true;
    for (std::size_t i = 0; i < measured.size(); ++i) {
      if (std::abs(measured[i] - reference.rates_bps[i]) >
          reference.rates_bps[i] * kRateTolerance) {
        all_near = false;
      }
    }
    if (all_near) break;
  }

  generator.stop();
  // Quiescence: every accepted packet must drain or land in a counter.
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s);
  })) << "conservation identity must close once ingress stops";
  supervisor.stop();
  runtime.stop();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, accounted(stats)) << "zero silent packet loss";
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops + stats.io_pending)
      << "the egress split must also close (sim: sent == dequeued)";
  EXPECT_GE(supervisor.transitions(), 2u) << "at least kill and revive";
  EXPECT_GT(stats.quarantine_rejects, 0u);
  EXPECT_GT(stats.straggler_drops + stats.fanin_drops, 0u)
      << "the kill re-steer discards the dead queue's backlog, counted";
  EXPECT_GE(supervisor.clustering_checks(), 1u);
  EXPECT_EQ(supervisor.clustering_violations(), 0u)
      << supervisor.last_clustering_verdict();

  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double want = reference.rates_bps[i];
    EXPECT_NEAR(measured[i], want, want * kRateTolerance)
        << "flow " << i << " measured " << to_mbps(measured[i])
        << " Mb/s post-recovery, reference " << to_mbps(want) << " Mb/s";
  }
}

// --- The closed loop: measured capacity, adaptive shedding, recording -----

TEST(AdaptE2E, DrainMeasurementTracksThePacerScaleNotTheConfig) {
  // A 50% capacity droop injected at the pacer (`set_rate_scale`) while
  // iface_configured_bps keeps reporting the profile rate: the supervisor's
  // window measurement must see the SCALED drain, push the controller's
  // drift ratio toward 0.5, and enter a droop -- without ever declaring the
  // link dead (it still moves bytes).
  FaultInjector injector(FaultPlan::parse_json(R"({"events": [
      {"at_ms": 200, "kind": "iface_scale", "iface": 0, "scale": 0.5,
       "duration_ms": 600000}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  options.backpressure_bytes = 256 * 1024;  // bound memory; keep backlog
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(mbps(20)));
  runtime.control().add_flow({.willing = {0}, .name = "f"});

  fault::AdaptiveController adapt(runtime, fault::AdaptOptions{});
  runtime.set_capacity_overlay(&adapt);
  runtime.start();

  SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 10 * kMillisecond;
  sup_options.dead_after_probes = 8;
  sup_options.replay_clustering = false;
  Supervisor supervisor(runtime, sup_options);
  supervisor.set_adaptive(&adapt);
  supervisor.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;
  LoadGenerator generator(runtime, load);
  generator.start();

  ASSERT_TRUE(wait_for(15.0, [&] { return adapt.drooped(0); }))
      << "three backlogged sub-0.70 windows must enter a droop";
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // EWMA settle
  EXPECT_NEAR(adapt.drift_ratio(0), 0.5, 0.15)
      << "the estimate tracks the scaled pacer, not the configured rate";
  EXPECT_EQ(supervisor.link_state(0), LinkState::kHealthy)
      << "a drooped link still moves bytes: degraded capacity is not death";
  EXPECT_NEAR(adapt.effective_capacity_bps(0, mbps(20)),
              adapt.drift_ratio(0) * mbps(20), 1.0)
      << "fairness inputs re-lower to measured capacity while drooped";
  EXPECT_GE(adapt.droop_enters(), 1u);

  generator.stop();
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s);
  }));
  supervisor.stop();
  runtime.stop();
}

TEST(AdaptE2E, ClosedLoopHoldsP99AndFairnessThroughAnUnscriptedDroop) {
  // The acceptance run: 2x+ overload with an unscripted 50% capacity droop
  // on one of two interfaces.  The closed loop must (a) derive a shed
  // watermark that holds traced p99 near the stated target, (b) re-lower
  // fairness shares to measured capacity (Jain stays high on symmetric
  // flows), and (c) record the whole incident as a FaultPlan that replays
  // through the injector with the conservation identity exact and the same
  // supervisor verdict sequence.
  constexpr SimDuration kTarget = 20 * kMillisecond;
  FaultInjector injector(FaultPlan::parse_json(R"({"seed": 3, "events": [
      {"at_ms": 600, "kind": "iface_scale", "iface": 1, "scale": 0.5,
       "duration_ms": 2500}]})"));
  RuntimeOptions options;
  options.fault = &injector;
  options.stage_sample_every = 1;           // the p99 the loop steers by
  options.backpressure_bytes = 4 * 1024 * 1024;  // far above the watermark:
                                                 // shedding is the control
  Runtime runtime(options);
  runtime.add_interface("if0", RateProfile(mbps(20)));
  runtime.add_interface("if1", RateProfile(mbps(20)));
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back(runtime.control().add_flow(
        {.willing = {0, 1}, .name = "f" + std::to_string(i)}));
  }

  fault::FaultPlanRecorder recorder(3);
  fault::AdaptOptions aopts;
  aopts.target_p99_ns = kTarget;
  fault::AdaptiveController adapt(runtime, aopts);
  adapt.set_recorder(&recorder);
  runtime.set_capacity_overlay(&adapt);
  runtime.start();

  SupervisorOptions sup_options;
  sup_options.probe_interval_ns = 10 * kMillisecond;
  sup_options.dead_after_probes = 8;
  sup_options.healthy_after_probes = 3;
  Supervisor supervisor(runtime, sup_options, &runtime);
  supervisor.set_adaptive(&adapt);
  supervisor.set_recorder(&recorder);
  supervisor.start();

  LoadGeneratorOptions load;
  load.packet_bytes = 1000;  // unthrottled: far past 2x the link rates
  LoadGenerator generator(runtime, load);
  generator.start();

  // The droop is unscripted from the supervisor's point of view: it must
  // be DISCOVERED from the drain measurement.
  ASSERT_TRUE(wait_for(15.0, [&] { return adapt.drooped(1); }))
      << "the capacity droop must be discovered, not configured";
  EXPECT_EQ(supervisor.link_state(1), LinkState::kHealthy);
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().shed_drops > 0; }))
      << "the derived watermark must engage under 2x overload";

  // Steady state inside the droop window: p99 near target, Jain high.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));  // settle
  std::vector<std::uint64_t> before;
  for (const FlowId f : flows) before.push_back(runtime.sent_bytes(f));
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  std::vector<double> rates;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(
        static_cast<double>(runtime.sent_bytes(flows[i]) - before[i]));
  }
  EXPECT_GE(jain(rates), 0.95)
      << "weight-aware shedding on re-lowered shares keeps symmetric flows "
         "symmetric";
  const double p99 = adapt.windowed_p99_ns();
  const double leeway = kRateTolerance > 0.2 ? 4.0 : 2.0;  // sanitizers
  EXPECT_GT(p99, 0.0) << "the tracer window must be thick enough to judge";
  EXPECT_LE(p99, leeway * static_cast<double>(kTarget))
      << "the correction loop holds traced p99 near the stated objective";
  EXPECT_NEAR(adapt.drift_ratio(1), 0.5, 0.15);

  generator.stop();
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.offered == accounted(s);
  })) << "conservation identity must close once ingress stops";
  supervisor.stop();
  adapt.finalize(runtime.now_ns());
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.offered, accounted(stats));
  EXPECT_GT(stats.shed_drops, 0u);

  // The incident became a script: canonical, replayable, deterministic.
  const FaultPlan recorded = recorder.plan();
  const std::string canonical = recorded.to_json();
  EXPECT_EQ(FaultPlan::parse_json(canonical).to_json(), canonical);
  bool saw_droop_episode = false;
  for (const auto& event : recorded.events) {
    if (event.kind == fault::FaultKind::kIfaceScale && event.iface == 1) {
      saw_droop_episode = true;
      EXPECT_GE(event.scale, 0.2);
      EXPECT_LE(event.scale, 0.75);
    }
  }
  EXPECT_TRUE(saw_droop_episode)
      << "the recorder must hold the observed droop as an iface_scale event";

  // Replay the recorded plan against a fresh runtime: same verdicts, exact
  // conservation.  (The CI chaos gate runs the richer kill-laden variant.)
  FaultInjector replay(FaultPlan::parse_json(canonical));
  RuntimeOptions ropts;
  ropts.fault = &replay;
  ropts.stage_sample_every = 1;
  ropts.backpressure_bytes = 4 * 1024 * 1024;
  Runtime rerun(ropts);
  rerun.add_interface("if0", RateProfile(mbps(20)));
  rerun.add_interface("if1", RateProfile(mbps(20)));
  for (int i = 0; i < 4; ++i) {
    rerun.control().add_flow(
        {.willing = {0, 1}, .name = "f" + std::to_string(i)});
  }
  fault::AdaptiveController replay_adapt(rerun, aopts);
  rerun.set_capacity_overlay(&replay_adapt);
  rerun.start();
  Supervisor replay_sup(rerun, sup_options, &rerun);
  replay_sup.set_adaptive(&replay_adapt);
  replay_sup.start();
  LoadGenerator replay_gen(rerun, load);
  replay_gen.start();
  const SimTime horizon = recorded.horizon_ns();
  ASSERT_TRUE(wait_for(20.0, [&] { return rerun.now_ns() > horizon; }));
  replay_gen.stop();
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = rerun.stats();
    return s.offered == accounted(s);
  })) << "the replayed incident must conserve packets exactly";
  replay_sup.stop();
  rerun.stop();
  const RuntimeStats replay_stats = rerun.stats();
  EXPECT_EQ(replay_stats.offered, accounted(replay_stats));
  EXPECT_EQ(replay_sup.verdict_sequence(), supervisor.verdict_sequence())
      << "record -> replay must walk the same terminal verdict sequence";
}

}  // namespace
}  // namespace midrr::rt
