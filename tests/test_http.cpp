// Unit tests for the HTTP layer: message parsing/serialization, range
// headers, the reassembler, and the byte-range proxy end to end.
#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/proxy.hpp"
#include "http/reassembler.hpp"

namespace midrr::http {
namespace {

TEST(ByteRangeHeader, RoundTrip) {
  const ByteRange r{100, 199};
  EXPECT_EQ(r.to_range_header(), "bytes=100-199");
  const auto parsed = ByteRange::parse_range_header("bytes=100-199");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
  EXPECT_EQ(r.length(), 100u);
}

TEST(ByteRangeHeader, RejectsMalformed) {
  EXPECT_FALSE(ByteRange::parse_range_header("bytes=100-").has_value());
  EXPECT_FALSE(ByteRange::parse_range_header("bytes=-100").has_value());
  EXPECT_FALSE(ByteRange::parse_range_header("items=1-2").has_value());
  EXPECT_FALSE(ByteRange::parse_range_header("bytes=200-100").has_value());
}

TEST(ContentRange, RoundTrip) {
  const ByteRange r{0, 65535};
  EXPECT_EQ(r.to_content_range(1000000), "bytes 0-65535/1000000");
  const auto parsed = ByteRange::parse_content_range("bytes 0-65535/1000000");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, r);
  EXPECT_EQ(parsed->second, 1000000u);
}

TEST(HttpRequest, SerializeParseRoundTrip) {
  HttpRequest req;
  req.target = "/movie.mp4";
  req.set_header("Host", "cdn.example");
  req.set_header("Range", ByteRange{0, 65535}.to_range_header());
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("GET /movie.mp4 HTTP/1.1\r\n"), std::string::npos);
  const auto parsed = HttpRequest::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/movie.mp4");
  EXPECT_EQ(parsed->header("host"), "cdn.example");  // case-insensitive
  ASSERT_TRUE(parsed->range().has_value());
  EXPECT_EQ(parsed->range()->last, 65535u);
}

TEST(HttpRequest, HeaderUpsertReplaces) {
  HttpRequest req;
  req.set_header("Range", "bytes=0-1");
  req.set_header("range", "bytes=2-3");
  ASSERT_TRUE(req.range().has_value());
  EXPECT_EQ(req.range()->first, 2u);
  EXPECT_EQ(req.headers.size(), 1u);
}

TEST(HttpResponse, PartialContentRoundTrip) {
  const auto res = HttpResponse::partial(ByteRange{65536, 131071}, 1 << 20);
  const auto parsed = HttpResponse::parse_head(res.serialize_head());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 206);
  EXPECT_EQ(parsed->reason, "Partial Content");
  EXPECT_EQ(parsed->content_length(), 65536u);
  const auto range = parsed->content_range();
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first.first, 65536u);
  EXPECT_EQ(range->second, std::uint64_t{1} << 20);
}

TEST(HttpResponse, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpResponse::parse_head("not an http response").has_value());
  EXPECT_FALSE(HttpRequest::parse("\r\n").has_value());
}

TEST(Reassembler, InOrderDeliveryIsImmediate) {
  RangeReassembler r;
  r.add({0, 99});
  EXPECT_EQ(r.contiguous_prefix(), 100u);
  r.add({100, 299});
  EXPECT_EQ(r.contiguous_prefix(), 300u);
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Reassembler, GapBlocksDelivery) {
  RangeReassembler r;
  r.add({100, 199});  // hole at [0, 100)
  EXPECT_EQ(r.contiguous_prefix(), 0u);
  EXPECT_EQ(r.buffered_bytes(), 100u);
  EXPECT_EQ(r.pending_ranges(), 1u);
  r.add({0, 99});  // plug the hole -> everything releases
  EXPECT_EQ(r.contiguous_prefix(), 200u);
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Reassembler, MergesOverlapsAndDuplicates) {
  RangeReassembler r;
  r.add({0, 49});
  r.add({25, 99});   // overlap
  r.add({0, 10});    // duplicate of delivered data
  EXPECT_EQ(r.contiguous_prefix(), 100u);
  EXPECT_EQ(r.bytes_received(), 100u);
  r.add({200, 299});
  r.add({150, 219});  // merges with pending
  EXPECT_EQ(r.pending_ranges(), 1u);
  EXPECT_EQ(r.bytes_received(), 250u);
  r.add({100, 149});
  EXPECT_EQ(r.contiguous_prefix(), 300u);
}

TEST(Reassembler, ManyOutOfOrderChunks) {
  RangeReassembler r;
  // Chunks 9,8,...,1 then 0: nothing delivers until the first arrives.
  for (int i = 9; i >= 1; --i) {
    r.add({static_cast<std::uint64_t>(i) * 100,
           static_cast<std::uint64_t>(i) * 100 + 99});
    EXPECT_EQ(r.contiguous_prefix(), 0u);
  }
  r.add({0, 99});
  EXPECT_EQ(r.contiguous_prefix(), 1000u);
}

TEST(Proxy, SingleFlowSaturatesOneInterface) {
  HttpRangeProxy proxy({{"if1", RateProfile(mbps(8))}},
                       {{"dl", 1.0, {"if1"}, 0}});
  const auto result = proxy.run(20 * kSecond);
  EXPECT_NEAR(result.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              8.0, 0.4);
  EXPECT_GT(result.requests_sent, 100u);
  EXPECT_GT(result.request_header_bytes, 0u);
}

TEST(Proxy, AggregatesTwoInterfaces) {
  // One download willing on both interfaces gets their sum (the paper's
  // bandwidth-aggregation promise, via byte ranges + pipelining).
  HttpRangeProxy proxy(
      {{"wifi", RateProfile(mbps(6))}, {"lte", RateProfile(mbps(3))}},
      {{"dl", 1.0, {"wifi", "lte"}, 0}});
  const auto result = proxy.run(20 * kSecond);
  EXPECT_NEAR(result.flows[0].mean_goodput_mbps(5 * kSecond, 20 * kSecond),
              9.0, 0.5);
  EXPECT_GT(result.flows[0].chunks_per_iface[0], 50u);
  EXPECT_GT(result.flows[0].chunks_per_iface[1], 25u);
}

TEST(Proxy, Fig1cFairnessAtHttpGranularity) {
  HttpRangeProxy proxy(
      {{"if1", RateProfile(mbps(4))}, {"if2", RateProfile(mbps(4))}},
      {{"a", 1.0, {"if1", "if2"}, 0}, {"b", 1.0, {"if2"}, 0}});
  const auto result = proxy.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("a").mean_goodput_mbps(10 * kSecond,
                                                       30 * kSecond),
              4.0, 0.3);
  EXPECT_NEAR(result.flow_named("b").mean_goodput_mbps(10 * kSecond,
                                                       30 * kSecond),
              4.0, 0.3);
}

TEST(Proxy, FiniteDownloadCompletesAndStops) {
  HttpRangeProxy proxy({{"if1", RateProfile(mbps(8))}},
                       {{"dl", 1.0, {"if1"}, 10'000'000}});
  const auto result = proxy.run(60 * kSecond);
  const auto& dl = result.flows[0];
  ASSERT_TRUE(dl.completed_at.has_value());
  // 80 Mbit at 8 Mb/s = 10 s.
  EXPECT_NEAR(to_seconds(*dl.completed_at), 10.0, 0.5);
  EXPECT_EQ(dl.delivered_bytes, 10'000'000u);
  EXPECT_EQ(dl.received_bytes, 10'000'000u);
}

TEST(Proxy, VaryingLinkFollowedByGoodput) {
  // Square-wave link: goodput must track the current capacity.
  HttpRangeProxy proxy(
      {{"if1", RateProfile::square_wave(mbps(8), mbps(2), 20 * kSecond,
                                        60 * kSecond)}},
      {{"dl", 1.0, {"if1"}, 0}});
  const auto result = proxy.run(40 * kSecond);
  const auto& dl = result.flows[0];
  EXPECT_NEAR(dl.mean_goodput_mbps(4 * kSecond, 9 * kSecond), 8.0, 0.8);
  EXPECT_NEAR(dl.mean_goodput_mbps(14 * kSecond, 19 * kSecond), 2.0, 0.6);
  EXPECT_NEAR(dl.mean_goodput_mbps(24 * kSecond, 29 * kSecond), 8.0, 0.8);
}


TEST(Proxy, NaiveDrrBaselineFailsToTrackFasterLink) {
  // The Fig 10 claim is policy-specific: under naive per-interface DRR the
  // multi-homed flow takes half of BOTH links instead of clustering with
  // the faster one, so the pinned flows lose exactly what miDRR protects.
  const auto run_policy = [](Policy policy) {
    ProxyOptions opt;
    opt.policy = policy;
    HttpRangeProxy proxy(
        {{"fast", RateProfile(mbps(8))}, {"slow", RateProfile(mbps(2))}},
        {{"a", 1.0, {"fast"}, 0}, {"b", 1.0, {"fast", "slow"}, 0},
         {"c", 1.0, {"slow"}, 0}},
        opt);
    return proxy.run(30 * kSecond);
  };
  const auto mi = run_policy(Policy::kMiDrr);
  const auto nd = run_policy(Policy::kNaiveDrr);
  // max-min: a=4, b=4, c=2.  naive: a=4, b=4+1=5, c=1.
  EXPECT_NEAR(mi.flow_named("c").mean_goodput_mbps(10 * kSecond,
                                                   30 * kSecond),
              2.0, 0.2);
  EXPECT_NEAR(nd.flow_named("c").mean_goodput_mbps(10 * kSecond,
                                                   30 * kSecond),
              1.0, 0.2);
  EXPECT_GT(nd.flow_named("b").mean_goodput_mbps(10 * kSecond, 30 * kSecond),
            mi.flow_named("b").mean_goodput_mbps(10 * kSecond, 30 * kSecond) +
                0.5);
}

TEST(Proxy, WeightedDownloadsShareProportionally) {
  HttpRangeProxy proxy({{"if1", RateProfile(mbps(6))}},
                       {{"heavy", 2.0, {"if1"}, 0},
                        {"light", 1.0, {"if1"}, 0}});
  const auto result = proxy.run(30 * kSecond);
  EXPECT_NEAR(result.flow_named("heavy").mean_goodput_mbps(10 * kSecond,
                                                           30 * kSecond),
              4.0, 0.3);
  EXPECT_NEAR(result.flow_named("light").mean_goodput_mbps(10 * kSecond,
                                                           30 * kSecond),
              2.0, 0.2);
}

}  // namespace
}  // namespace midrr::http
