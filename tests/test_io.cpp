// Egress I/O subsystem, deterministically: WireHeader codec edges,
// SimBackend's zero-overhead contract, and UdpBackend's transmit logic
// against a scripted SocketApi -- partial sendmmsg returns mid-burst,
// EAGAIN storms (everything requeued, nothing lost), hard errors
// (counted, remainder dropped terminally), oversize rejection (counted
// apart from socket errors), batch chunking, and sequence-number rewind
// on requeue.  The runtime-level tests then close the loop: the requeue
// stash preserves exactly-once dequeue accounting end to end, and a UDP
// run over an always-accepting mock produces the same per-flow delivery
// totals as the sim backend on the same offered load.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "io/sim_backend.hpp"
#include "io/socket_api.hpp"
#include "io/udp_backend.hpp"
#include "io/uring_backend.hpp"
#include "io/wire.hpp"
#include "net/packet.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"

namespace midrr::io {
namespace {

/// Polls `done` until it returns true or `seconds` elapse.
bool wait_for(double seconds, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// --- WireHeader ------------------------------------------------------------

TEST(WireHeader, RoundTripsThroughEncodeDecode) {
  WireHeader header;
  header.payload_bytes = 1234;
  header.flow = 42;
  header.seq = 0x0102030405060708ull;
  header.size_bytes = 9000;

  std::vector<net::Byte> buf(WireHeader::kSize);
  net::BufWriter writer(buf);
  header.encode(writer);

  const auto parsed = WireHeader::decode(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_bytes, header.payload_bytes);
  EXPECT_EQ(parsed->flow, header.flow);
  EXPECT_EQ(parsed->seq, header.seq);
  EXPECT_EQ(parsed->size_bytes, header.size_bytes);
}

TEST(WireHeader, DecodeRejectsShortBadMagicAndBadVersion) {
  WireHeader header;
  std::vector<net::Byte> buf(WireHeader::kSize);
  net::BufWriter writer(buf);
  header.encode(writer);

  EXPECT_FALSE(WireHeader::decode(
                   std::span<const net::Byte>(buf.data(), buf.size() - 1))
                   .has_value())
      << "short buffer";

  std::vector<net::Byte> bad_magic = buf;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(WireHeader::decode(bad_magic).has_value());

  std::vector<net::Byte> bad_version = buf;
  bad_version[4] = WireHeader::kVersion + 1;
  EXPECT_FALSE(WireHeader::decode(bad_version).has_value());
}

TEST(WireHeader, TxTimestampTrailerRoundTrips) {
  WireHeader header;
  header.flags = WireHeader::kFlagTxTimestamp;
  header.flow = 7;
  header.seq = 9;
  header.size_bytes = 1500;
  header.tx_timestamp_ns = 0x1122334455667788ull;
  ASSERT_TRUE(header.has_tx_timestamp());
  EXPECT_EQ(header.wire_size(), WireHeader::kSize + WireHeader::kTimestampSize);

  std::vector<net::Byte> buf(header.wire_size());
  net::BufWriter writer(buf);
  header.encode(writer);

  const auto parsed = WireHeader::decode(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_tx_timestamp());
  EXPECT_EQ(parsed->tx_timestamp_ns, header.tx_timestamp_ns);
  EXPECT_EQ(parsed->flow, 7u);

  // A flagged header whose buffer is too short for the trailer must be
  // rejected whole, not parsed with a garbage timestamp.
  EXPECT_FALSE(WireHeader::decode(
                   std::span<const net::Byte>(buf.data(), buf.size() - 1))
                   .has_value());
  EXPECT_FALSE(WireHeader::decode(
                   std::span<const net::Byte>(buf.data(), WireHeader::kSize))
                   .has_value());

  // An untraced header is byte-identical to the pre-trailer format: the
  // flag byte is zero and decode never looks past kSize.
  WireHeader untraced;
  untraced.flow = 7;
  std::vector<net::Byte> plain(WireHeader::kSize);
  net::BufWriter plain_writer(plain);
  untraced.encode(plain_writer);
  const auto plain_parsed = WireHeader::decode(plain);
  ASSERT_TRUE(plain_parsed.has_value());
  EXPECT_FALSE(plain_parsed->has_tx_timestamp());
  EXPECT_EQ(plain_parsed->tx_timestamp_ns, 0u);
}

// --- SimBackend -------------------------------------------------------------

TEST(SimBackend, AccountsWholeBurstWithoutTouchingDispositions) {
  SimBackend backend;
  backend.attach({"if0", "if1"});
  std::vector<Packet> burst = {Packet(1, 1000), Packet(2, 500)};
  std::vector<SendDisposition> dispositions;  // stays empty: clean result
  const EgressResult result =
      backend.send_burst(0, burst, 0, dispositions);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.sent, 2u);
  EXPECT_EQ(result.sent_bytes, 1500u);
  EXPECT_EQ(result.requeued, 0u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_TRUE(dispositions.empty())
      << "clean path must not pay for per-packet dispositions";
  EXPECT_EQ(backend.syscalls(), 0u);
  EXPECT_EQ(backend.send_errors(0), 0u);
}

// --- The scripted socket layer ----------------------------------------------

/// One datagram as the "kernel" saw it: reassembled iovecs, parsed header.
struct CapturedDatagram {
  int fd = -1;
  std::size_t wire_bytes = 0;
  WireHeader header;
};

/// SocketApi whose send_many consumes a scripted plan.  An empty plan
/// accepts everything; a step either accepts the first `accept` messages
/// of the call or fails with `err`.  Captures every accepted datagram.
class MockSocketApi final : public SocketApi {
 public:
  struct Step {
    int accept = -1;  ///< -1 = fail with `err`; >= 0 = take min(accept, n)
    int err = 0;
  };

  std::deque<Step> plan;       // guarded by mu_ (worker threads send)
  int forced_errno = 0;        ///< != 0: every call fails with this errno
  int open_result = 100;       ///< next fd; < 0 simulates socket() failure

  int open_udp() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++opened_;
    return open_result < 0 ? -1 : open_result++;
  }
  int bind_source(int, const sockaddr*, socklen_t) override { return 0; }
  int bind_to_device(int, const std::string& device) override {
    std::lock_guard<std::mutex> lock(mu_);
    devices_.push_back(device);
    return device == "denied0" ? -1 : 0;
  }
  int close_fd(int) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++closed_;
    return 0;
  }

  int send_many(int fd, mmsghdr* msgs, unsigned int count) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    if (forced_errno != 0) {
      errno = forced_errno;
      return -1;
    }
    Step step{static_cast<int>(count), 0};
    if (!plan.empty()) {
      step = plan.front();
      plan.pop_front();
    }
    if (step.accept < 0) {
      errno = step.err;
      return -1;
    }
    const unsigned int take =
        std::min(count, static_cast<unsigned int>(step.accept));
    for (unsigned int m = 0; m < take; ++m) capture(fd, msgs[m]);
    return static_cast<int>(take);
  }

  // Accessors lock so worker-thread writes are safely visible.
  std::vector<CapturedDatagram> captured() const {
    std::lock_guard<std::mutex> lock(mu_);
    return captured_;
  }
  std::size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  int opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opened_;
  }
  int closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::vector<std::string> devices() const {
    std::lock_guard<std::mutex> lock(mu_);
    return devices_;
  }
  void set_forced_errno(int err) {
    std::lock_guard<std::mutex> lock(mu_);
    forced_errno = err;
  }

 private:
  void capture(int fd, const mmsghdr& msg) {
    std::vector<net::Byte> data;
    for (std::size_t k = 0; k < msg.msg_hdr.msg_iovlen; ++k) {
      const auto* base =
          static_cast<const net::Byte*>(msg.msg_hdr.msg_iov[k].iov_base);
      data.insert(data.end(), base, base + msg.msg_hdr.msg_iov[k].iov_len);
    }
    CapturedDatagram dgram;
    dgram.fd = fd;
    dgram.wire_bytes = data.size();
    const auto header = WireHeader::decode(data);
    ASSERT_TRUE(header.has_value()) << "backend emitted an unparsable header";
    dgram.header = *header;
    captured_.push_back(dgram);
  }

  mutable std::mutex mu_;
  std::vector<CapturedDatagram> captured_;
  std::size_t calls_ = 0;
  int opened_ = 0;
  int closed_ = 0;
  std::vector<std::string> devices_;
};

UdpBackendOptions mock_options(MockSocketApi& api, std::size_t max_batch = 64) {
  UdpBackendOptions options;
  options.base_port = 20000;
  options.max_batch = max_batch;
  options.api = &api;
  return options;
}

std::shared_ptr<const net::Frame> frame_of(std::size_t bytes) {
  return std::make_shared<const net::Frame>(net::ByteBuffer(bytes, 0xAB));
}

// --- UdpBackend: attach -----------------------------------------------------

TEST(UdpBackend, AttachResolvesExplicitAndFallbackDestinations) {
  MockSocketApi api;
  UdpBackendOptions options = mock_options(api);
  UdpDestination dest;
  dest.host = "127.0.0.2";
  dest.port = 7777;
  options.dest_by_name["if1"] = dest;
  UdpBackend backend(options);
  backend.attach({"if0", "if1"});
  EXPECT_EQ(backend.dest_port(0), 20000u) << "base_port + global index";
  EXPECT_EQ(backend.dest_port(1), 7777u) << "explicit mapping wins";
  EXPECT_EQ(api.opened(), 2);
}

TEST(UdpBackend, AttachRejectsUnmappedInterfaceWithoutFallback) {
  MockSocketApi api;
  UdpBackendOptions options = mock_options(api);
  options.base_port = 0;
  UdpDestination dest;
  dest.host = "127.0.0.1";
  dest.port = 7000;
  options.dest_by_name["if0"] = dest;
  UdpBackend backend(options);
  EXPECT_THROW(backend.attach({"if0", "if1"}), std::runtime_error);
}

TEST(UdpBackend, AttachRejectsBadAddressAndFailedSocket) {
  {
    MockSocketApi api;
    UdpBackendOptions options = mock_options(api);
    options.default_host = "not-an-address";
    UdpBackend backend(options);
    EXPECT_THROW(backend.attach({"if0"}), std::runtime_error);
  }
  {
    MockSocketApi api;
    api.open_result = -1;
    UdpBackend backend(mock_options(api));
    EXPECT_THROW(backend.attach({"if0"}), std::runtime_error);
  }
}

TEST(UdpBackend, BindToDeviceFailureIsNonFatal) {
  MockSocketApi api;
  UdpBackendOptions options = mock_options(api);
  UdpDestination dest;
  dest.host = "127.0.0.1";
  dest.port = 7000;
  dest.device = "denied0";
  options.dest_by_name["if0"] = dest;
  UdpBackend backend(options);
  backend.attach({"if0"});  // must not throw: needs CAP_NET_RAW in prod
  ASSERT_EQ(api.devices().size(), 1u);
  EXPECT_EQ(api.devices()[0], "denied0");
}

// --- UdpBackend: serialization and happy path -------------------------------

TEST(UdpBackend, StampsHeadersWithPerFlowSequencesAndCappedPayload) {
  MockSocketApi api;
  UdpBackendOptions options = mock_options(api);
  options.max_payload_bytes = 100;
  UdpBackend backend(options);
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(3, 1000), Packet(5, 700),
                               Packet(3, 1000)};
  burst[0].frame = frame_of(250);  // truncated to 100
  burst[1].frame = frame_of(40);   // fits whole
  // burst[2] frameless: header-only datagram

  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.sent, 3u);
  EXPECT_EQ(result.sent_bytes, 2700u) << "scheduler bytes, not wire bytes";

  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].header.flow, 3u);
  EXPECT_EQ(captured[0].header.seq, 0u);
  EXPECT_EQ(captured[0].header.size_bytes, 1000u);
  EXPECT_EQ(captured[0].header.payload_bytes, 100u);
  EXPECT_EQ(captured[0].wire_bytes, WireHeader::kSize + 100u);
  EXPECT_EQ(captured[1].header.flow, 5u);
  EXPECT_EQ(captured[1].header.seq, 0u);
  EXPECT_EQ(captured[1].header.payload_bytes, 40u);
  EXPECT_EQ(captured[2].header.flow, 3u);
  EXPECT_EQ(captured[2].header.seq, 1u) << "per-flow sequence advances";
  EXPECT_EQ(captured[2].header.payload_bytes, 0u);
  EXPECT_EQ(captured[2].wire_bytes, WireHeader::kSize);
  EXPECT_EQ(backend.sent_datagrams(0), 3u);
  EXPECT_EQ(backend.sent_wire_bytes(0),
            3 * WireHeader::kSize + 100u + 40u);
}

TEST(UdpBackend, StageTracedPacketsCarryTxTimestampTrailer) {
  MockSocketApi api;
  UdpBackend backend(mock_options(api));
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(1, 500), Packet(2, 500)};
  burst[0].trace = 0x42;  // stage-traced: gets the 8-byte trailer
  burst[0].frame = frame_of(20);
  burst[1].frame = frame_of(20);  // untraced: zero extra bytes

  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_TRUE(result.clean);
  ASSERT_EQ(result.sent, 2u);

  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_TRUE(captured[0].header.has_tx_timestamp());
  EXPECT_GT(captured[0].header.tx_timestamp_ns, 0u)
      << "traced datagrams stamp CLOCK_MONOTONIC at egress";
  EXPECT_EQ(captured[0].wire_bytes,
            WireHeader::kSize + WireHeader::kTimestampSize + 20u);
  EXPECT_FALSE(captured[1].header.has_tx_timestamp());
  EXPECT_EQ(captured[1].wire_bytes, WireHeader::kSize + 20u)
      << "untraced packets pay zero extra bytes";
}

TEST(UdpBackend, ChunksLargeBurstsToMaxBatch) {
  MockSocketApi api;
  UdpBackend backend(mock_options(api, /*max_batch=*/4));
  backend.attach({"if0"});
  std::vector<Packet> burst;
  for (std::uint32_t i = 0; i < 10; ++i) burst.emplace_back(1, 100);
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.sent, 10u);
  EXPECT_EQ(api.calls(), 3u) << "4 + 4 + 2";
  EXPECT_EQ(backend.syscalls(), 3u);
}

// --- UdpBackend: pushback and error classification --------------------------

TEST(UdpBackend, PartialReturnRequeuesSuffixAndRewindsSequences) {
  MockSocketApi api;
  api.plan.push_back({.accept = 2});  // kernel takes 2 of 5, then stops
  UdpBackend backend(mock_options(api));
  backend.attach({"if0"});

  std::vector<Packet> burst;
  for (std::uint32_t i = 0; i < 5; ++i) burst.emplace_back(7, 100);
  std::vector<SendDisposition> dispositions;
  const EgressResult first = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_FALSE(first.clean);
  EXPECT_EQ(first.sent, 2u);
  EXPECT_EQ(first.requeued, 3u);
  EXPECT_EQ(first.dropped, 0u);
  ASSERT_EQ(dispositions.size(), 5u);
  EXPECT_EQ(dispositions[0], SendDisposition::kSent);
  EXPECT_EQ(dispositions[1], SendDisposition::kSent);
  EXPECT_EQ(dispositions[2], SendDisposition::kRequeued);
  EXPECT_EQ(dispositions[4], SendDisposition::kRequeued);
  EXPECT_EQ(backend.requeue_events(0), 1u);
  EXPECT_EQ(backend.send_errors(0), 0u) << "pushback is not an error";

  // The runtime retries the requeued suffix as the next burst; the wire
  // must carry a continuous per-flow sequence with no gap and no reuse.
  std::vector<Packet> retry(burst.begin() + 2, burst.end());
  const EgressResult second = backend.send_burst(0, retry, 0, dispositions);
  EXPECT_TRUE(second.clean);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 5u);
  for (std::uint64_t m = 0; m < 5; ++m) {
    EXPECT_EQ(captured[m].header.seq, m) << "datagram " << m;
  }
}

TEST(UdpBackend, EagainStormRequeuesEverythingWithoutLoss) {
  MockSocketApi api;
  api.plan.push_back({.accept = -1, .err = EAGAIN});
  UdpBackend backend(mock_options(api));
  backend.attach({"if0"});
  std::vector<Packet> burst = {Packet(1, 100), Packet(1, 100),
                               Packet(2, 100)};
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.sent, 0u);
  EXPECT_EQ(result.requeued, 3u);
  EXPECT_EQ(result.requeued_bytes, 300u);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(backend.send_errors(0), 0u);
  EXPECT_EQ(backend.syscalls(), 1u);

  // Retry sends the same sequence numbers (rewound, not reconsumed).
  const EgressResult retry = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_TRUE(retry.clean);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].header.seq, 0u);
  EXPECT_EQ(captured[1].header.seq, 1u);
  EXPECT_EQ(captured[2].header.seq, 0u) << "flow 2's first datagram";
}

TEST(UdpBackend, RepeatedEnobufsBurstsKeepSequencesGapFree) {
  MockSocketApi api;
  UdpBackend backend(mock_options(api));
  backend.attach({"if0"});

  // Three consecutive pushback bursts, each making partial progress
  // before the NIC queue fills again: accept 2, choke, accept 1, choke,
  // choke again with zero progress, then drain.  Every choke rewinds the
  // unsent suffix's sequences; a single off-by-one in any rewind leaves a
  // permanent receiver-visible gap or duplicate.
  api.plan.push_back({.accept = 2});
  api.plan.push_back({.accept = -1, .err = ENOBUFS});
  api.plan.push_back({.accept = 1});
  api.plan.push_back({.accept = -1, .err = ENOBUFS});
  api.plan.push_back({.accept = -1, .err = ENOBUFS});

  std::vector<Packet> pending;
  for (std::uint32_t i = 0; i < 8; ++i)
    pending.emplace_back(i % 2 == 0 ? 1 : 2, 100);
  std::vector<SendDisposition> dispositions;
  std::uint64_t drops = 0;
  for (int round = 0; round < 8 && !pending.empty(); ++round) {
    const EgressResult r = backend.send_burst(0, pending, 0, dispositions);
    drops += r.dropped;
    // The stash contract: the requeued suffix is retried verbatim as the
    // FRONT of the next burst (nothing new is dequeued past it).
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(
                                        pending.size() - r.requeued));
  }
  ASSERT_TRUE(pending.empty());
  EXPECT_EQ(drops, 0u) << "ENOBUFS is pushback, never loss";
  EXPECT_EQ(backend.send_errors(0), 0u);

  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 8u);
  std::uint64_t next_seq[3] = {0, 0, 0};
  for (const CapturedDatagram& dgram : captured) {
    ASSERT_LT(dgram.header.flow, 3u);
    EXPECT_EQ(dgram.header.seq, next_seq[dgram.header.flow]++)
        << "flow " << dgram.header.flow
        << " skipped or repeated a sequence across the choke/rewind cycles";
  }
  EXPECT_EQ(next_seq[1], 4u);
  EXPECT_EQ(next_seq[2], 4u);
}

TEST(UdpBackend, ZeroReturnIsDefensivelyRequeuedNotSpun) {
  MockSocketApi api;
  api.plan.push_back({.accept = 0});
  UdpBackend backend(mock_options(api));
  backend.attach({"if0"});
  std::vector<Packet> burst = {Packet(1, 100)};
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_EQ(result.requeued, 1u);
  EXPECT_EQ(api.calls(), 1u) << "one call, then hand control back";
}

TEST(UdpBackend, HardErrorCountsAndDropsRemainderTerminally) {
  MockSocketApi api;
  api.plan.push_back({.accept = 1});
  api.plan.push_back({.accept = -1, .err = EPERM});
  UdpBackend backend(mock_options(api, /*max_batch=*/1));
  backend.attach({"if0"});
  std::vector<Packet> burst = {Packet(9, 100), Packet(9, 100),
                               Packet(9, 100)};
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.sent, 1u);
  EXPECT_EQ(result.dropped, 2u);
  EXPECT_EQ(result.requeued, 0u);
  EXPECT_EQ(backend.send_errors(0), 1u);
  EXPECT_EQ(dispositions[1], SendDisposition::kDropped);
  EXPECT_EQ(dispositions[2], SendDisposition::kDropped);

  // Terminal drops keep their consumed sequence numbers: the next packet
  // of flow 9 is seq 3, and the receiver-side gap (1, 2) IS the loss.
  std::vector<Packet> next = {Packet(9, 100)};
  const EgressResult after = backend.send_burst(0, next, 0, dispositions);
  EXPECT_TRUE(after.clean);
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].header.seq, 0u);
  EXPECT_EQ(captured[1].header.seq, 3u);
}

TEST(UdpBackend, OversizeDatagramIsDroppedUpfrontAndCountedDistinctly) {
  MockSocketApi api;
  UdpBackendOptions options = mock_options(api);
  options.max_payload_bytes = 70000;  // cap above the datagram limit
  UdpBackend backend(options);
  backend.attach({"if0"});

  std::vector<Packet> burst = {Packet(1, 100), Packet(2, 66000),
                               Packet(1, 100)};
  burst[1].frame = frame_of(66000);  // header + payload > 65507
  std::vector<SendDisposition> dispositions;
  const EgressResult result = backend.send_burst(0, burst, 0, dispositions);
  EXPECT_FALSE(result.clean);
  EXPECT_EQ(result.sent, 2u);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(result.dropped_bytes, 66000u);
  EXPECT_EQ(dispositions[1], SendDisposition::kDropped);
  EXPECT_EQ(backend.oversize_drops(0), 1u);
  EXPECT_EQ(backend.send_errors(0), 0u)
      << "oversize is a config problem, not a socket error";
  EXPECT_EQ(api.captured().size(), 2u) << "never offered to the kernel";
}

TEST(UdpBackend, RegistersIoMetricsSeries) {
  MockSocketApi api;
  UdpBackend backend(mock_options(api));
  backend.attach({"if0", "if1"});
  telemetry::MetricsRegistry registry;
  backend.register_metrics(registry);
  std::vector<Packet> burst = {Packet(1, 100)};
  std::vector<SendDisposition> dispositions;
  backend.send_burst(0, burst, 0, dispositions);
  const std::string text = telemetry::render_prometheus(registry);
  EXPECT_NE(text.find("midrr_io_syscalls_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_send_errors_total"), std::string::npos);
  EXPECT_NE(text.find("midrr_io_batch_size"), std::string::npos);
  EXPECT_NE(text.find("iface=\"if1\""), std::string::npos);
}

// --- io_uring stub gate -----------------------------------------------------

TEST(UringBackend, GateMatchesCompileTimeConfiguration) {
#if MIDRR_WITH_URING
  EXPECT_TRUE(uring_supported());
  const auto backend = make_uring_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->name(), "uring");
#else
  EXPECT_FALSE(uring_supported());
  EXPECT_THROW(make_uring_backend(), std::runtime_error);
#endif
}

// --- Runtime integration: the requeue stash end to end ----------------------

using rt::IngressPort;
using rt::Runtime;
using rt::RuntimeOptions;
using rt::RuntimeStats;
using rt::RtFlowSpec;

TEST(RuntimeEgress, EagainStormStashesAndDeliversEverything) {
  MockSocketApi api;
  // The first several transmit attempts are storm: everything comes back
  // EAGAIN and must land in the per-interface stash, charged to the pacer
  // exactly once, then drain on later passes with zero loss.
  for (int i = 0; i < 5; ++i) api.plan.push_back({.accept = -1,
                                                  .err = EAGAIN});
  UdpBackend backend(mock_options(api));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 100; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().sent == 100; }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.dequeued, 100u);
  EXPECT_EQ(stats.sent, 100u);
  EXPECT_EQ(stats.io_drops, 0u) << "a storm is pushback, never loss";
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_GT(stats.io_requeued, 0u);
  EXPECT_EQ(stats.io_send_errors, 0u);
  EXPECT_EQ(api.captured().size(), 100u);
}

TEST(RuntimeEgress, RepeatedEnobufsBurstsDrainInOrderWithoutGaps) {
  MockSocketApi api;
  // Not one storm but several: the socket chokes, recovers a little,
  // chokes again -- so the runtime's per-interface stash is refilled
  // across multiple pushback cycles while fresh dequeues keep arriving
  // behind it.  The stash must always retry BEFORE new dequeues and the
  // rewound sequences must re-stamp identically, or the receiver ledger
  // shows gaps/duplicates that never happened on the wire.
  for (int burst = 0; burst < 6; ++burst) {
    api.plan.push_back({.accept = -1, .err = ENOBUFS});
    api.plan.push_back({.accept = 3});
    api.plan.push_back({.accept = -1, .err = ENOBUFS});
  }
  UdpBackend backend(mock_options(api));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 100; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().sent == 100; }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sent, 100u);
  EXPECT_EQ(stats.io_drops, 0u) << "every choke cycle is pushback, not loss";
  EXPECT_EQ(stats.io_pending, 0u);
  EXPECT_EQ(stats.io_send_errors, 0u);
  EXPECT_GT(stats.io_requeued, 0u) << "the chokes actually happened";

  // Gap-free AND duplicate-free: the flow's captured sequence numbers
  // are exactly 0..99 in order, through every stash refill.
  const auto captured = api.captured();
  ASSERT_EQ(captured.size(), 100u);
  for (std::uint64_t m = 0; m < captured.size(); ++m) {
    EXPECT_EQ(captured[m].header.seq, m) << "datagram " << m;
  }
}

TEST(RuntimeEgress, StopFlushDropsUndeliverableStashWithCount) {
  MockSocketApi api;
  api.set_forced_errno(EAGAIN);  // the socket never accepts anything
  UdpBackend backend(mock_options(api));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 10; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  // The first dequeued burst lands in the stash and sits there as paid
  // pacer debt; while the stash is non-empty the interface dequeues
  // nothing further (bounded at one burst, per-flow order preserved).
  ASSERT_TRUE(wait_for(10.0, [&] { return runtime.stats().io_pending > 0; }));
  runtime.stop();  // final flush retries, then converts the stash to drops
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sent, 0u);
  EXPECT_GT(stats.io_drops, 0u) << "counted, never silent";
  EXPECT_EQ(stats.io_pending, 0u) << "the stash must be empty after stop";
  EXPECT_EQ(stats.dequeued, stats.sent + stats.io_drops)
      << "egress split of the conservation identity";
}

TEST(RuntimeEgress, SendErrorsSurfaceInStatsAndPerIfaceAccessor) {
  MockSocketApi api;
  api.set_forced_errno(EPERM);  // hard failure: count and drop
  UdpBackend backend(mock_options(api));

  RuntimeOptions options;
  options.egress = &backend;
  Runtime runtime(options);
  runtime.add_interface("if0");
  const FlowId f = runtime.control().add_flow(
      {.willing = {0}, .queue_capacity_bytes = 0});
  runtime.start();
  {
    IngressPort port = runtime.port(0);
    for (int i = 0; i < 10; ++i) {
      while (!port.offer(f, 1000)) std::this_thread::yield();
    }
  }
  ASSERT_TRUE(wait_for(10.0, [&] {
    const RuntimeStats s = runtime.stats();
    return s.dequeued == 10 && s.io_drops == 10;
  }));
  runtime.stop();
  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sent, 0u);
  EXPECT_GT(stats.io_send_errors, 0u);
  EXPECT_EQ(runtime.iface_send_errors(0), stats.io_send_errors);
  EXPECT_EQ(runtime.egress().name(), "udp");
}

TEST(RuntimeEgress, UdpMatchesSimPerFlowDeliveryOnIdenticalLoad) {
  // The backend-vs-sim equivalence claim: on the same deterministic
  // offered load over unpaced interfaces, the UDP backend (over an
  // always-accepting socket) must produce the identical per-flow delivery
  // totals the sim backend does -- the egress layer may add latency, but
  // it must never change WHAT is delivered.
  constexpr int kFlows = 4;
  constexpr int kPerFlow = 250;
  const auto run = [](EgressBackend* egress) {
    RuntimeOptions options;
    options.workers = 2;
    options.egress = egress;
    Runtime runtime(options);
    runtime.add_interface("if0");
    runtime.add_interface("if1");
    std::vector<FlowId> flows;
    for (int i = 0; i < kFlows; ++i) {
      flows.push_back(runtime.control().add_flow(
          {.willing = {static_cast<IfaceId>(i % 2),
                       static_cast<IfaceId>((i + 1) % 2)},
           .queue_capacity_bytes = 0}));
    }
    runtime.start();
    {
      IngressPort port = runtime.port(0);
      for (int i = 0; i < kPerFlow; ++i) {
        for (const FlowId f : flows) {
          while (!port.offer(f, 1000)) std::this_thread::yield();
        }
      }
    }
    EXPECT_TRUE(wait_for(10.0, [&] {
      return runtime.stats().sent ==
             static_cast<std::uint64_t>(kFlows) * kPerFlow;
    }));
    runtime.stop();
    std::vector<std::uint64_t> per_flow;
    for (const FlowId f : flows) per_flow.push_back(runtime.sent_bytes(f));
    const RuntimeStats s = runtime.stats();
    EXPECT_EQ(s.sent, s.dequeued);
    EXPECT_EQ(s.io_drops, 0u);
    return per_flow;
  };

  MockSocketApi api;
  UdpBackend udp(mock_options(api));
  const std::vector<std::uint64_t> via_udp = run(&udp);
  const std::vector<std::uint64_t> via_sim = run(nullptr);  // default sim
  EXPECT_EQ(via_udp, via_sim);
  for (const std::uint64_t bytes : via_udp) {
    EXPECT_EQ(bytes, static_cast<std::uint64_t>(kPerFlow) * 1000u);
  }
  // Receiver-side view of the same claim: the headers the "kernel" took
  // credit each flow with exactly its scheduler bytes.
  std::vector<std::uint64_t> credited(kFlows, 0);
  for (const CapturedDatagram& dgram : api.captured()) {
    ASSERT_LT(dgram.header.flow, static_cast<FlowId>(kFlows));
    credited[dgram.header.flow] += dgram.header.size_bytes;
  }
  for (int i = 0; i < kFlows; ++i) {
    EXPECT_EQ(credited[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(kPerFlow) * 1000u);
  }
}

}  // namespace
}  // namespace midrr::io
